"""Tests for the vectorized numpy backend."""

import numpy as np
import pytest

from repro.chem.a3a import a3a_problem
from repro.chem.a3a_full import a3a_full_problem
from repro.chem.workloads import fig1_formula_sequence, random_contraction_program
from repro.engine.executor import random_inputs, run_statements
from repro.codegen.npgen import compile_sequence, generate_numpy_source
from repro.opmin.multi_term import optimize_program, optimize_statement


class TestNumpyBackend:
    def test_fig1_sequence_matches_reference(self):
        prog = fig1_formula_sequence(V=5, O=3)
        arrays = random_inputs(prog, seed=0)
        want = run_statements(prog.statements, arrays)
        kernel = compile_sequence(prog.statements)
        got = kernel(arrays)
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-12)

    def test_a3a_with_functions(self):
        problem = a3a_problem(V=4, O=2, Ci=50)
        arrays = random_inputs(problem.program, seed=1)
        want = run_statements(
            problem.statements, arrays, functions=problem.functions
        )
        kernel = compile_sequence(problem.statements)
        got = kernel(arrays, problem.functions)
        assert float(got["E"]) == pytest.approx(float(want["E"]), rel=1e-12)

    def test_six_term_a3a_optimized(self):
        problem = a3a_full_problem(VA=3, VB=2, O=2, Ci=20)
        seq = optimize_program(problem.program)
        arrays = random_inputs(problem.program, seed=2)
        want = run_statements(seq, arrays, functions=problem.functions)
        kernel = compile_sequence(seq)
        got = kernel(arrays, problem.functions)
        assert float(got["E"]) == pytest.approx(float(want["E"]), rel=1e-12)

    def test_accumulate_statement(self):
        from repro.expr.parser import parse_program

        prog = parse_program("""
        range N = 4; index a, b : N;
        tensor A(a, b); tensor B(a, b);
        S(a) = sum(b) A(a, b);
        S(a) += sum(b) B(a, b);
        """)
        arrays = random_inputs(prog, seed=3)
        want = run_statements(prog.statements, arrays)
        kernel = compile_sequence(prog.statements)
        got = kernel(arrays)
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-12)

    def test_copy_with_transpose(self):
        from repro.expr.parser import parse_program

        prog = parse_program("""
        range P = 2; range Q = 3; index p : P; index q : Q;
        tensor A(p, q);
        S(q, p) = A(p, q);
        """)
        arrays = random_inputs(prog, seed=4)
        kernel = compile_sequence(prog.statements)
        got = kernel(arrays)
        np.testing.assert_array_equal(got["S"], arrays["A"].T)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_programs(self, seed):
        prog = random_contraction_program(seed + 500, n_tensors=4)
        seq = optimize_statement(prog.statements[0])
        arrays = random_inputs(prog, seed=seed)
        want = run_statements(seq, arrays)
        kernel = compile_sequence(seq)
        got = kernel(arrays)
        name = prog.statements[0].result.name
        np.testing.assert_allclose(got[name], want[name], rtol=1e-10)

    def test_source_is_compilable_python(self):
        prog = fig1_formula_sequence(V=5, O=3)
        src = generate_numpy_source(prog.statements)
        compile(src, "<test>", "exec")
        # binary contractions lower to GEMM calls; degenerate terms fall
        # back to the cached einsum
        assert "_gemm(" in src or "_einsum(" in src

    def test_inputs_not_mutated(self):
        prog = fig1_formula_sequence(V=4, O=2)
        arrays = random_inputs(prog, seed=5)
        kernel = compile_sequence(prog.statements)
        before = {k: v.copy() for k, v in arrays.items()}
        kernel(arrays)
        for k in arrays:
            np.testing.assert_array_equal(arrays[k], before[k])
        assert "S" not in arrays  # the caller's dict is untouched


class TestLetterGuard:
    """Regression: ``_letters_for`` used to fall off the end of the
    letter alphabet with a raw IndexError; both einsum backends now
    share the :func:`repro.expr.indices.einsum_letters` guard."""

    def _many_indices(self, n):
        from repro.expr.indices import Index, IndexRange

        rng = IndexRange("N", 2)
        return [Index(f"x{k:03d}", rng) for k in range(n)]

    def test_npgen_raises_value_error_not_index_error(self):
        from repro.codegen.npgen import _letters_for

        with pytest.raises(ValueError, match="too many distinct indices"):
            _letters_for(self._many_indices(53))

    def test_executor_path_raises_the_same_error(self):
        from repro.codegen.npgen import _letters_for
        from repro.engine.executor import _einsum_letters

        indices = self._many_indices(60)
        with pytest.raises(ValueError) as np_err:
            _letters_for(indices)
        with pytest.raises(ValueError) as ex_err:
            _einsum_letters(indices)
        assert str(np_err.value) == str(ex_err.value)

    def test_at_capacity_still_works(self):
        from repro.codegen.npgen import _letters_for

        table = _letters_for(self._many_indices(52))
        assert len(set(table.values())) == 52
