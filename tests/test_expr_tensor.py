"""Unit tests for repro.expr.tensor."""

import pytest

from repro.expr.indices import Index
from repro.expr.tensor import Symmetry, Tensor


class TestSymmetry:
    def test_basic(self):
        sym = Symmetry((0, 1))
        assert not sym.antisymmetric

    def test_needs_two_positions(self):
        with pytest.raises(ValueError):
            Symmetry((0,))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Symmetry((0, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Symmetry((-1, 0))


class TestTensor:
    def test_size_and_shape(self, idx):
        t = Tensor("A", (idx["a"], idx["c"], idx["i"], idx["k"]))
        assert t.order == 4
        assert t.size() == 10 * 10 * 4 * 4
        assert t.shape() == (10, 10, 4, 4)
        assert t.shape({"V": 3, "O": 2}) == (3, 3, 2, 2)

    def test_scalar_tensor(self):
        t = Tensor("E", ())
        assert t.size() == 1
        assert t.shape() == ()

    def test_symmetry_position_bounds_checked(self, idx):
        with pytest.raises(ValueError, match="out of bounds"):
            Tensor("A", (idx["a"], idx["b"]), (Symmetry((0, 2)),))

    def test_symmetry_group_must_share_range(self, idx):
        with pytest.raises(ValueError, match="mixes"):
            Tensor("A", (idx["a"], idx["i"]), (Symmetry((0, 1)),))

    def test_symmetry_group_same_range_ok(self, idx):
        t = Tensor("A", (idx["a"], idx["b"]), (Symmetry((0, 1)),))
        assert t.symmetric_groups() == [(0, 1)]

    def test_sparsity_fill(self, idx):
        t = Tensor("A", (idx["a"], idx["b"]), sparsity="sparse", fill=0.25)
        assert t.stored_size() == 25
        dense = Tensor("A", (idx["a"], idx["b"]))
        assert dense.stored_size() == 100

    def test_bad_fill_rejected(self, idx):
        with pytest.raises(ValueError):
            Tensor("A", (idx["a"],), fill=0.0)
        with pytest.raises(ValueError):
            Tensor("A", (idx["a"],), fill=1.5)

    def test_empty_name_rejected(self, idx):
        with pytest.raises(ValueError):
            Tensor("", (idx["a"],))

    def test_str(self, idx):
        assert str(Tensor("A", (idx["a"], idx["i"]))) == "A(a,i)"
