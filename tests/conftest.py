"""Shared fixtures: common ranges, indices, tensors, and paper programs."""

from __future__ import annotations

import pytest

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.expr.tensor import Tensor


@pytest.fixture
def rng_v() -> IndexRange:
    return IndexRange("V", 10)


@pytest.fixture
def rng_o() -> IndexRange:
    return IndexRange("O", 4)


@pytest.fixture
def idx(rng_v, rng_o):
    """Index table: a-f over V, i-l over O (as in the paper)."""
    table = {}
    for name in "abcdef":
        table[name] = Index(name, rng_v)
    for name in "ijkl":
        table[name] = Index(name, rng_o)
    return table


@pytest.fixture
def fig1_source() -> str:
    """The Section-2 example: S_abij = sum A*B*C*D."""
    return """
    range V = 10;
    range O = 4;
    index a, b, c, d, e, f : V;
    index i, j, k, l : O;
    tensor A(a, c, i, k);
    tensor B(b, e, f, l);
    tensor C(d, f, j, k);
    tensor D(c, d, e, l);
    S(a, b, i, j) = sum(c, d, e, f, k, l)
        A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
    """


@pytest.fixture
def fig1_program(fig1_source):
    return parse_program(fig1_source)


@pytest.fixture
def fig1_statement(fig1_program):
    return fig1_program.statements[0]
