"""Tests for the workload library."""

import numpy as np
import pytest

from repro import SynthesisConfig, synthesize
from repro.chem.workloads import (
    ccsd_doubles_program,
    ccsd_like_program,
    fig1_formula_sequence,
    fig1_program,
    random_contraction_program,
)
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program
from repro.validate import verify_result


class TestFig1Workloads:
    def test_program_and_sequence_agree(self):
        prog = fig1_program(V=4, O=3)
        seq = fig1_formula_sequence(V=4, O=3)
        arrays = random_inputs(prog, seed=0)
        want = run_statements(prog.statements, arrays)["S"]
        got = run_statements(seq.statements, arrays)["S"]
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_default_paper_scale(self):
        assert fig1_program().ranges[0].default == 3000


class TestCcsdLike:
    def test_three_terms(self):
        prog = ccsd_like_program(V=5, O=3)
        from repro.expr.canonical import flatten

        assert len(flatten(prog.statements[0].expr)) == 3

    def test_optimization_valid(self):
        prog = ccsd_like_program(V=5, O=3)
        seq = optimize_program(prog)
        arrays = random_inputs(prog, seed=1)
        want = run_statements(prog.statements, arrays)["R"]
        got = run_statements(seq, arrays)["R"]
        np.testing.assert_allclose(got, want, rtol=1e-9)


class TestCcsdDoubles:
    @pytest.fixture(scope="class")
    def prog(self):
        return ccsd_doubles_program(V=5, O=3)

    def test_five_terms(self, prog):
        from repro.expr.canonical import flatten

        assert len(flatten(prog.statements[0].expr)) == 5

    def test_quadratic_term_has_three_factors(self, prog):
        from repro.expr.canonical import flatten

        sizes = sorted(len(refs) for _, _, refs in flatten(prog.statements[0].expr))
        assert sizes == [2, 2, 2, 2, 3]

    def test_optimization_reduces_ops(self, prog):
        direct = statement_op_count(prog.statements[0])
        seq = optimize_program(prog)
        assert sequence_op_count(seq) < direct

    def test_quadratic_term_factored(self, prog):
        """The T2*V*T2 term must be evaluated as two binary
        contractions, never the direct 3-factor nest."""
        seq = optimize_program(prog)
        from repro.expr.canonical import flatten

        for s in seq:
            for _, _, refs in flatten(s.expr):
                assert len(refs) <= 2

    def test_full_pipeline(self, prog):
        result = synthesize(prog, SynthesisConfig(optimize_cache=False))
        report = verify_result(result)
        assert report.ok, str(report)

    def test_paper_scale_op_estimate(self):
        big = ccsd_doubles_program(V=1000, O=50)
        direct = statement_op_count(big.statements[0])
        optimized = sequence_op_count(optimize_program(big))
        # the quadratic term alone is V^4 O^4 direct; factoring brings
        # the total down by orders of magnitude
        assert optimized < direct / 1000


class TestRandomPrograms:
    def test_deterministic(self):
        a = random_contraction_program(7)
        b = random_contraction_program(7)
        assert str(a.statements[0]) == str(b.statements[0])

    def test_seeds_differ(self):
        a = random_contraction_program(1)
        b = random_contraction_program(2)
        assert str(a.statements[0]) != str(b.statements[0])

    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid(self, seed):
        prog = random_contraction_program(seed, n_tensors=5, n_indices=7)
        arrays = random_inputs(prog, seed=seed)
        run_statements(prog.statements, arrays)


class TestPolarizability:
    def test_optimal_absorbs_diagonal_first(self):
        """The op-minimal tree contracts M with D (elementwise over v,c)
        before the big g/gp contraction -- never the M*M outer product."""
        from repro.expr.canonical import flatten
        from repro.chem.workloads import polarizability_like_program
        from repro.opmin.optree import Contract, Leaf
        from repro.opmin.single_term import optimize_term

        prog = polarizability_like_program()
        (coef, sums, refs), = flatten(prog.statements[0].expr)
        tree = optimize_term(refs, sums)

        def first_pair(node):
            if isinstance(node, Contract):
                l, r = node.left, node.right
                if isinstance(l, Leaf) and isinstance(r, Leaf):
                    return {l.ref.tensor.name, r.ref.tensor.name}
                return first_pair(l) or first_pair(r)
            return None

        assert first_pair(tree) == {"M", "D"}

    def test_pipeline_verifies(self):
        from repro import SynthesisConfig, synthesize
        from repro.chem.workloads import polarizability_like_program
        from repro.validate import verify_result

        prog = polarizability_like_program(Nv=6, Nc=4, Ng=5)
        result = synthesize(prog, SynthesisConfig(optimize_cache=False))
        assert verify_result(result).ok

    def test_chi_is_symmetric(self):
        """Physical sanity: Chi[g,gp] == Chi[gp,g] for this form."""
        import numpy as np

        from repro.chem.workloads import polarizability_like_program
        from repro.engine.executor import random_inputs, run_statements

        prog = polarizability_like_program(Nv=5, Nc=3, Ng=4)
        arrays = random_inputs(prog, seed=0)
        chi = run_statements(prog.statements, arrays)["Chi"]
        np.testing.assert_allclose(chi, chi.T, rtol=1e-10)
