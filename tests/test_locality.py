"""Tests for the Section-6 locality cost model and tile search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.parser import parse_program
from repro.codegen.builder import apply_tiling, build_unfused
from repro.codegen.loops import Loop, loop_op_count
from repro.engine.machine import MachineModel, MemoryLevel
from repro.locality.cost_model import access_cost, loop_accesses
from repro.locality.tile_search import (
    candidate_sizes,
    optimize_locality,
    tileable_indices,
    top_candidates,
)


def matmul_program(n=16):
    return parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)


@pytest.fixture
def matmul_block():
    return build_unfused(matmul_program().statements)


class TestCostModel:
    def test_everything_fits(self, matmul_block):
        """With a huge cache the cost is one fetch per element."""
        n = 16
        cost = access_cost(matmul_block, capacity=10**9)
        assert cost == 3 * n * n  # A, B, C each fetched once

    def test_nothing_fits(self, matmul_block):
        """With a tiny cache every loop multiplies its body."""
        n = 16
        cost = access_cost(matmul_block, capacity=1)
        # innermost statement touches 3 elements; loops multiply
        assert cost == 3 * n**3

    def test_intermediate_capacity(self, matmul_block):
        """Cache holds one row-against-matrix working set: the j loop's
        scope (B entire, one row of A, one row of C) fits."""
        n = 16
        # scope of j-loop: C row (16) + A row (16) + B (256) = 288
        cost_fit = access_cost(matmul_block, capacity=288)
        # i-loop scope = all three matrices = 768 > 288, so cost =
        # n * cost(j-scope) = 16 * 288
        assert cost_fit == n * 288

    def test_monotone_in_capacity(self, matmul_block):
        costs = [
            access_cost(matmul_block, capacity=c)
            for c in (1, 8, 64, 512, 4096)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_bad_capacity_rejected(self, matmul_block):
        with pytest.raises(ValueError):
            access_cost(matmul_block, capacity=0)

    def test_loop_accesses_fixed_outer(self, matmul_block):
        loops = [n for n in matmul_block if isinstance(n, Loop)]
        outer = loops[0]
        inner_j = outer.body[0]
        inner_k = inner_j.body[0]
        # k-loop scope: 1 C element, 16 A, 16 B
        assert loop_accesses(inner_k) == 33


class TestCandidateSizes:
    def test_doubling_reaches_extent(self):
        assert candidate_sizes(16) == [1, 2, 4, 8, 16]

    def test_non_power_extent_included(self):
        assert candidate_sizes(12) == [1, 2, 4, 8, 12]

    def test_small_extent(self):
        assert candidate_sizes(1) == [1]
        assert candidate_sizes(3) == [1, 2, 3]


class TestOptimizeLocality:
    def test_blocking_beats_baseline_when_cache_is_tight(self, matmul_block):
        """Classic result: with a cache that can't hold B, blocking the
        loops reduces modeled misses."""
        result = optimize_locality(matmul_block, capacity=64)
        assert result.cost < result.baseline_cost
        assert result.improvement > 1.0

    def test_blocking_preserves_op_count(self, matmul_block):
        result = optimize_locality(matmul_block, capacity=64)
        assert loop_op_count(result.structure) == loop_op_count(matmul_block)

    def test_huge_cache_needs_no_tiling(self, matmul_block):
        result = optimize_locality(matmul_block, capacity=10**9)
        assert result.tile_sizes == {}
        assert result.cost == result.baseline_cost

    def test_search_is_exhaustive_over_doubling_grid(self, matmul_block):
        result = optimize_locality(matmul_block, capacity=64)
        # 3 indices x 5 candidate sizes; all op-preserving combos tried
        assert result.evaluated == 5**3

    def test_optimum_matches_exhaustive_table(self, matmul_block):
        result = optimize_locality(matmul_block, capacity=64)
        best_in_table = min(row["cost"] for row in result.table)
        assert result.cost == best_in_table

    def test_restricting_indices(self, matmul_block):
        idx = tileable_indices(matmul_block)
        k = next(i for i in idx if i.name == "k")
        result = optimize_locality(matmul_block, capacity=64, indices=[k])
        assert result.evaluated == len(candidate_sizes(16))

    def test_search_space_cap(self, matmul_block):
        with pytest.raises(ValueError, match="combinations"):
            optimize_locality(matmul_block, capacity=64, max_combinations=2)

    def test_disk_level_uses_same_machinery(self, matmul_block):
        """Disk-access minimization = same model with memory capacity."""
        machine = MachineModel(
            cache=MemoryLevel("cache", 64, 8.0),
            memory=MemoryLevel("memory", 300, 512.0),
        )
        cache_result = optimize_locality(
            matmul_block, capacity=machine.cache.capacity
        )
        disk_result = optimize_locality(
            matmul_block, capacity=machine.memory.capacity
        )
        assert disk_result.cost <= cache_result.cost


class TestMachineModel:
    def test_levels(self):
        m = MachineModel()
        assert m.level("cache").capacity < m.level("memory").capacity
        assert m.level("memory").capacity < m.level("disk").capacity

    def test_fits_in(self):
        m = MachineModel()
        assert m.fits_in(100, "cache")
        assert not m.fits_in(m.cache.capacity + 1, "cache")

    def test_unknown_level(self):
        with pytest.raises(ValueError, match="unknown"):
            MachineModel().level("tape")

    def test_invalid_level_params(self):
        with pytest.raises(ValueError):
            MemoryLevel("x", 0, 1.0)
        with pytest.raises(ValueError):
            MemoryLevel("x", 10, -1.0)


class TestCandidateSizesProperties:
    """Paper Section 6: tile sizes double from 1 until the loop range."""

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_strictly_increasing_and_terminates_in_extent(self, extent):
        sizes = candidate_sizes(extent)
        assert sizes[0] == 1
        assert sizes[-1] == extent
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_doubling_except_final_step(self, extent):
        sizes = candidate_sizes(extent)
        # every step but the last doubles; the last clamps to the extent
        for a, b in zip(sizes, sizes[2:]):
            assert b == 4 * a or b == sizes[-1]
        for a, b in zip(sizes, sizes[1:-1]):
            assert b == 2 * a

    @given(st.integers(min_value=2, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_sizes_never_exceed_extent(self, extent):
        assert all(1 <= s <= extent for s in candidate_sizes(extent))


class TestNonPowerOfTwoExtents:
    """The search must handle ranges that are not powers of two: the
    final (remainder) tile is smaller, but the op count is invariant."""

    @pytest.mark.parametrize("n", [6, 12, 18, 24])
    def test_search_preserves_op_count(self, n):
        block = build_unfused(matmul_program(n).statements)
        result = optimize_locality(block, capacity=64)
        assert loop_op_count(result.structure) == loop_op_count(block)

    @pytest.mark.parametrize("n", [6, 12])
    def test_tiling_still_beats_baseline(self, n):
        block = build_unfused(matmul_program(n).statements)
        result = optimize_locality(block, capacity=16)
        assert result.cost <= result.baseline_cost

    def test_candidate_grid_uses_clamped_sizes(self):
        block = build_unfused(matmul_program(12).statements)
        result = optimize_locality(block, capacity=64)
        # 3 indices x |candidate_sizes(12)| = 5 each
        assert result.evaluated == len(candidate_sizes(12)) ** 3
        for idx, size in result.tile_sizes.items():
            assert size in candidate_sizes(12)


class TestTopCandidates:
    """The pareto head handed to the empirical autotuner."""

    def _table(self, n=16, capacity=64):
        block = build_unfused(matmul_program(n).statements)
        return optimize_locality(block, capacity=capacity).table

    def test_sorted_by_cost(self):
        head = top_candidates(self._table(), 4)
        costs = [row["cost"] for row in head[:4]]
        assert costs == sorted(costs)

    def test_untiled_baseline_always_present(self):
        head = top_candidates(self._table(), 3)
        assert any(not row["tiles"] for row in head)

    def test_k_bounds_head_size(self):
        table = self._table()
        head = top_candidates(table, 4)
        assert len(head) <= 5  # k rows + possibly the untiled baseline
        assert top_candidates(table, 1)[0]["cost"] == min(
            row["cost"] for row in table
        )

    def test_ties_prefer_fewer_tiled_indices(self):
        table = [
            {"tiles": {"i": 2, "j": 2}, "cost": 10},
            {"tiles": {"i": 2}, "cost": 10},
            {"tiles": {}, "cost": 50},
        ]
        head = top_candidates(table, 2)
        assert head[0]["tiles"] == {"i": 2}
