"""Property-based numerical equivalence across every execution path.

For randomized contraction programs, the four ways to run a synthesis
result -- the loop-IR interpreter (``execute``), the vectorized numpy
kernel (``compile_fast``), the in-process SPMD driver
(``run_parallel``), and the multi-process SPMD backend
(``run_parallel(backend="process")``) -- must agree with the reference
einsum executor, and the two SPMD backends must agree **bit-for-bit**
with each other.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chem.workloads import random_contraction_program
from repro.engine.executor import random_inputs, run_statements
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig, synthesize

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=10, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_interpreter_and_fast_kernel_match_reference(seed):
    prog = random_contraction_program(seed, extents=(3, 4, 5))
    res = synthesize(prog, SynthesisConfig())
    inputs = random_inputs(prog, seed=seed)
    want = run_statements(prog.statements, inputs)["S"]
    env = res.execute(inputs)
    np.testing.assert_allclose(env["S"], want, rtol=1e-9, atol=1e-12)
    fast = res.compile_fast()(inputs)
    np.testing.assert_allclose(fast["S"], want, rtol=1e-9, atol=1e-12)


@settings(max_examples=5, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_spmd_backends_agree_bitwise_and_match_reference(seed):
    prog = random_contraction_program(seed, extents=(3, 4))
    res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
    if not res.partition_plans:  # degenerate draw: nothing to distribute
        return
    inputs = random_inputs(prog, seed=seed)
    want = run_statements(prog.statements, inputs)["S"]
    local = res.run_parallel(dict(inputs), backend="local")
    proc = res.run_parallel(dict(inputs), backend="process", procs=2)
    for name in local:
        np.testing.assert_array_equal(local[name], proc[name], err_msg=name)
    np.testing.assert_allclose(local["S"], want, rtol=1e-9, atol=1e-12)
