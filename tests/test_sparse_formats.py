"""COO / CSF storage: dense round-trip, canonical form, random
generation at a target fill."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import COOTensor, CSFTensor, as_coo, as_dense


def random_dense(seed: int, max_order: int = 4) -> np.ndarray:
    rng = np.random.default_rng(seed)
    order = int(rng.integers(0, max_order + 1))
    shape = tuple(int(s) for s in rng.integers(1, 6, size=order))
    dense = rng.standard_normal(shape)
    return dense * (rng.random(shape) < rng.uniform(0.05, 0.9))


class TestCOO:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, seed):
        dense = random_dense(seed)
        coo = COOTensor.from_dense(dense)
        assert np.array_equal(coo.to_dense(), dense)
        assert coo.nnz == int(np.count_nonzero(dense))

    def test_canonical_sorted_lexicographically(self):
        coo = COOTensor(
            (3, 3),
            np.array([[2, 1], [0, 2], [0, 1]]),
            np.array([1.0, 2.0, 3.0]),
        )
        assert coo.coords.tolist() == [[0, 1], [0, 2], [2, 1]]

    def test_duplicates_summed_zeros_dropped(self):
        coo = COOTensor(
            (4,),
            np.array([[1], [1], [2], [3], [3]]),
            np.array([2.0, 3.0, 0.0, 1.0, -1.0]),
        )
        assert coo.coords.tolist() == [[1]]
        assert coo.values.tolist() == [5.0]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOTensor((2, 2), np.array([[0, 2]]), np.array([1.0]))

    def test_random_hits_target_fill(self):
        coo = COOTensor.random((10, 10, 10), fill=0.05, seed=7)
        assert coo.nnz == 50
        assert abs(coo.fill - 0.05) < 1e-12
        # distinct coordinates by construction
        assert len({tuple(r) for r in coo.coords.tolist()}) == coo.nnz

    def test_random_fill_bounds(self):
        with pytest.raises(ValueError):
            COOTensor.random((4,), fill=0.0)
        with pytest.raises(ValueError):
            COOTensor.random((4,), fill=1.5)

    def test_scalar(self):
        full = COOTensor.from_dense(np.array(2.5))
        assert full.nnz == 1 and full.to_dense() == 2.5
        empty = COOTensor.from_dense(np.array(0.0))
        assert empty.nnz == 0 and empty.to_dense() == 0.0

    def test_storage_words(self):
        coo = COOTensor.random((6, 6), fill=0.5, seed=0)
        assert coo.storage_words() == coo.nnz * 3  # 2 coords + 1 value


class TestCSF:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, seed):
        dense = random_dense(seed)
        csf = CSFTensor.from_dense(dense)
        assert np.array_equal(csf.to_dense(), dense)
        assert csf.nnz == int(np.count_nonzero(dense))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_coo_csf_agree(self, seed):
        dense = random_dense(seed)
        coo = COOTensor.from_dense(dense)
        csf = CSFTensor.from_coo(coo)
        assert csf.to_coo() == coo
        assert list(csf.nonzeros()) == list(coo.nonzeros())

    def test_compression_beats_coo_on_shared_prefixes(self):
        """A fully-dense last mode shares every prefix: CSF stores each
        leading fiber id once, COO repeats it per nonzero."""
        dense = np.zeros((4, 4, 8))
        dense[1, 2, :] = 1.0
        dense[3, 0, :] = 2.0
        coo = COOTensor.from_dense(dense)
        csf = CSFTensor.from_dense(dense)
        assert csf.storage_words() < coo.storage_words()

    def test_random_at_fill(self):
        csf = CSFTensor.random((8, 8), fill=0.25, seed=3)
        assert csf.nnz == 16


class TestCoercions:
    def test_as_coo_accepts_all(self):
        dense = np.eye(3)
        for value in (dense, COOTensor.from_dense(dense),
                      CSFTensor.from_dense(dense)):
            assert np.array_equal(as_coo(value).to_dense(), dense)

    def test_as_dense_accepts_all(self):
        dense = np.eye(3)
        for value in (dense, COOTensor.from_dense(dense),
                      CSFTensor.from_dense(dense)):
            assert np.array_equal(as_dense(value), dense)
