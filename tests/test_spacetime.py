"""Tests for the space-time trade-off DP and tile-size search."""

import numpy as np
import pytest

from repro.chem.a3a import (
    a3a_problem,
    fig2_table,
    fig3_table,
    fig4_table,
    table_totals,
)
from repro.engine.executor import random_inputs, run_statements
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count, total_memory
from repro.codegen.builder import build_fused, build_unfused
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree
from repro.spacetime.tiling import search_tile_sizes, tiled_structure
from repro.spacetime.tradeoff import tradeoff_search

SMALL = dict(V=4, O=2, Ci=50)


@pytest.fixture(scope="module")
def problem():
    return a3a_problem(**SMALL)


@pytest.fixture(scope="module")
def frontier(problem):
    return tradeoff_search(problem.tree())


class TestTradeoffFrontier:
    def test_frontier_is_pareto(self, frontier):
        mems = [s.memory for s in frontier]
        opss = [s.ops for s in frontier]
        assert mems == sorted(mems)
        assert opss == sorted(opss, reverse=True)
        assert len(set(mems)) == len(mems)

    def test_min_memory_point_is_full_fusion(self, frontier):
        """The smallest-memory configuration reduces all four
        temporaries to scalars (paper Fig. 3): total memory 4."""
        best = frontier[0]
        assert best.memory == 4

    def test_min_memory_ops_match_fig3(self, frontier):
        table = fig3_table(**SMALL)
        assert frontier[0].ops == table_totals(table)["time"]

    def test_max_reuse_point_matches_memopt(self, problem, frontier):
        """With no recomputation the cheapest-ops point has the unfused
        operation count and (at best) the pure-fusion minimal memory."""
        table = fig2_table(**SMALL)
        base_ops = table_totals(table)["time"]
        cheapest = frontier[-1]
        assert cheapest.ops == base_ops
        pure = minimize_memory(problem.tree())
        assert cheapest.memory == pure.total_memory

    def test_redundancy_indices_of_fig3_point(self, frontier):
        names = {i.name for i in frontier[0].recomputation_indices()}
        assert names == {"a", "e", "c", "f"} or names == {"a", "f", "c", "e"}

    def test_memory_limit_prunes(self, problem):
        limited = tradeoff_search(problem.tree(), memory_limit=100)
        assert all(s.memory <= 100 for s in limited)
        assert limited  # something survives (full fusion needs only 4)

    def test_no_redundancy_reduces_to_fusion_dp(self, problem):
        frontier = tradeoff_search(problem.tree(), allow_redundancy=False)
        pure = minimize_memory(problem.tree())
        assert frontier[0].memory == pure.total_memory


class TestRealization:
    def test_fig3_point_builds_and_matches_numerics(self, problem, frontier):
        inputs = random_inputs(problem.program, seed=3)
        want = run_statements(
            problem.statements, inputs, functions=problem.functions
        )["E"]
        block = build_fused(frontier[0].decisions())
        sizes = array_sizes(block)
        assert all(sizes[a] == 1 for a in ("X", "T1", "T2", "Y", "E"))
        env = execute(block, inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(float(want), rel=1e-10)

    def test_every_frontier_point_builds_and_is_exact(self, problem, frontier):
        inputs = random_inputs(problem.program, seed=4)
        want = float(
            run_statements(
                problem.statements, inputs, functions=problem.functions
            )["E"]
        )
        for sol in frontier:
            block = build_fused(sol.decisions())
            assert loop_op_count(block) == sol.ops, sol.memory
            mem = total_memory(block) - 1  # exclude scalar output E
            assert mem == sol.memory
            env = execute(block, inputs, functions=problem.functions)
            assert float(env["E"]) == pytest.approx(want, rel=1e-10)


class TestTiledStructure:
    def test_fig4_recovered_from_fig3_point(self, problem, frontier):
        """Tiling the min-memory solution's recomputation indices at
        block size B reproduces the Fig.-4 cost table."""
        sol = frontier[0]
        B = 2
        tiles = {i: B for i in sol.recomputation_indices()}
        block = tiled_structure(sol, tiles)
        table = fig4_table(B=B, **SMALL)
        sizes = array_sizes(block)
        for arr in ("X", "T1", "T2", "Y", "E"):
            assert sizes[arr] == table[arr]["space"], arr
        assert loop_op_count(block) == table_totals(table)["time"]

    def test_tiled_numerics(self, problem, frontier):
        inputs = random_inputs(problem.program, seed=5)
        want = float(
            run_statements(
                problem.statements, inputs, functions=problem.functions
            )["E"]
        )
        sol = frontier[0]
        for B in (1, 2, 4, 3):  # including a non-divisor
            tiles = {i: B for i in sol.recomputation_indices()}
            block = tiled_structure(sol, tiles)
            env = execute(block, inputs, functions=problem.functions)
            assert float(env["E"]) == pytest.approx(want, rel=1e-10), B


class TestTileSearch:
    def test_search_returns_largest_feasible_block(self, problem, frontier):
        """Ops decrease monotonically with B for A3A, so the search
        should pick the largest B whose memory fits."""
        sol = frontier[0]
        V = SMALL["V"]
        # limit chosen so B=2 fits (2*B^4 + 2*B^2 + ... ) but B=4 not:
        # B=2: X=16,Y=16,T1=T2=4 -> 40; B=4: 256+256+16+16 = 544
        result = search_tile_sizes(sol, memory_limit=100)
        assert result.block_size == 2
        assert result.memory <= 100

    def test_search_unlimited_picks_full_extent(self, problem, frontier):
        result = search_tile_sizes(frontier[0])
        assert result.block_size == SMALL["V"]
        # full-extent tiles restore the unfused integral cost
        assert result.ops == table_totals(fig2_table(**SMALL))["time"]

    def test_search_reports_candidates(self, problem, frontier):
        result = search_tile_sizes(frontier[0], memory_limit=100)
        bs = [c["B"] for c in result.candidates]
        assert bs == [1, 2, 4]
        opss = [c["ops"] for c in result.candidates]
        assert opss == sorted(opss, reverse=True)

    def test_infeasible_limit_raises(self, problem, frontier):
        with pytest.raises(ValueError, match="memory limit"):
            search_tile_sizes(frontier[0], memory_limit=2)

    def test_no_recompute_solution_needs_no_tiling(self, problem, frontier):
        sol = frontier[-1]  # max-reuse point has no redundancy
        assert not sol.recomputation_indices()
        result = search_tile_sizes(sol)
        assert result.block_size == 0
        assert result.ops == sol.ops


class TestTradeoffOnFig1:
    def test_pure_chain_has_no_useful_redundancy(self):
        """For the Section-2 example every pareto point with recompute
        must genuinely reduce memory below the pure-fusion optimum."""
        from repro.chem.workloads import fig1_formula_sequence

        prog = fig1_formula_sequence(V=6, O=3)
        root = build_tree(prog.statements)
        frontier = tradeoff_search(root)
        pure = minimize_memory(root)
        assert frontier[-1].memory == pure.total_memory
        for sol in frontier[:-1]:
            assert sol.memory < pure.total_memory
