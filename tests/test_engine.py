"""Unit tests for the engine package: executor, counters, machine."""

import numpy as np
import pytest

from repro.engine.counters import Counters
from repro.engine.executor import (
    evaluate_expression,
    random_inputs,
    run_statements,
)
from repro.engine.machine import TOY_MACHINE, MachineModel
from repro.expr.parser import parse_program
from repro.chem.integrals import integral_table, make_integral


class TestEvaluateExpression:
    def test_missing_array_raises(self):
        prog = parse_program("range N=3; index a:N; tensor A(a); S(a)=A(a);")
        with pytest.raises(KeyError, match="no array provided"):
            evaluate_expression(prog.statements[0].expr, {})

    def test_missing_function_raises(self):
        prog = parse_program(
            "range N=3; index a:N; function f(a) cost 5; S(a)=f(a);"
        )
        with pytest.raises(KeyError, match="no implementation"):
            evaluate_expression(prog.statements[0].expr, {})

    def test_axes_are_sorted_free_order(self):
        prog = parse_program(
            "range P=2; range Q=3; index p:P; index q:Q;"
            "tensor A(q, p); S(q, p) = A(q, p);"
        )
        arr = np.arange(6).reshape(3, 2)
        out = evaluate_expression(prog.statements[0].expr, {"A": arr})
        # sorted(free) = (p, q) -> transposed view of storage (q, p)
        assert out.shape == (2, 3)
        np.testing.assert_array_equal(out, arr.T)

    def test_coefficients_applied(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) = 2 * A(a) - A(a);"
        )
        arr = np.array([1.0, 2.0, 3.0])
        out = evaluate_expression(prog.statements[0].expr, {"A": arr})
        np.testing.assert_allclose(out, arr)

    def test_scalar_result(self):
        prog = parse_program(
            "range N=4; index a:N; tensor A(a); E() = sum(a) A(a) * A(a);"
        )
        arr = np.ones(4)
        out = evaluate_expression(prog.statements[0].expr, {"A": arr})
        assert out.shape == ()
        assert float(out) == 4.0


class TestRunStatements:
    def test_accumulate_adds(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a);"
            "S(a) = A(a); S2(a) = A(a); "
        )
        # manual accumulate: two statements into the same result
        src = """
        range N=3; index a:N; tensor A(a); tensor B(a);
        S(a) = A(a);
        S(a) += B(a);
        """
        # parser forbids reassign via Statement?  It allows += after =.
        prog = parse_program(src)
        a, b = np.array([1.0, 2, 3]), np.array([10.0, 20, 30])
        env = run_statements(prog.statements, {"A": a, "B": b})
        np.testing.assert_allclose(env["S"], a + b)

    def test_accumulate_into_fresh_array(self):
        src = "range N=3; index a:N; tensor A(a); S(a) += A(a);"
        prog = parse_program(src)
        a = np.array([1.0, 2, 3])
        env = run_statements(prog.statements, {"A": a})
        np.testing.assert_allclose(env["S"], a)

    def test_result_axes_follow_declaration(self):
        src = """
        range P=2; range Q=3; index p:P; index q:Q;
        tensor A(p, q);
        S(q, p) = A(p, q);
        """
        prog = parse_program(src)
        arr = np.arange(6.0).reshape(2, 3)
        env = run_statements(prog.statements, {"A": arr})
        assert env["S"].shape == (3, 2)
        np.testing.assert_array_equal(env["S"], arr.T)


class TestRandomInputs:
    def test_deterministic(self, fig1_program):
        a = random_inputs(fig1_program, seed=5)
        b = random_inputs(fig1_program, seed=5)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_different_seeds_differ(self, fig1_program):
        a = random_inputs(fig1_program, seed=5)
        b = random_inputs(fig1_program, seed=6)
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_respects_bindings(self, fig1_program):
        arrays = random_inputs(fig1_program, {"V": 3, "O": 2})
        assert arrays["A"].shape == (3, 3, 2, 2)


class TestCounters:
    def test_allocation_tracks_peak(self):
        c = Counters()
        c.allocate(100)
        c.allocate(50)
        c.release(100)
        c.allocate(20)
        assert c.peak_elements == 150
        assert c.elements_allocated == 170

    def test_merge(self):
        a, b = Counters(), Counters()
        a.flops, b.flops = 10, 20
        a.peak_elements, b.peak_elements = 5, 9
        a.merge(b)
        assert a.flops == 30
        assert a.peak_elements == 9

    def test_total_ops(self):
        c = Counters()
        c.flops = 7
        c.func_ops = 3
        assert c.total_ops == 10

    def test_as_dict_roundtrip(self):
        c = Counters()
        c.flops = 1
        d = c.as_dict()
        assert d["flops"] == 1
        assert set(d) >= {"flops", "func_evals", "total_ops", "peak_elements"}


class TestIntegrals:
    def test_deterministic(self):
        f = make_integral("f1")
        assert f(1, 2, 3) == f(1, 2, 3)

    def test_different_names_differ(self):
        f, g = make_integral("f1"), make_integral("f2")
        assert f(1, 2, 3) != g(1, 2, 3)

    def test_vectorized_matches_scalar(self):
        f = make_integral("f1")
        grid = np.indices((3, 4))
        vec = f(*grid)
        for i in range(3):
            for j in range(4):
                assert vec[i, j] == pytest.approx(float(f(i, j)))

    def test_values_bounded(self):
        f = make_integral("f1")
        grid = np.indices((10, 10))
        vals = f(*grid)
        assert np.all(np.abs(vals) <= 1.0)

    def test_table(self):
        table = integral_table(["a", "b"])
        assert set(table) == {"a", "b"}


class TestMachine:
    def test_toy_machine_is_small(self):
        assert TOY_MACHINE.cache.capacity < MachineModel().cache.capacity

    def test_defaults_ordered(self):
        m = MachineModel()
        assert m.cache.miss_cost < m.memory.miss_cost < m.disk.miss_cost
