"""Sequence-level SPMD execution tests."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.opmin.multi_term import optimize_program, optimize_statement
from repro.parallel.grid import ProcessorGrid
from repro.parallel.program_plan import plan_sequence
from repro.parallel.spmd import run_spmd_sequence


class TestRunSpmdSequence:
    def test_chain_sequence(self):
        prog = parse_program("""
        range N = 6;
        index i, j, k, l : N;
        tensor A(i, k); tensor B(k, l); tensor C(l, j);
        D(i, j) = sum(k, l) A(i, k) * B(k, l) * C(l, j);
        """)
        stmt = prog.statements[0]
        seq = optimize_statement(stmt)
        grid = ProcessorGrid((2, 2))
        plan = plan_sequence(seq, grid)
        arrays = random_inputs(prog, seed=0)
        out = run_spmd_sequence(seq, plan, arrays)
        want = evaluate_expression(stmt.expr, arrays)
        # D declared (i,j) == sorted order here
        np.testing.assert_allclose(out.arrays["D"], want, rtol=1e-10)
        assert out.total_supersteps > 0

    def test_shared_temp_fallback_sequence(self):
        """Statement-wise plans (CSE-shared temp) execute correctly
        with declared-order handoff between programs."""
        prog = parse_program("""
        range N = 5;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c);
        X(b, a) = A(a, b);
        S(a, c) = sum(b) X(b, a) * B(b, c);
        Y(a) = sum(b) X(b, a) * A(a, b);
        """)
        grid = ProcessorGrid((2,))
        plan = plan_sequence(prog.statements, grid)
        assert len(plan.plans) >= 2  # X shared by two consumers
        arrays = random_inputs(prog, seed=1)
        out = run_spmd_sequence(prog.statements, plan, arrays)
        want = run_statements(prog.statements, arrays)
        for name in ("S", "Y"):
            np.testing.assert_allclose(
                out.arrays[name], want[name], rtol=1e-10, err_msg=name
            )

    def test_transposed_declared_order(self):
        """A result declared in non-sorted order must be stored with
        declared axes for downstream consumers."""
        prog = parse_program("""
        range P = 3; range Q = 4;
        index p : P; index q : Q;
        tensor A(p, q);
        T(q, p) = A(p, q);
        S(q, p) = T(q, p);
        """)
        grid = ProcessorGrid((2,))
        plan = plan_sequence(prog.statements, grid)
        arrays = random_inputs(prog, seed=2)
        out = run_spmd_sequence(prog.statements, plan, arrays)
        np.testing.assert_array_equal(out.arrays["S"], arrays["A"].T)

    def test_traffic_aggregated(self):
        prog = parse_program("""
        range N = 8;
        index i, j, k : N;
        tensor A(i, k); tensor B(k, j);
        C(i, j) = sum(k) A(i, k) * B(k, j);
        """)
        seq = optimize_program(prog)
        grid = ProcessorGrid((4,))
        plan = plan_sequence(seq, grid)
        arrays = random_inputs(prog, seed=3)
        out = run_spmd_sequence(seq, plan, arrays)
        assert out.total_traffic == sum(
            run.comm.total_traffic for _, run in out.runs
        )
