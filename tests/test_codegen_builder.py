"""Tests for loop-structure construction, interpretation, and codegen."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.counters import Counters
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.codegen.builder import apply_tiling, build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import (
    array_sizes,
    loop_op_count,
    peak_memory,
    render,
    total_memory,
)
from repro.codegen.pygen import compile_loops, generate_source
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree
from repro.opmin.cost import sequence_op_count

FIG1_SEQ_SRC = """
range V = 10;
range O = 4;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
"""

BINDINGS = {"V": 3, "O": 2}


@pytest.fixture
def fig1_seq():
    return parse_program(FIG1_SEQ_SRC)


@pytest.fixture
def fig1_arrays(fig1_seq):
    return random_inputs(fig1_seq, BINDINGS, seed=7)


@pytest.fixture
def fig1_reference(fig1_seq, fig1_arrays):
    env = run_statements(fig1_seq.statements, fig1_arrays, BINDINGS)
    return env["S"]


class TestBuildUnfused:
    def test_structure(self, fig1_seq):
        block = build_unfused(fig1_seq.statements)
        sizes = array_sizes(block)
        assert sizes == {
            "T1": 10 * 10 * 10 * 10,
            "T2": 10 * 10 * 4 * 4,
            "S": 10 * 10 * 4 * 4,
        }

    def test_op_count_matches_cost_model(self, fig1_seq):
        block = build_unfused(fig1_seq.statements)
        assert loop_op_count(block) == sequence_op_count(fig1_seq.statements)
        assert loop_op_count(block, BINDINGS) == sequence_op_count(
            fig1_seq.statements, BINDINGS
        )

    def test_execution_matches_reference(
        self, fig1_seq, fig1_arrays, fig1_reference
    ):
        block = build_unfused(fig1_seq.statements)
        counters = Counters()
        env = execute(block, fig1_arrays, BINDINGS, counters=counters)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)
        # measured flops equal the analytic count
        assert counters.flops == loop_op_count(block, BINDINGS)

    def test_custom_loop_order(self, fig1_seq):
        stmt = fig1_seq.statements[0]
        order = tuple(sorted(stmt.expr.free | set(stmt.expr.indices)))
        block = build_unfused([stmt], loop_orders={"T1": order})
        # outermost loop is the first of the sorted order
        from repro.codegen.loops import Loop

        loops = [n for n in block if isinstance(n, Loop)]
        assert loops[0].var.index == order[0]


class TestBuildFused:
    def test_fused_memory_matches_dp(self, fig1_seq):
        root = build_tree(fig1_seq.statements)
        result = minimize_memory(root)
        block = build_fused(result)
        sizes = array_sizes(block)
        # T1 scalar, T2 is O*O, S full
        assert sizes["T1"] == 1
        assert sizes["T2"] == 16
        assert total_memory(block) - sizes["S"] == result.total_memory

    def test_fused_execution_matches_reference(
        self, fig1_seq, fig1_arrays, fig1_reference
    ):
        root = build_tree(fig1_seq.statements)
        result = minimize_memory(root, BINDINGS)
        block = build_fused(result)
        env = execute(block, fig1_arrays, BINDINGS)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)

    def test_fused_op_count_unchanged(self, fig1_seq):
        root = build_tree(fig1_seq.statements)
        result = minimize_memory(root)
        assert loop_op_count(build_fused(result)) == loop_op_count(
            build_unfused(fig1_seq.statements)
        )

    def test_render_shows_imperfect_nesting(self, fig1_seq):
        root = build_tree(fig1_seq.statements)
        result = minimize_memory(root)
        text = render(build_fused(result))
        assert "alloc T1" in text
        assert "for" in text


class TestPygen:
    def test_generated_source_compiles_and_runs(
        self, fig1_seq, fig1_arrays, fig1_reference
    ):
        block = build_unfused(fig1_seq.statements)
        kernel = compile_loops(block, BINDINGS)
        env = kernel(fig1_arrays)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)

    def test_generated_fused_matches(self, fig1_seq, fig1_arrays, fig1_reference):
        root = build_tree(fig1_seq.statements)
        result = minimize_memory(root, BINDINGS)
        kernel = compile_loops(build_fused(result), BINDINGS)
        env = kernel(fig1_arrays)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)

    def test_source_is_plausible_python(self, fig1_seq):
        block = build_unfused(fig1_seq.statements)
        src = generate_source(block, BINDINGS)
        assert src.startswith("def kernel(")
        compile(src, "<test>", "exec")
        assert "for " in src


class TestTiling:
    def test_tiled_execution_matches(self, fig1_seq, fig1_arrays, fig1_reference):
        """Tile the unfused structure's b dimension; semantics preserved."""
        b = next(
            i
            for i in fig1_seq.statements[0].expr.free
            if i.name == "b"
        )
        block = build_unfused(fig1_seq.statements)
        tiled = apply_tiling(
            block, {b: 2}, keep_global=["T1", "T2", "S"]
        )
        env = execute(tiled, fig1_arrays, BINDINGS)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)

    def test_uneven_tiles_guarded(self, fig1_seq, fig1_arrays, fig1_reference):
        """V=3 with block 2: boundary guards must skip out-of-range."""
        b = next(i for i in fig1_seq.statements[0].expr.free if i.name == "b")
        block = build_unfused(fig1_seq.statements)
        tiled = apply_tiling(block, {b: 2}, keep_global=["T1", "T2", "S"])
        kernel = compile_loops(tiled, BINDINGS)
        env = kernel(fig1_arrays)
        np.testing.assert_allclose(env["S"], fig1_reference, rtol=1e-10)

    def test_double_count_rejected(self, fig1_seq):
        """Tiling an index absent from an accumulation into a global
        target is rejected."""
        # d is a summation index of T1's statement only; tiling d while
        # keeping T1 global is fine (d in that statement), but tiling d
        # with S global is fine too since S's statement has no d...
        # Construct the failing case directly: keep T2 global and tile a.
        a = next(i for i in fig1_seq.statements[2].expr.free if i.name == "a")
        block = build_unfused(fig1_seq.statements)
        with pytest.raises(ValueError, match="double-count"):
            apply_tiling(block, {a: 2}, keep_global=["T1", "T2", "S"])

    def test_unknown_keep_global_rejected(self, fig1_seq):
        b = next(i for i in fig1_seq.statements[0].expr.free if i.name == "b")
        block = build_unfused(fig1_seq.statements)
        with pytest.raises(ValueError, match="not allocated"):
            apply_tiling(block, {b: 2}, keep_global=["NOPE"])


class TestStructureProperties:
    """Property-style consistency checks over random optimized
    structures."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fused_structure_invariants(self, seed):
        from repro.chem.workloads import random_contraction_program
        from repro.codegen.loops import peak_memory, validate
        from repro.fusion.memopt import minimize_memory
        from repro.fusion.tree import build_forest
        from repro.opmin.multi_term import optimize_statement

        prog = random_contraction_program(seed + 700, n_tensors=4)
        seq = optimize_statement(prog.statements[0])
        forest = build_forest(seq)
        blocks = []
        for k, root in enumerate(forest):
            result = minimize_memory(root)
            blk = build_fused(result)
            validate(blk)
            blocks.extend(blk)
        block = tuple(blocks)
        assert peak_memory(block) <= total_memory(block)
        # executing matches the unfused execution
        arrays = random_inputs(prog, seed=seed)
        want = execute(build_unfused(seq), arrays)
        got = execute(block, arrays)
        name = prog.statements[0].result.name
        np.testing.assert_allclose(got[name], want[name], rtol=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_interp_matches_static_counts_on_random_fused(self, seed):
        from repro.chem.workloads import random_contraction_program
        from repro.engine.counters import Counters
        from repro.fusion.memopt import minimize_memory
        from repro.fusion.tree import build_forest
        from repro.opmin.multi_term import optimize_statement

        prog = random_contraction_program(seed + 800, n_tensors=3)
        seq = optimize_statement(prog.statements[0])
        forest = build_forest(seq)
        blocks = []
        for root in forest:
            blocks.extend(build_fused(minimize_memory(root)))
        block = tuple(blocks)
        counters = Counters()
        execute(block, random_inputs(prog, seed=seed), counters=counters)
        assert counters.total_ops == loop_op_count(block)
