"""Graph workloads as tensor programs: SSSP, APSP, transitive closure.

Each problem runs through the real pipeline under the appropriate
semiring and is checked against a pure-Python oracle that shares no
code with the machinery under test.  ``min_plus``/``or_and`` results
are additionally checked *bit-identical* across executors (interp,
kernel runner, sparse executor, SPMD) -- idempotent reduces make every
legal evaluation order produce the same bits.
"""

import numpy as np
import pytest

from repro.engine.executor import run_statements
from repro.expr.parser import parse_program
from repro.graphs import (
    apsp_program,
    bellman_ford,
    closure_program,
    floyd_warshall,
    random_adjacency,
    random_weight_matrix,
    reachability,
    squaring_steps,
    sssp_inputs,
    sssp_program,
)
from repro.pipeline import SynthesisConfig, synthesize
from repro.sparse.executor import run_statements as sparse_run

RTOL = ATOL = 1e-12


class TestBuildersAndOracles:
    def test_squaring_steps(self):
        assert squaring_steps(2) == 1
        assert squaring_steps(3) == 1
        assert squaring_steps(5) == 2
        assert squaring_steps(9) == 3
        assert squaring_steps(17) == 4

    def test_programs_parse(self):
        for source, result in (
            sssp_program(5),
            apsp_program(6),
            closure_program(6),
        ):
            program = parse_program(source)
            assert program.statements[-1].result.name == result

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            random_weight_matrix(0)
        with pytest.raises(ValueError):
            random_weight_matrix(3, density=1.5)
        with pytest.raises(ValueError):
            sssp_program(3, relaxations=0)

    def test_bellman_ford_hand_example(self):
        inf = np.inf
        w = np.array([
            [0.0, 1.0, 4.0],
            [inf, 0.0, 2.0],
            [inf, inf, 0.0],
        ])
        assert np.array_equal(bellman_ford(w), np.array([0.0, 1.0, 3.0]))

    def test_floyd_warshall_agrees_with_bellman_ford_rows(self):
        """The two oracles relax edges in different orders, so their
        path sums associate differently -- equal to tolerance only."""
        w = random_weight_matrix(8, seed=11)
        dist = floyd_warshall(w)
        for s in range(8):
            assert np.allclose(
                dist[s], bellman_ford(w, source=s), rtol=RTOL, atol=ATOL
            )

    def test_reachability_hand_example(self):
        a = np.array([
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 1.0],
            [0.0, 0.0, 1.0],
        ])
        want = np.array([
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
            [0.0, 0.0, 1.0],
        ])
        assert np.array_equal(reachability(a), want)


class TestSSSP:
    def test_min_plus_matches_bellman_ford_bitwise(self):
        n = 8
        w = random_weight_matrix(n, seed=3)
        source, res = sssp_program(n)
        inputs = sssp_inputs(w)
        oracle = bellman_ford(w)

        program = parse_program(source)
        ref = run_statements(
            program.statements, inputs, semiring="min_plus"
        )[res]
        assert np.array_equal(ref, oracle)

        result = synthesize(source, SynthesisConfig(semiring="min_plus"))
        assert np.array_equal(result.execute(inputs)[res], oracle)

    def test_other_source(self):
        n = 6
        w = random_weight_matrix(n, seed=9)
        source, res = sssp_program(n)
        inputs = sssp_inputs(w, source=2)
        result = synthesize(source, SynthesisConfig(semiring="min_plus"))
        assert np.array_equal(
            result.execute(inputs)[res], bellman_ford(w, source=2)
        )


class TestAPSP:
    def test_min_plus_across_executors(self):
        n = 7
        w = random_weight_matrix(n, seed=5)
        source, res = apsp_program(n)
        inputs = {"W": w}
        oracle = floyd_warshall(w)

        result = synthesize(source, SynthesisConfig(semiring="min_plus"))
        out_interp = result.execute(inputs)[res]
        out_kernel = result.kernel_runner().run(inputs, copy=True)[res]
        program = parse_program(source)
        out_ref = run_statements(
            program.statements, inputs, semiring="min_plus"
        )[res]
        out_sparse = sparse_run(
            program.statements, inputs, semiring="min_plus"
        )[res]

        # bit-identical across executors of the same program ...
        assert np.array_equal(out_interp, out_kernel)
        assert np.array_equal(out_interp, out_ref)
        assert np.array_equal(out_interp, out_sparse)
        # ... and equal to the oracle up to path-sum reassociation
        assert np.allclose(out_interp, oracle, rtol=RTOL, atol=ATOL)

    def test_min_plus_spmd_local_backend(self):
        n = 6
        w = random_weight_matrix(n, seed=8)
        source, res = apsp_program(n)
        from repro.parallel.grid import ProcessorGrid

        config = SynthesisConfig(
            semiring="min_plus", grid=ProcessorGrid((2,))
        )
        result = synthesize(source, config)
        out = result.run_parallel({"W": w})[res]
        plain = synthesize(
            source, SynthesisConfig(semiring="min_plus")
        ).execute({"W": w})[res]
        assert np.array_equal(out, plain)

    def test_disconnected_components_stay_infinite(self):
        w = np.full((4, 4), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[2, 3] = 1.0
        source, res = apsp_program(4)
        result = synthesize(source, SynthesisConfig(semiring="min_plus"))
        out = result.execute({"W": w})[res]
        assert out[0, 1] == 1.0 and out[2, 3] == 1.0
        assert np.isinf(out[0, 2]) and np.isinf(out[1, 3])


class TestClosure:
    def test_or_and_matches_reachability(self):
        n = 9
        a = random_adjacency(n, seed=4)
        source, res = closure_program(n)
        result = synthesize(source, SynthesisConfig(semiring="or_and"))
        out = result.execute({"A": a})[res]
        assert np.array_equal(out, reachability(a))
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_or_and_kernel_runner_agrees(self):
        n = 6
        a = random_adjacency(n, seed=12)
        source, res = closure_program(n)
        result = synthesize(source, SynthesisConfig(semiring="or_and"))
        out_interp = result.execute({"A": a})[res]
        out_kernel = result.kernel_runner().run({"A": a}, copy=True)[res]
        assert np.array_equal(out_interp, out_kernel)
