"""Tests for the memory-minimization DP, fusion graphs, and brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.expr.ast import Statement, Sum, Mul, TensorRef
from repro.expr.tensor import Tensor
from repro.fusion.brute import brute_force_min_memory
from repro.fusion.fusion_graph import FusionChain, FusionGraph
from repro.fusion.memopt import (
    minimize_memory,
    ordered_subsets,
    prefix_chain_compatible,
    reduced_size,
)
from repro.fusion.tree import build_tree

FIG1_SEQ_SRC = """
range V = 10;
range O = 4;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
"""


class TestPrefixChain:
    def test_prefixes_compatible(self, idx):
        a, b, c = idx["a"], idx["b"], idx["c"]
        assert prefix_chain_compatible([(), (a,), (a, b)])
        assert prefix_chain_compatible([(a, b), (a,)])

    def test_divergent_incompatible(self, idx):
        a, b = idx["a"], idx["b"]
        assert not prefix_chain_compatible([(a,), (b,)])
        assert not prefix_chain_compatible([(a, b), (b, a)])

    def test_empty_always_fits(self, idx):
        assert prefix_chain_compatible([(), ()])

    def test_ordered_subsets_count(self, idx):
        # sum over k of P(3, k) = 1 + 3 + 6 + 6 = 16
        subs = ordered_subsets(frozenset([idx["a"], idx["b"], idx["c"]]))
        assert len(subs) == 16


class TestFig1Fusion:
    """Paper Fig. 1(c): T1 reduces to a scalar and T2 to a 2-D array."""

    def test_memory_minimum(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        result = minimize_memory(root)
        # T1 -> scalar (1), T2 -> O x O (j,k) = 16
        assert result.total_memory == 1 + 16

    def test_array_dims(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        result = minimize_memory(root)
        by_array = result.memory_by_array()
        assert by_array["T1"] == 1
        assert by_array["T2"] == 16
        t2 = next(c for c in root.children if c.array.name == "T2")
        assert {i.name for i in result.array_dims(t2)} == {"j", "k"}

    def test_matches_brute_force(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        dp = minimize_memory(root)
        brute, _ = brute_force_min_memory(root)
        assert dp.total_memory == brute

    def test_fusion_does_not_change_op_count(self):
        from repro.codegen.builder import build_fused, build_unfused
        from repro.codegen.loops import loop_op_count

        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        result = minimize_memory(root)
        unfused = build_unfused(prog.statements)
        fused = build_fused(result)
        assert loop_op_count(fused) == loop_op_count(unfused)

    def test_include_output_adds_root_size(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        with_out = minimize_memory(root, include_output=True)
        without = minimize_memory(root)
        # S is V*V*O*O = 1600
        assert with_out.total_memory - without.total_memory == 1600


class TestFusionGraph:
    def test_vertices_and_edges(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        graph = FusionGraph(root)
        rid = graph.node_id(root)
        assert {i.name for i in graph.vertices[rid]} == {"a", "b", "i", "j", "c", "k"}
        pot = graph.potential_edges()
        # S-T2 and T2-T1 are the fusible edges with common indices
        assert len(pot) == 2

    def test_feasible_nested_chains(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        graph = FusionGraph(root)
        t2 = next(c for c in root.children if c.array.name == "T2")
        t1 = next(c for c in t2.children if c.array.name == "T1")
        sid, t2id, t1id = graph.node_id(root), graph.node_id(t2), graph.node_id(t1)
        name = {i.name: i for i in t2.loop_indices | root.loop_indices | t1.loop_indices}
        # paper-optimal: S-T2 fused on (b,c); T2-T1 fused on (b,c,d,f)
        fusion = {
            (sid, t2id): frozenset([name["b"], name["c"]]),
            (t2id, t1id): frozenset([name["b"], name["c"], name["d"], name["f"]]),
        }
        assert graph.feasible(fusion)

    def test_infeasible_partial_overlap(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        graph = FusionGraph(root)
        t2 = next(c for c in root.children if c.array.name == "T2")
        t1 = next(c for c in t2.children if c.array.name == "T1")
        sid, t2id, t1id = graph.node_id(root), graph.node_id(t2), graph.node_id(t1)
        name = {i.name: i for i in t2.loop_indices | root.loop_indices}
        # j fused above, d fused below, b fused above and below:
        # chains j:{S,T2}, d:{T2,T1}, b:{S,T2,T1}? -> j and d chains both
        # contain T2; with j={S,T2} and d={T2,T1} partially overlapping
        fusion = {
            (sid, t2id): frozenset([name["j"]]),
            (t2id, t1id): frozenset([name["d"]]),
        }
        assert not graph.feasible(fusion)

    def test_validate_rejects_noncommon_index(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        graph = FusionGraph(root)
        t2 = next(c for c in root.children if c.array.name == "T2")
        sid, t2id = graph.node_id(root), graph.node_id(t2)
        a = next(i for i in root.loop_indices if i.name == "a")
        with pytest.raises(ValueError, match="not common"):
            graph.validate_assignment({(sid, t2id): frozenset([a])})

    def test_redundant_vertices_extend(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        graph = FusionGraph(root)
        t2 = next(c for c in root.children if c.array.name == "T2")
        t2id = graph.node_id(t2)
        a = next(i for i in root.loop_indices if i.name == "a")
        graph.add_redundant_indices(t2id, [a])
        assert a in graph.vertices[t2id]

    def test_chain_partial_overlap_detection(self, idx):
        c1 = FusionChain(idx["a"], frozenset([1, 2]))
        c2 = FusionChain(idx["b"], frozenset([2, 3]))
        c3 = FusionChain(idx["b"], frozenset([1, 2, 3]))
        assert c1.overlaps_partially(c2)
        assert not c1.overlaps_partially(c3)
        assert not c2.overlaps_partially(c3)
        assert not c1.overlaps_partially(FusionChain(idx["c"], frozenset([5])))


# ---------------------------------------------------------------------------
# randomized DP-vs-brute-force validation
# ---------------------------------------------------------------------------

@st.composite
def random_chain_program(draw):
    """Random 2-4 statement contraction chain with varied index overlap."""
    n_ranges = draw(st.integers(min_value=2, max_value=3))
    extents = [draw(st.sampled_from([2, 3, 5, 7])) for _ in range(n_ranges)]
    ranges = [IndexRange(f"R{k}", e) for k, e in enumerate(extents)]
    pool = [Index(n, ranges[k % n_ranges]) for k, n in enumerate("abcdefgh")]

    def pick(nmin, nmax):
        n = draw(st.integers(min_value=nmin, max_value=nmax))
        return tuple(draw(st.permutations(pool))[:n])

    statements = []
    prev = None
    n_stmts = draw(st.integers(min_value=2, max_value=3))
    for s in range(n_stmts):
        if prev is None:
            in_idx = pick(2, 4)
            src = Tensor(f"IN{s}", in_idx)
            body = TensorRef(src, in_idx)
            avail = set(in_idx)
        else:
            other_idx = pick(2, 4)
            other = Tensor(f"IN{s}", other_idx)
            body = Mul((TensorRef(prev, prev.indices), TensorRef(other, other_idx)))
            avail = set(prev.indices) | set(other_idx)
        keep = draw(
            st.integers(min_value=1, max_value=max(1, len(avail) - 1))
        )
        ordered = sorted(avail)
        out_idx = tuple(ordered[:keep])
        sums = tuple(sorted(avail - set(out_idx)))
        expr = Sum(sums, body) if sums else body
        result = Tensor(f"N{s}", out_idx)
        statements.append(Statement(result, expr))
        prev = result
    return statements


class TestDPvsBrute:
    @given(random_chain_program())
    @settings(max_examples=40, deadline=None)
    def test_dp_equals_brute_force(self, statements):
        root = build_tree(statements)
        dp = minimize_memory(root)
        brute, _ = brute_force_min_memory(root)
        assert dp.total_memory == brute

    @given(random_chain_program())
    @settings(max_examples=20, deadline=None)
    def test_fused_structure_valid_and_op_preserving(self, statements):
        from repro.codegen.builder import build_fused, build_unfused
        from repro.codegen.loops import loop_op_count

        root = build_tree(statements)
        result = minimize_memory(root)
        fused = build_fused(result)
        unfused = build_unfused(statements)
        assert loop_op_count(fused) == loop_op_count(unfused)


@st.composite
def random_multiterm_program(draw):
    """Programs whose final statement combines 3-4 term temporaries:
    the computation tree gets a multi-child root, exercising the
    sequential chain-state join of the fusion DP."""
    from repro.expr.ast import Add

    n_ranges = draw(st.integers(min_value=2, max_value=3))
    extents = [draw(st.sampled_from([2, 3, 5])) for _ in range(n_ranges)]
    ranges = [IndexRange(f"R{k}", e) for k, e in enumerate(extents)]
    pool = [Index(n, ranges[k % n_ranges]) for k, n in enumerate("abcde")]

    out_n = draw(st.integers(min_value=1, max_value=3))
    out_idx = tuple(pool[:out_n])
    n_terms = draw(st.integers(min_value=3, max_value=4))
    statements = []
    refs = []
    for t in range(n_terms):
        extra = draw(st.integers(min_value=0, max_value=2))
        loop_idx = list(out_idx) + pool[out_n: out_n + extra]
        in_idx = tuple(loop_idx)
        src = Tensor(f"IN{t}", in_idx)
        body = TensorRef(src, in_idx)
        sums = tuple(i for i in in_idx if i not in out_idx)
        expr = Sum(sums, body) if sums else body
        temp = Tensor(f"T{t}", out_idx)
        statements.append(Statement(temp, expr))
        refs.append((1.0, TensorRef(temp, out_idx)))
    final = Tensor("OUT", out_idx)
    statements.append(Statement(final, Add(tuple(refs))))
    return statements


class TestMultiChildJoin:
    @given(random_multiterm_program())
    @settings(max_examples=30, deadline=None)
    def test_sequential_join_equals_brute_force(self, statements):
        root = build_tree(statements)
        dp = minimize_memory(root)
        brute, _ = brute_force_min_memory(root)
        assert dp.total_memory == brute

    @given(random_multiterm_program())
    @settings(max_examples=15, deadline=None)
    def test_multi_child_structures_execute(self, statements):
        import numpy as np

        from repro.codegen.builder import build_fused
        from repro.codegen.interp import execute
        from repro.engine.executor import run_statements

        root = build_tree(statements)
        result = minimize_memory(root)
        block = build_fused(result)
        rng = np.random.default_rng(0)
        arrays = {}
        for stmt in statements:
            for ref in stmt.expr.refs():
                if ref.tensor.name.startswith("IN"):
                    arrays.setdefault(
                        ref.tensor.name,
                        rng.standard_normal(ref.tensor.shape()),
                    )
        want = run_statements(statements, arrays)["OUT"]
        env = execute(block, arrays)
        np.testing.assert_allclose(env["OUT"], want, rtol=1e-9)
