"""Tests for the compiled execution kernels (repro.kernels).

The GEMM lowering is property-tested against the einsum oracle across
random index patterns -- including the degenerate corners (scalar
results, outer products, single-operand reductions) -- with the
documented tolerance: the GEMM path regroups floating-point sums, so
agreement is ``allclose`` at 1e-12 relative, while the einsum-fallback
and path-cache paths must be **bit-for-bit** equal to the uncached
reference.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chem.workloads import ccsd_doubles_program, random_contraction_program
from repro.engine.executor import random_inputs, run_statements
from repro.expr.ast import Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor
from repro.kernels import (
    BufferArena,
    KernelPlan,
    KernelRunner,
    cached_einsum,
    cached_einsum_path,
    clear_einsum_path_cache,
    compile_kernel_plan,
    einsum_path_cache_stats,
    exec_gemm,
    lower_binary_term,
)
from repro.pipeline import SynthesisConfig, synthesize

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: documented GEMM-vs-einsum tolerance (sum regrouping only)
RTOL, ATOL = 1e-12, 1e-12


def _indices(extents):
    return [
        Index(f"i{k}", IndexRange(f"R{k}", e)) for k, e in enumerate(extents)
    ]


def _oracle(left, right, out, a, b):
    """Reference einsum for one binary term (sums everything not in out)."""
    letters = {}
    for i in list(left) + list(right) + list(out):
        letters.setdefault(i, chr(ord("a") + len(letters)))
    spec = (
        "".join(letters[i] for i in left)
        + ","
        + "".join(letters[i] for i in right)
        + "->"
        + "".join(letters[i] for i in out)
    )
    return np.einsum(spec, a, b, optimize=True)


@st.composite
def binary_terms(draw):
    """A random binary contraction: index memberships, orders, extents."""
    n = draw(st.integers(min_value=1, max_value=6))
    extents = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n)]
    idx = _indices(extents)
    membership = [
        draw(st.sampled_from(["l", "r", "b"])) for _ in range(n)
    ]
    kept = [draw(st.booleans()) for _ in range(n)]
    left = [i for i, m in zip(idx, membership) if m in ("l", "b")]
    right = [i for i, m in zip(idx, membership) if m in ("r", "b")]
    out = [i for i, k in zip(idx, kept) if k]
    # random axis orders on each operand and the output
    left = draw(st.permutations(left)) if left else []
    right = draw(st.permutations(right)) if right else []
    out = draw(st.permutations(out)) if out else []
    return tuple(left), tuple(right), tuple(out)


class TestGemmLowering:
    @settings(max_examples=120, **COMMON)
    @given(term=binary_terms(), seed=st.integers(0, 2**16))
    def test_matches_einsum_oracle(self, term, seed):
        left, right, out = term
        sums = frozenset(set(left) | set(right)) - set(out)
        spec = lower_binary_term(left, right, sums, out)
        assert spec is not None, "no degenerate features drawn; must lower"
        rng = np.random.default_rng(seed)
        a = rng.standard_normal([i.extent() for i in left])
        b = rng.standard_normal([i.extent() for i in right])
        want = _oracle(left, right, out, a, b)
        got = exec_gemm(
            a, b,
            lred=spec.lred, rred=spec.rred,
            lperm=spec.lperm, rperm=spec.rperm,
            nb=spec.nb, nm=spec.nm, nk=spec.nk, nn=spec.nn,
            operm=spec.operm,
        )
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_scalar_result(self):
        i, j = _indices([3, 4])
        spec = lower_binary_term((i, j), (i, j), frozenset({i, j}), ())
        a = np.arange(12.0).reshape(3, 4)
        b = np.ones((3, 4))
        got = exec_gemm(
            a, b, lred=spec.lred, rred=spec.rred, lperm=spec.lperm,
            rperm=spec.rperm, nb=spec.nb, nm=spec.nm, nk=spec.nk,
            nn=spec.nn, operm=spec.operm,
        )
        assert got.shape == ()
        assert got == pytest.approx(a.sum())

    def test_outer_product(self):
        i, j = _indices([3, 4])
        spec = lower_binary_term((i,), (j,), frozenset(), (i, j))
        a = np.arange(3.0)
        b = np.arange(4.0)
        got = exec_gemm(
            a, b, lred=spec.lred, rred=spec.rred, lperm=spec.lperm,
            rperm=spec.rperm, nb=spec.nb, nm=spec.nm, nk=spec.nk,
            nn=spec.nn, operm=spec.operm,
        )
        np.testing.assert_allclose(got, np.outer(a, b), rtol=RTOL)

    def test_single_operand_reduction(self):
        # an index summed in only one operand is pre-reduced (lred/rred)
        i, j, k = _indices([3, 4, 5])
        spec = lower_binary_term((i, k), (i, j), frozenset({i, k}), (j,))
        assert spec.lred == (1,)
        a = np.random.default_rng(0).standard_normal((3, 5))
        b = np.random.default_rng(1).standard_normal((3, 4))
        got = exec_gemm(
            a, b, lred=spec.lred, rred=spec.rred, lperm=spec.lperm,
            rperm=spec.rperm, nb=spec.nb, nm=spec.nm, nk=spec.nk,
            nn=spec.nn, operm=spec.operm,
        )
        np.testing.assert_allclose(
            got, np.einsum("ik,ij->j", a, b), rtol=RTOL, atol=ATOL
        )

    def test_repeated_index_declines(self):
        # diagonal within one operand: GEMM cannot express it
        i, j = _indices([3, 3])
        assert (
            lower_binary_term((i, i), (i, j), frozenset({i}), (j,)) is None
        )

    def test_output_index_from_neither_operand_declines(self):
        i, j = _indices([3, 4])
        assert lower_binary_term((i,), (i,), frozenset(), (i, j)) is None


class TestKernelPlan:
    @settings(max_examples=25, **COMMON)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_runner_matches_reference_on_synthesized_sequences(self, seed):
        prog = random_contraction_program(seed, extents=(3, 4, 5))
        res = synthesize(prog, SynthesisConfig())
        inputs = random_inputs(prog, seed=seed)
        want = run_statements(
            res.statements, inputs, None, None, path_cache=False
        )
        plan = res.kernel_plan
        assert plan is not None
        got = KernelRunner(plan).run(inputs)
        for name in plan.outputs:
            np.testing.assert_allclose(
                got[name], want[name], rtol=1e-10, atol=1e-12, err_msg=name
            )

    def test_einsum_fallback_on_repeated_indices(self):
        # B(j,j) is a diagonal read: the statement must compile to an
        # einsum-fallback term and still match the reference executor
        i, j = _indices([3, 3])
        A = Tensor("A", (i, j))
        B = Tensor("B", (j, j))
        S = Tensor("S", (i,))
        stmt = Statement(
            S,
            Sum((j,), Mul((TensorRef(A, (i, j)), TensorRef(B, (j, j))))),
        )
        plan = compile_kernel_plan([stmt])
        assert plan.einsum_terms == 1 and plan.gemm_terms == 0
        inputs = {
            "A": np.arange(9.0).reshape(3, 3),
            "B": np.random.default_rng(2).standard_normal((3, 3)),
        }
        want = run_statements([stmt], inputs)["S"]
        got = KernelRunner(plan).run(inputs)["S"]
        np.testing.assert_array_equal(got, want)

    def test_accumulate_statements(self):
        i, = _indices([4])
        A = Tensor("A", (i,))
        S = Tensor("S", (i,))
        stmts = [
            Statement(S, TensorRef(A, (i,))),
            Statement(S, TensorRef(A, (i,)), accumulate=True),
        ]
        plan = compile_kernel_plan(stmts)
        a = np.arange(4.0)
        want = run_statements(stmts, {"A": a})["S"]
        got = KernelRunner(plan).run({"A": a})["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL)

    def test_accumulate_does_not_mutate_caller_seed(self):
        i, = _indices([4])
        A = Tensor("A", (i,))
        S = Tensor("S", (i,))
        stmts = [Statement(S, TensorRef(A, (i,)), accumulate=True)]
        plan = compile_kernel_plan(stmts)
        a = np.arange(4.0)
        seed = np.ones(4)
        out = KernelRunner(plan).run({"A": a, "S": seed})
        np.testing.assert_array_equal(seed, np.ones(4))  # caller untouched
        np.testing.assert_allclose(out["S"], seed + a, rtol=RTOL)

    def test_liveness_releases_temporaries(self):
        prog = ccsd_doubles_program(V=6, O=3)
        res = synthesize(prog)
        plan = res.kernel_plan
        released = [n for sp in plan.statements for n in sp.release]
        produced = {sp.result for sp in plan.statements}
        # multi-statement factorized sequence: temporaries exist and are
        # all released; outputs never are
        assert len(produced) > 1
        assert set(released) == produced - set(plan.outputs)
        assert "R" in plan.outputs and "R" not in released

    def test_plan_pickle_round_trip(self):
        prog = ccsd_doubles_program(V=5, O=3)
        res = synthesize(prog)
        plan = res.kernel_plan
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        inputs = random_inputs(prog, None, seed=3)
        a = KernelRunner(plan).run(inputs)
        b = KernelRunner(clone).run(inputs)
        for name in plan.outputs:
            np.testing.assert_array_equal(a[name], b[name])

    def test_plan_survives_plan_cache_round_trip(self, tmp_path):
        from repro.runtime.plan_cache import PlanCache

        prog = ccsd_doubles_program(V=5, O=3)
        cache = PlanCache(directory=str(tmp_path))
        first = synthesize(prog, cache=cache)
        assert first.kernel_plan is not None
        # cold memory tier, warm disk tier: full serialization exercised
        second = synthesize(prog, cache=PlanCache(directory=str(tmp_path)))
        assert second.kernel_plan == first.kernel_plan
        inputs = random_inputs(prog, None, seed=1)
        got = second.kernel_runner().run(inputs)
        want = run_statements(second.statements, inputs)
        np.testing.assert_allclose(
            got["R"], want["R"], rtol=1e-10, atol=1e-12
        )

    def test_runner_output_buffers_are_reused(self):
        prog = ccsd_doubles_program(V=5, O=3)
        res = synthesize(prog)
        runner = res.kernel_runner()
        inputs = random_inputs(prog, None, seed=0)
        first = runner.run(inputs)["R"]
        second = runner.run(inputs)["R"]
        assert first is second  # same persistent buffer, rewritten
        detached = runner.run(inputs, copy=True)["R"]
        assert detached is not second
        np.testing.assert_array_equal(detached, second)

    def test_steady_state_allocation_free(self):
        prog = ccsd_doubles_program(V=5, O=3)
        res = synthesize(prog)
        runner = res.kernel_runner()
        inputs = random_inputs(prog, None, seed=0)
        runner.run(inputs)
        runner.run(inputs)
        before = runner.arena.allocations
        for _ in range(4):
            runner.run(inputs)
        assert runner.arena.allocations == before

    def test_failing_step_releases_every_arena_buffer(self):
        """Regression: a kernel step raising mid-run used to leak the
        statement's output buffer and every live temporary.  The
        runner must hand all arena-owned buffers back before
        propagating, so a caller that catches and retries does not
        accumulate scratch."""
        prog = ccsd_doubles_program(V=5, O=3)
        res = synthesize(prog)
        runner = res.kernel_runner()
        assert len(res.kernel_plan.statements) > 1
        inputs = random_inputs(prog, None, seed=0)
        want = runner.run(inputs, copy=True)["R"]

        original = runner._exec_term
        calls = {"n": 0}

        def failing(term, out, env, ins, funcs, first):
            calls["n"] += 1
            if calls["n"] > 1:  # fail inside a later statement
                raise RuntimeError("injected kernel failure")
            return original(term, out, env, ins, funcs, first)

        baseline = runner.arena.outstanding
        runner._exec_term = failing
        with pytest.raises(RuntimeError, match="injected"):
            runner.run(inputs)
        assert runner.arena.outstanding == baseline  # nothing leaked

        # the runner stays fully usable after a caught failure
        runner._exec_term = original
        got = runner.run(inputs)["R"]
        np.testing.assert_array_equal(got, want)
        assert runner.arena.outstanding == baseline


class TestBufferArena:
    def test_take_release_reuses_exact_key(self):
        arena = BufferArena()
        a = arena.take((3, 4))
        arena.release(a)
        b = arena.take((3, 4))
        assert b is a
        assert arena.reuses == 1
        c = arena.take((4, 3))  # different shape: fresh allocation
        assert c is not a
        assert arena.allocations == 2

    def test_dtype_is_part_of_the_key(self):
        arena = BufferArena()
        a = arena.take((5,), np.float64)
        arena.release(a)
        b = arena.take((5,), np.float32)
        assert b is not a

    def test_disabled_arena_never_pools(self):
        arena = BufferArena(enabled=False)
        a = arena.take((2, 2))
        arena.release(a)
        assert arena.pooled == 0
        assert arena.take((2, 2)) is not a

    def test_release_resolves_views_to_base(self):
        arena = BufferArena()
        a = arena.take((4, 4))
        arena.release(a.reshape(2, 8))  # view: the base buffer is pooled
        assert arena.pooled == 1
        assert arena.take((4, 4)) is a

    def test_clear_empties_pool(self):
        arena = BufferArena()
        arena.release(arena.take((2,)))
        arena.clear()
        assert arena.pooled == 0

    def test_outstanding_tracks_takes_and_releases(self):
        arena = BufferArena()
        a = arena.take((3,))
        b = arena.take((3,))
        assert arena.outstanding == 2
        arena.release(a)
        arena.release(b)
        assert arena.outstanding == 0
        # disabled arenas count too: the counter is the leak detector
        off = BufferArena(enabled=False)
        off.release(off.take((2,)))
        assert off.outstanding == 0


class TestEinsumPathCache:
    def test_bit_for_bit_vs_optimize_true(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 7, 8))
        b = rng.standard_normal((8, 7, 5))
        clear_einsum_path_cache()
        for _ in range(2):  # miss then hit: both must be identical
            got = cached_einsum("abc,cbd->ad", a, b)
            want = np.einsum("abc,cbd->ad", a, b, optimize=True)
            np.testing.assert_array_equal(got, want)

    def test_hit_miss_accounting(self):
        clear_einsum_path_cache()
        a = np.ones((3, 4))
        b = np.ones((4, 5))
        cached_einsum("ij,jk->ik", a, b)
        stats = einsum_path_cache_stats()
        assert stats == {"entries": 1, "hits": 0, "misses": 1}
        cached_einsum("ij,jk->ik", a, b)
        assert einsum_path_cache_stats()["hits"] == 1
        # different shapes under the same spec re-plan
        cached_einsum("ij,jk->ik", np.ones((2, 2)), np.ones((2, 2)))
        assert einsum_path_cache_stats()["misses"] == 2

    def test_executor_path_cache_is_bit_for_bit(self):
        prog = ccsd_doubles_program(V=5, O=3)
        inputs = random_inputs(prog, None, seed=0)
        cached = run_statements(prog.statements, inputs)
        uncached = run_statements(
            prog.statements, inputs, path_cache=False
        )
        for name in cached:
            np.testing.assert_array_equal(
                cached[name], uncached[name], err_msg=name
            )

    def test_dtype_is_part_of_the_key(self):
        """float32 and float64 operands of the same shapes plan
        separately: the greedy optimizer weighs intermediates in bytes,
        so sharing one entry would silently cross-apply decisions."""
        clear_einsum_path_cache()
        a = np.ones((3, 4))
        b = np.ones((4, 5))
        cached_einsum_path("ij,jk->ik", a, b)
        cached_einsum_path(
            "ij,jk->ik", a.astype(np.float32), b.astype(np.float32)
        )
        stats = einsum_path_cache_stats()
        assert stats == {"entries": 2, "hits": 0, "misses": 2}

    def test_concurrent_hammer_stays_consistent(self):
        """Many threads over a shared spec set: no exceptions, no torn
        counters, exactly one entry per distinct signature (the
        module-global cache is mutated under a lock)."""
        clear_einsum_path_cache()
        specs = [
            ("ij,jk->ik", (3 + n, 4), (4, 5)) for n in range(8)
        ]
        arrays = [
            (np.ones(sa), np.ones(sb)) for _, sa, sb in specs
        ]
        threads, errors = 8, []
        rounds = 40
        barrier = threading.Barrier(threads)

        def work():
            try:
                barrier.wait()
                for _ in range(rounds):
                    for (spec, _, _), (a, b) in zip(specs, arrays):
                        cached_einsum(spec, a, b)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert errors == []
        stats = einsum_path_cache_stats()
        assert stats["entries"] == len(specs)
        # a racing duplicate plan counts one extra miss, never a lost
        # call: every lookup is accounted a hit or a miss
        assert stats["hits"] + stats["misses"] == (
            threads * rounds * len(specs)
        )
        assert stats["misses"] < stats["hits"]
