"""Unit tests for the high-level language parser."""

import pytest

from repro.expr.ast import Add, Mul, Sum, TensorRef
from repro.expr.parser import ParseError, parse_expression, parse_program


class TestDeclarations:
    def test_range_decl(self):
        prog = parse_program("range V = 3000;")
        assert prog.ranges[0].name == "V"
        assert prog.ranges[0].default == 3000

    def test_duplicate_range_rejected(self):
        with pytest.raises(ParseError, match="already declared"):
            parse_program("range V = 1; range V = 2;")

    def test_index_decl_requires_range(self):
        with pytest.raises(ParseError, match="undeclared range"):
            parse_program("index a : V;")

    def test_duplicate_index_rejected(self):
        with pytest.raises(ParseError, match="already declared"):
            parse_program("range V = 2; index a : V; index a : V;")

    def test_tensor_decl_requires_indices(self):
        with pytest.raises(ParseError, match="undeclared index"):
            parse_program("range V = 2; tensor A(a);")

    def test_symmetric_annotation(self):
        prog = parse_program(
            "range V = 4; index a, b : V; tensor T(a, b) symmetric(0, 1);"
        )
        stmt_tensors = {}
        # tensor is registered in env; reach it through a statement
        prog2 = parse_program(
            "range V = 4; index a, b : V; tensor T(a, b) symmetric(0, 1);"
            "S(a, b) = T(a, b);"
        )
        t = prog2.statements[0].expr.tensor
        assert t.symmetries[0].positions == (0, 1)
        assert not t.symmetries[0].antisymmetric

    def test_antisymmetric_annotation(self):
        prog = parse_program(
            "range V = 4; index a, b : V;"
            "tensor T(a, b) antisymmetric(0, 1); S(a, b) = T(a, b);"
        )
        assert prog.statements[0].expr.tensor.symmetries[0].antisymmetric

    def test_sparse_annotation(self):
        prog = parse_program(
            "range V = 4; index a, b : V;"
            "tensor T(a, b) sparse(0.1); S(a, b) = T(a, b);"
        )
        t = prog.statements[0].expr.tensor
        assert t.sparsity == "sparse"
        assert t.fill == pytest.approx(0.1)

    def test_unknown_annotation_rejected(self):
        with pytest.raises(ParseError, match="unknown tensor annotation"):
            parse_program("range V=2; index a:V; tensor T(a) bogus(1);")


class TestStatements:
    def test_fig1_parses(self, fig1_program):
        stmt = fig1_program.statements[0]
        assert stmt.result.name == "S"
        assert isinstance(stmt.expr, Sum)
        assert len(stmt.expr.indices) == 6
        assert isinstance(stmt.expr.body, Mul)
        assert len(stmt.expr.body.factors) == 4

    def test_accumulate(self):
        prog = parse_program(
            "range V=2; index a:V; tensor A(a); S(a) += A(a);"
        )
        assert prog.statements[0].accumulate

    def test_implicit_result_declaration(self):
        prog = parse_program("range V=2; index a:V; tensor A(a); S(a) = A(a);")
        assert prog.statements[0].result.indices[0].name == "a"

    def test_result_reused_as_input(self):
        prog = parse_program(
            "range V=2; index a, b:V; tensor A(a, b);"
            "T(a) = sum(b) A(a, b);"
            "S(a) = T(a);"
        )
        assert prog.statements[1].expr.tensor.name == "T"

    def test_lhs_free_mismatch_rejected(self):
        with pytest.raises(ParseError, match="free indices"):
            parse_program("range V=2; index a, b:V; tensor A(a, b); S(a) = A(a, b);")

    def test_lhs_redeclaration_mismatch(self):
        with pytest.raises(ParseError, match="do not match its declaration"):
            parse_program(
                "range V=2; index a, b:V; tensor A(a, b); tensor S(a, b);"
                "S(b, a) = A(a, b);"
            )


class TestExpressions:
    def test_addition_with_coefficients(self):
        prog = parse_program(
            "range V=2; index a:V; tensor A(a); tensor B(a);"
            "S(a) = 2 * A(a) - 0.5 * B(a);"
        )
        expr = prog.statements[0].expr
        assert isinstance(expr, Add)
        coefs = sorted(c for c, _ in expr.terms)
        assert coefs == [-0.5, 2.0]

    def test_leading_minus(self):
        prog = parse_program(
            "range V=2; index a:V; tensor A(a); S(a) = -A(a);"
        )
        expr = prog.statements[0].expr
        assert isinstance(expr, Add)
        assert expr.terms[0][0] == -1.0

    def test_parenthesized_subexpression(self):
        prog = parse_program(
            "range V=2; index a, b:V; tensor A(a,b); tensor B(a,b); tensor C(b);"
            "S(a) = sum(b) (A(a,b) + B(a,b)) * C(b);"
        )
        expr = prog.statements[0].expr
        assert isinstance(expr, Sum)
        assert isinstance(expr.body, Mul)
        assert isinstance(expr.body.factors[0], Add)

    def test_nested_sum(self):
        prog = parse_program(
            "range V=2; index a, b, c:V; tensor A(a,b); tensor B(b,c);"
            "S(a) = sum(b) A(a,b) * (sum(c) B(b,c));"
        )
        assert isinstance(prog.statements[0].expr, Sum)

    def test_undeclared_tensor_rejected(self):
        with pytest.raises(ParseError, match="undeclared tensor"):
            parse_program("range V=2; index a:V; S(a) = Q(a);")

    def test_undeclared_index_in_expr(self):
        with pytest.raises(ParseError, match="undeclared index"):
            parse_program("range V=2; index a:V; tensor A(a); S(a) = A(z);")


class TestErrorsAndLexing:
    def test_error_carries_location(self):
        with pytest.raises(ParseError) as err:
            parse_program("range V = ;")
        assert "line 1" in str(err.value)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("range V = 3000; @")

    def test_comments_ignored(self):
        prog = parse_program("# a comment\nrange V = 5; # trailing\n")
        assert prog.ranges[0].default == 5

    def test_multiline_location_tracking(self):
        with pytest.raises(ParseError) as err:
            parse_program("range V = 5;\nrange W = ;\n")
        assert "line 2" in str(err.value)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="expected ';'"):
            parse_program("range V = 5")


class TestParseExpression:
    def test_roundtrip_with_env(self, fig1_program):
        # reuse the program's declarations through a fresh parse
        from repro.expr.indices import Index, IndexRange

        v = IndexRange("V", 10)
        indices = {n: Index(n, v) for n in "ab"}
        from repro.expr.tensor import Tensor

        tensors = {"A": Tensor("A", (indices["a"], indices["b"]))}
        expr = parse_expression(
            "sum(b) A(a, b)", {"V": v}, indices, tensors
        )
        assert isinstance(expr, Sum)

    def test_trailing_garbage_rejected(self):
        from repro.expr.indices import Index, IndexRange
        from repro.expr.tensor import Tensor

        v = IndexRange("V", 10)
        indices = {"a": Index("a", v)}
        tensors = {"A": Tensor("A", (indices["a"],))}
        with pytest.raises(ParseError, match="trailing"):
            parse_expression("A(a) ;", {"V": v}, indices, tensors)
