"""Unit tests for report formatting."""

from repro.report import StageReport, format_table


class TestStageReport:
    def test_render_includes_name_and_details(self):
        r = StageReport("Stage X", {"key": 12345, "ratio": 1.5})
        text = r.render()
        assert "== Stage X ==" in text
        assert "12,345" in text
        assert "1.5" in text

    def test_notes_rendered(self):
        r = StageReport("S", {}, notes=["something happened"])
        assert "- something happened" in r.render()

    def test_empty_details(self):
        assert StageReport("S").render() == "== S =="

    def test_alignment(self):
        r = StageReport("S", {"a": 1, "longer key": 2})
        lines = r.render().splitlines()[1:]
        colons = [l.index(":") for l in lines]
        assert len(set(colons)) == 1


class TestFormatTable:
    def test_basic(self):
        text = format_table(["x", "count"], [["a", 1000], ["bb", 2]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "1,000" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text

    def test_column_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
