"""Shared-memory transport: wire protocol and process-backend parity.

The shm wire (:mod:`repro.runtime.shm`) must be invisible to everything
above it: the process backend run on ``transport="shm"`` has to produce
**bit-for-bit** the same results and traffic counters as on
``transport="pipe"`` (and as the in-process lock-step driver), fault
injection included.  ``shm_min_bytes=0`` forces every ndarray through a
segment so the parity tests exercise the shm path even at toy sizes.
"""

import numpy as np
import pytest

from repro.chem.workloads import ccsd_doubles_program
from repro.engine.executor import random_inputs
from repro.parallel.grid import ProcessorGrid
from repro.parallel.spmd import run_spmd
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.faults import FaultSchedule
from repro.runtime.process import SpmdProcessPool, run_spmd_process
from repro.runtime.shm import (
    DEFAULT_MIN_BYTES,
    SHM_AVAILABLE,
    pack_message,
    segment_of,
    unlink_segment,
    unpack_message,
)

MATMUL = """
range N = 6;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""

needs_shm = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="no POSIX shared memory"
)


def matmul_plan():
    res = synthesize(MATMUL, SynthesisConfig(grid=ProcessorGrid((2, 2))))
    inputs = random_inputs(res.program, None, seed=0)
    return res.partition_plans["C"], inputs


def assert_comm_equal(a, b):
    assert a.sent_elements == b.sent_elements
    assert a.received_elements == b.received_elements
    assert a.messages == b.messages
    assert a.dropped == b.dropped
    assert a.retries == b.retries
    assert a.total_traffic == b.total_traffic


class TestWireProtocol:
    def test_small_payload_stays_raw(self):
        msg = ("go", 3, np.arange(4.0))  # 32 B < DEFAULT_MIN_BYTES
        packed = pack_message(msg)
        assert packed[0] == "raw"
        assert segment_of(packed) is None
        got = unpack_message(packed)
        assert got[0] == "go" and got[1] == 3
        np.testing.assert_array_equal(got[2], msg[2])

    def test_min_bytes_none_is_pipe_only(self):
        big = np.zeros(2 * DEFAULT_MIN_BYTES)
        packed = pack_message(("load", big), None)
        assert packed[0] == "raw"

    @needs_shm
    def test_large_array_rides_a_segment(self):
        big = np.arange(float(DEFAULT_MIN_BYTES))  # 8x the threshold
        packed = pack_message(("load", {"A": big, "n": 7}))
        assert packed[0] == "shm"
        assert segment_of(packed) == packed[1]
        got = unpack_message(packed)
        assert got[0] == "load" and got[1]["n"] == 7
        np.testing.assert_array_equal(got[1]["A"], big)
        # receiver unlinked: the segment is gone
        assert not unlink_segment(packed[1])

    @needs_shm
    def test_round_trip_preserves_structure_dtype_and_order(self):
        rng = np.random.default_rng(0)
        msg = {
            "f64": rng.standard_normal((16, 16)),
            "i32": np.arange(512, dtype=np.int32),
            "noncontig": rng.standard_normal((32, 32)).T,
            "empty": np.zeros((0, 5)),
            "nested": [("piece", np.ones((64, 8)))],
            "scalar": 2.5,
        }
        got = unpack_message(pack_message(msg, 0))
        for key in ("f64", "i32", "noncontig", "empty"):
            np.testing.assert_array_equal(got[key], msg[key])
            assert got[key].dtype == msg[key].dtype
            assert got[key].shape == msg[key].shape
        np.testing.assert_array_equal(got["nested"][0][1], np.ones((64, 8)))
        assert got["nested"][0][0] == "piece"
        assert got["scalar"] == 2.5

    @needs_shm
    def test_unlink_segment_cleans_orphans(self):
        packed = pack_message({"A": np.zeros(DEFAULT_MIN_BYTES)}, 0)
        name = segment_of(packed)
        assert name is not None
        assert unlink_segment(name)  # orphan reclaimed
        assert not unlink_segment(name)  # second call: already gone
        assert not unlink_segment("repro_no_such_segment")


@needs_shm
class TestTransportParity:
    """shm vs pipe must agree bit-for-bit, counters included."""

    def _run(self, plan, inputs, transport, faults=None):
        pool = SpmdProcessPool(
            2,
            transport=transport,
            shm_min_bytes=0 if transport == "shm" else DEFAULT_MIN_BYTES,
        )
        with pool:
            return run_spmd_process(
                plan, inputs, pool=pool, faults=faults
            )

    def test_matmul_parity(self):
        plan, inputs = matmul_plan()
        local = run_spmd(plan, inputs)
        shm = self._run(plan, inputs, "shm")
        pipe = self._run(plan, inputs, "pipe")
        np.testing.assert_array_equal(shm.result, pipe.result)
        np.testing.assert_array_equal(shm.result, local.result)
        assert shm.supersteps == pipe.supersteps == local.supersteps
        assert_comm_equal(shm.comm, pipe.comm)
        assert_comm_equal(shm.comm, local.comm)

    def test_fault_schedule_parity(self):
        plan, inputs = matmul_plan()
        faults = FaultSchedule(
            drop_messages=(0, 3), drop_attempts=2, crash_supersteps={2}
        )
        shm = self._run(plan, inputs, "shm", faults=faults)
        pipe = self._run(plan, inputs, "pipe", faults=faults)
        assert shm.restarts == pipe.restarts == 1
        np.testing.assert_array_equal(shm.result, pipe.result)
        assert shm.comm.dropped == pipe.comm.dropped
        assert shm.comm.retries == pipe.comm.retries
        assert_comm_equal(shm.comm, pipe.comm)

    def test_run_parallel_shm_matches_pipe(self):
        prog = ccsd_doubles_program(V=4, O=3)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        inputs = random_inputs(prog, seed=2)
        shm = res.run_parallel(
            dict(inputs), backend="process", procs=1, transport="shm"
        )
        pipe = res.run_parallel(
            dict(inputs), backend="process", procs=1, transport="pipe"
        )
        for name in shm:
            np.testing.assert_array_equal(shm[name], pipe[name], err_msg=name)

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            SpmdProcessPool(1, transport="carrier-pigeon")


class TestProcsClamp:
    def test_oversubscribed_procs_clamped_with_note(self):
        prog = ccsd_doubles_program(V=4, O=3)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        inputs = random_inputs(prog, seed=2)
        local = res.run_parallel(dict(inputs), backend="local")
        out = res.run_parallel(
            dict(inputs), backend="process", procs=999
        )
        notes = [n for n in res.last_run_notes if "procs clamped" in n]
        import os

        ncpu = os.cpu_count() or 1
        # the worker count is first capped at grid size (2 here), then
        # clamped to the CPU count -- the note appears iff that bites
        requested = min(999, 2)
        if requested > ncpu:
            assert notes, res.last_run_notes
            assert f"-> {ncpu}" in notes[0]
            assert "os.cpu_count" in notes[0]
        else:
            assert not notes
        for name in local:
            np.testing.assert_array_equal(out[name], local[name])
