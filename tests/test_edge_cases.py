"""Edge-case coverage across modules: lexical corner cases, fallback
paths, and error reporting."""

import numpy as np
import pytest

from repro.expr.ast import Add, Mul, Sum, TensorRef
from repro.expr.canonical import canonical_key, flatten
from repro.expr.indices import Index, IndexRange
from repro.expr.parser import ParseError, parse_program
from repro.expr.tensor import Tensor


class TestLexicalEdges:
    def test_float_exponent_literals(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) = 1.5e2 * A(a);"
        )
        assert prog.statements[0].expr.terms[0][0] == 150.0

    def test_adjacent_statements_no_whitespace(self):
        prog = parse_program(
            "range N=2;index a:N;tensor A(a);S(a)=A(a);T(a)=A(a);"
        )
        assert len(prog.statements) == 2

    def test_deeply_nested_parens(self):
        prog = parse_program(
            "range N=2; index a:N; tensor A(a); S(a) = (((A(a))));"
        )
        assert isinstance(prog.statements[0].expr, TensorRef)

    def test_comment_only_program(self):
        prog = parse_program("# nothing here\n# at all\n")
        assert prog.statements == ()

    def test_empty_program(self):
        prog = parse_program("")
        assert prog.statements == ()

    def test_keyword_like_names_allowed_as_tensors(self):
        # 'range' etc. are contextual keywords at statement starts only;
        # 'summ' and 'cost1' are ordinary identifiers
        prog = parse_program(
            "range N=2; index a:N; tensor summ(a); S(a) = summ(a);"
        )
        assert prog.statements[0].expr.tensor.name == "summ"


class TestCanonicalFallbacks:
    def test_bound_variable_collision_uses_structural_key(self):
        """(sum(b) A(a,b)) * (sum(b) A(a,b)) cannot flatten (the two b's
        are distinct bound variables); the structural key still works."""
        N = IndexRange("N", 4)
        a, b = Index("a", N), Index("b", N)
        A = Tensor("A", (a, b))
        inner = Sum((b,), TensorRef(A, (a, b)))
        expr = Mul((inner, inner))
        key = canonical_key(expr)
        assert key[0] == "structural"
        assert key == canonical_key(Mul((inner, inner)))

    def test_flatten_raises_on_collision(self):
        N = IndexRange("N", 4)
        a, b = Index("a", N), Index("b", N)
        A = Tensor("A", (a, b))
        inner = Sum((b,), TensorRef(A, (a, b)))
        with pytest.raises(OverflowError):
            flatten(Mul((inner, inner)))

    def test_zero_coefficient_term_dropped(self):
        N = IndexRange("N", 4)
        a = Index("a", N)
        A = Tensor("A", (a,))
        ref = TensorRef(A, (a,))
        e = Add(((0.5, ref), (-0.5, ref), (1.0, ref)))
        assert canonical_key(e) == canonical_key(ref)


class TestInterpreterEdges:
    def test_scalar_target(self):
        from repro.codegen.builder import build_unfused
        from repro.codegen.interp import execute

        prog = parse_program(
            "range N=3; index a:N; tensor A(a); E() = sum(a) A(a) * A(a);"
        )
        block = build_unfused(prog.statements)
        arr = np.array([1.0, 2.0, 3.0])
        env = execute(block, {"A": arr})
        assert float(env["E"]) == pytest.approx(14.0)

    def test_missing_input_raises(self):
        from repro.codegen.builder import build_unfused
        from repro.codegen.interp import execute

        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) = A(a);"
        )
        block = build_unfused(prog.statements)
        with pytest.raises(KeyError, match="neither input nor allocated"):
            execute(block, {})

    def test_negative_coefficient(self):
        from repro.codegen.builder import build_unfused
        from repro.codegen.interp import execute

        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) = -A(a);"
        )
        block = build_unfused(prog.statements)
        arr = np.array([1.0, -2.0, 3.0])
        env = execute(block, {"A": arr})
        np.testing.assert_array_equal(env["S"], -arr)


class TestPygenEdges:
    def test_scalar_access_in_generated_code(self):
        from repro.codegen.builder import build_unfused
        from repro.codegen.pygen import compile_loops

        prog = parse_program(
            "range N=3; index a:N; tensor A(a); E() = sum(a) A(a) * A(a);"
        )
        kernel = compile_loops(build_unfused(prog.statements))
        env = kernel({"A": np.array([1.0, 2.0, 3.0])})
        assert float(env["E"]) == pytest.approx(14.0)

    def test_function_call_in_generated_code(self):
        from repro.chem.integrals import make_integral
        from repro.codegen.builder import build_unfused
        from repro.codegen.pygen import compile_loops

        prog = parse_program(
            "range N=3; index a:N; function f(a) cost 5; T(a) = f(a);"
        )
        kernel = compile_loops(build_unfused(prog.statements))
        impl = make_integral("f")
        env = kernel({}, {"f": impl})
        for k in range(3):
            assert env["T"][k] == pytest.approx(float(impl(k)))


class TestOpminEdges:
    def test_six_factor_term(self):
        """Larger factor counts exercise the 3^n DP comfortably."""
        from repro.opmin.multi_term import optimize_statement
        from repro.opmin.cost import sequence_op_count, statement_op_count

        lines = ["range N = 4;", "index " + ", ".join("abcdefg") + " : N;"]
        refs = []
        names = "abcdefg"
        for k in range(6):
            i1, i2 = names[k], names[(k + 1) % 7]
            lines.append(f"tensor T{k}({i1}, {i2});")
            refs.append(f"T{k}({i1},{i2})")
        lines.append(
            "S(a) = sum(" + ", ".join(names[1:]) + ") " + " * ".join(refs) + ";"
        )
        prog = parse_program("\n".join(lines))
        seq = optimize_statement(prog.statements[0])
        assert sequence_op_count(seq) < statement_op_count(prog.statements[0])

    def test_identical_factor_twice(self):
        """A squared factor (A*A) survives optimization and evaluation."""
        from repro.engine.executor import random_inputs, run_statements
        from repro.opmin.multi_term import optimize_statement

        prog = parse_program(
            "range N=4; index a, b : N; tensor A(a, b);"
            "S(a) = sum(b) A(a, b) * A(a, b);"
        )
        seq = optimize_statement(prog.statements[0])
        arrays = random_inputs(prog, seed=0)
        want = run_statements(prog.statements, arrays)["S"]
        got = run_statements(seq, arrays)["S"]
        np.testing.assert_allclose(got, want, rtol=1e-12)


class TestFusionEdges:
    def test_single_statement_tree(self):
        from repro.fusion.memopt import minimize_memory
        from repro.fusion.tree import build_tree

        prog = parse_program(
            "range N=4; index a, b : N; tensor A(a, b);"
            "S(a) = sum(b) A(a, b);"
        )
        root = build_tree(prog.statements)
        result = minimize_memory(root)
        assert result.total_memory == 0  # no temporaries at all

    def test_scalar_root(self):
        from repro.fusion.memopt import minimize_memory
        from repro.fusion.tree import build_tree

        prog = parse_program(
            "range N=4; index a, b : N; tensor A(a, b);"
            "T(a) = sum(b) A(a, b);"
            "E() = sum(a) T(a) * T(a);"
        )
        # T has two references in one statement -> still one consumer
        root = build_tree(prog.statements)
        result = minimize_memory(root)
        assert result.total_memory <= 4
