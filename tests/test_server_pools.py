"""Warm pool registry: reuse, health eviction, reaping, server path.

The regression at the heart of this file: a pool whose worker died
mid-request used to be parked back into the warm registry and handed
to the next (innocent) request.  The registry must evict broken pools
on release, catch workers killed *between* requests on lease, and the
server must recover with a fresh pool on the very next request.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.robustness.errors import CommFailure
from repro.server.app import ReproServer, ServerConfig
from repro.server.client import arequest
from repro.server.pools import PoolRegistry

MATMUL = """
range N = 8;
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


class FakePool:
    """A stand-in with the SpmdProcessPool health surface."""

    def __init__(self, procs, transport="shm"):
        self.procs = procs
        self.transport = transport
        self._broken = False
        self._alive = True
        self.closed = False

    @property
    def broken(self):
        return self._broken

    def healthy(self):
        return not self._broken and self._alive

    def mark_broken(self):
        self._broken = True

    def kill_worker(self):
        """A worker dies between requests (no mid-protocol EOF seen)."""
        self._alive = False

    def close(self):
        self.closed = True


@pytest.fixture
def registry():
    return PoolRegistry(
        max_idle_per_key=2, idle_timeout_s=100.0, clock=lambda: _now[0],
        pool_factory=FakePool,
    )


_now = [0.0]


@pytest.fixture(autouse=True)
def _reset_clock():
    _now[0] = 0.0


class TestRegistry:
    def test_cold_lease_creates(self, registry):
        pool, warm = registry.lease(2, "shm")
        assert not warm
        assert isinstance(pool, FakePool)
        assert registry.stats()["created"] == 1
        assert registry.stats()["busy"] == 1

    def test_release_then_lease_reuses(self, registry):
        pool, _ = registry.lease(2, "shm")
        registry.release(pool)
        again, warm = registry.lease(2, "shm")
        assert warm
        assert again is pool
        assert registry.stats()["reused"] == 1
        assert registry.stats()["created"] == 1

    def test_keys_are_isolated(self, registry):
        pool, _ = registry.lease(2, "shm")
        registry.release(pool)
        other, warm = registry.lease(2, "pipe")
        assert not warm
        assert other is not pool
        third, warm = registry.lease(4, "shm")
        assert not warm

    def test_lifo_reuse(self, registry):
        a, _ = registry.lease(2, "shm")
        b, _ = registry.lease(2, "shm")
        registry.release(a)
        registry.release(b)  # b parked last -> leased first
        first, _ = registry.lease(2, "shm")
        assert first is b

    def test_broken_pool_evicted_on_release(self, registry):
        """THE regression: a broken pool must never be parked."""
        pool, _ = registry.lease(2, "shm")
        pool.mark_broken()
        registry.release(pool)
        assert pool.closed
        assert registry.stats()["idle"] == 0
        assert registry.stats()["evicted_broken"] == 1
        fresh, warm = registry.lease(2, "shm")
        assert not warm
        assert fresh is not pool

    def test_worker_killed_while_parked_evicted_on_lease(self, registry):
        pool, _ = registry.lease(2, "shm")
        registry.release(pool)
        pool.kill_worker()  # dies while idle: no EOF marked it broken
        fresh, warm = registry.lease(2, "shm")
        assert not warm
        assert fresh is not pool
        assert pool.closed
        assert registry.stats()["evicted_broken"] == 1

    def test_max_idle_overflow_discards_oldest(self, registry):
        pools = [registry.lease(2, "shm")[0] for _ in range(3)]
        for pool in pools:
            registry.release(pool)
        stats = registry.stats()
        assert stats["idle"] == 2
        assert stats["discarded"] == 1
        assert pools[0].closed, "oldest parked pool discarded"

    def test_reap_idle_pools(self, registry):
        pool, _ = registry.lease(2, "shm")
        registry.release(pool)
        _now[0] = 50.0
        assert registry.reap() == 0, "not idle long enough"
        _now[0] = 101.0
        assert registry.reap() == 1
        assert pool.closed
        assert registry.stats()["idle"] == 0
        assert registry.stats()["reaped"] == 1

    def test_drain_closes_everything_parked(self, registry):
        a, _ = registry.lease(2, "shm")
        b, _ = registry.lease(4, "shm")
        registry.release(a)
        registry.release(b)
        registry.drain()
        assert a.closed and b.closed
        assert registry.stats()["idle"] == 0

    def test_foreign_pool_release_closes_defensively(self, registry):
        stray = FakePool(2)
        registry.release(stray)
        assert stray.closed
        assert registry.stats()["idle"] == 0


class TestRealPools:
    def test_mid_request_worker_death_marks_broken_then_evicted(self):
        """Worker dies mid-protocol: the run raises CommFailure, the
        pool is marked broken, and release evicts instead of parking."""
        from repro.pipeline import SynthesisConfig, synthesize
        from repro.engine.executor import random_inputs
        from repro.parallel.grid import ProcessorGrid

        config = SynthesisConfig(grid=ProcessorGrid((2,)))
        result = synthesize(MATMUL, config)
        inputs = random_inputs(result.program, config.bindings, seed=0)
        registry = PoolRegistry()
        pool, _ = registry.lease(2, "shm")
        # force the workers up, then kill one under the router
        workers = pool.workers(2)
        workers[0][0].terminate()
        workers[0][0].join(timeout=10)
        with pytest.raises(CommFailure):
            result.run_parallel(
                inputs, backend="process", procs=2, pool=pool
            )
        assert pool.broken
        registry.release(pool)
        assert registry.stats()["evicted_broken"] == 1
        assert registry.stats()["idle"] == 0
        # the next lease gets a healthy replacement that actually works
        fresh, warm = registry.lease(2, "shm")
        assert not warm
        out = result.run_parallel(
            inputs, backend="process", procs=2, pool=fresh
        )
        assert "C" in out
        registry.release(fresh)
        registry.drain()


class TestServerPath:
    def test_dead_parked_pool_not_reused_by_next_request(self):
        """Through real HTTP: execute parks a warm pool; its workers are
        killed; the next identical request must get a fresh pool (and a
        correct answer), with the dead one counted evicted."""

        async def check(app, host, port):
            payload = {
                "program": MATMUL, "options": {"grid": 2},
                "result": "checksum", "seed": 5,
            }
            status, first = await arequest(
                host, port, "POST", "/v1/execute", payload
            )
            assert status == 200
            assert first["pool"]["warm"] is False
            assert app.pools.stats()["idle"] == 1
            # kill the parked pool's workers behind the registry's back
            ((parked, _),) = next(iter(app.pools._idle.values()))
            for proc, _ in parked._workers:
                proc.terminate()
                proc.join(timeout=10)
            status, second = await arequest(
                host, port, "POST", "/v1/execute", payload
            )
            assert status == 200
            assert second["pool"]["warm"] is False, "dead pool not reused"
            assert second["outputs"]["C"]["sum"] == pytest.approx(
                first["outputs"]["C"]["sum"], rel=1e-9
            )
            stats = app.pools.stats()
            assert stats["evicted_broken"] == 1
            assert stats["created"] == 2

        async def wrapper():
            app = ReproServer(ServerConfig(port=0))
            await app.start()
            try:
                await check(app, app.host, app.port)
            finally:
                await app.stop()

        asyncio.run(wrapper())

    def test_warm_pool_reused_across_requests(self):
        async def check(app, host, port):
            payload = {
                "program": MATMUL, "options": {"grid": 2},
                "result": "checksum",
            }
            _, first = await arequest(
                host, port, "POST", "/v1/execute", payload
            )
            _, second = await arequest(
                host, port, "POST", "/v1/execute", payload
            )
            assert first["pool"]["warm"] is False
            assert second["pool"]["warm"] is True
            assert app.pools.stats()["created"] == 1
            assert app.pools.stats()["reused"] == 1

        async def wrapper():
            app = ReproServer(ServerConfig(port=0))
            await app.start()
            try:
                await check(app, app.host, app.port)
            finally:
                await app.stop()

        asyncio.run(wrapper())
