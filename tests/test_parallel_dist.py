"""Tests for grids, distribution tuples, and redistribution costs
(paper Section 7 examples)."""

import numpy as np
import pytest

from repro.expr.indices import Index, IndexRange
from repro.parallel.commcost import (
    move_cost_elements,
    received_elements,
    reduction_comm_elements,
    reduction_result_dist,
)
from repro.parallel.dist import (
    Distribution,
    REPLICATED,
    SINGLE,
    enumerate_distributions,
    no_replicate,
)
from repro.parallel.grid import ProcessorGrid, myrange

N = IndexRange("N", 8)
J, K, T = Index("j", N), Index("k", N), Index("t", N)


class TestMyrange:
    def test_even_split(self):
        assert myrange(0, 8, 4) == (0, 2)
        assert myrange(3, 8, 4) == (6, 8)

    def test_uneven_split_balanced(self):
        # 7 over 3: 3, 2, 2
        assert myrange(0, 7, 3) == (0, 3)
        assert myrange(1, 7, 3) == (3, 5)
        assert myrange(2, 7, 3) == (5, 7)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            myrange(4, 8, 4)


class TestProcessorGrid:
    def test_size_and_ranks(self):
        grid = ProcessorGrid((2, 4, 8))
        assert grid.size == 64
        assert len(list(grid.ranks())) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorGrid(())
        with pytest.raises(ValueError):
            ProcessorGrid((2, 0))


class TestDistribution:
    """The paper's worked example: B[j,k,t] on a 2x4x8 grid with
    3-tuple <k,*,1>."""

    def setup_method(self):
        self.grid = ProcessorGrid((2, 4, 8))
        self.dist = Distribution((K, REPLICATED, SINGLE))
        self.indices = (J, K, T)

    def test_holds_only_third_coordinate_zero(self):
        assert self.dist.holds((0, 1, 0))
        assert self.dist.holds((1, 3, 0))
        assert not self.dist.holds((0, 0, 1))

    def test_local_ranges_match_paper(self):
        """Processor (z1, z2, 0) gets B[1:Nj, myrange(z1,Nk,2), 1:Nt]."""
        ranges = self.dist.local_ranges(self.indices, (1, 2, 0), self.grid)
        assert ranges == [(0, 8), (4, 8), (0, 8)]

    def test_excluded_processor_holds_nothing(self):
        assert (
            self.dist.local_ranges(self.indices, (1, 2, 3), self.grid) is None
        )
        assert self.dist.local_size(self.indices, (1, 2, 3), self.grid) == 0

    def test_holder_count(self):
        # replicated along dim 2 (4 procs), distributed dim 1 (2), single dim 3
        assert self.dist.holder_count(self.grid) == 8

    def test_effective_maps_foreign_index_to_replication(self):
        dist = Distribution((T, J))
        eff = dist.effective((J, K))
        assert eff.entries[0] is REPLICATED
        assert eff.entries[1] == J

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError):
            Distribution((J, J))

    def test_ownership_mask_counts(self):
        mask = self.dist.ownership_mask(self.indices, (1, 2, 0), self.grid)
        assert mask.sum() == 8 * 4 * 8

    def test_str(self):
        assert str(self.dist) == "<k,*,1>"


class TestEnumerateDistributions:
    def test_count_formula(self):
        """q on a 2-D grid over 2 indices: entries from {j,k,*,1} minus
        repeated-index tuples: 4*4 - 2 = 14."""
        grid = ProcessorGrid((2, 2))
        dists = enumerate_distributions((J, K), grid)
        assert len(dists) == 14

    def test_no_replicate_predicate(self):
        assert no_replicate(Distribution((J, SINGLE)))
        assert not no_replicate(Distribution((J, REPLICATED)))


class TestRedistributionCosts:
    """The paper's Section-7 example: T1 <1,t,j> -> <j,t,1> moves data;
    T2 <j,*,1> -> <j,t,1> is free."""

    def setup_method(self):
        self.grid = ProcessorGrid((2, 2, 2))
        self.indices = (J, T)  # arrays T1[j,t], T2[j,t]

    def test_free_redistribution_from_replication(self):
        src = Distribution((J, REPLICATED, SINGLE))
        dst = Distribution((J, T, SINGLE))
        assert move_cost_elements(self.indices, src, dst, self.grid) == 0

    def test_moving_redistribution_costs(self):
        src = Distribution((SINGLE, T, J))
        dst = Distribution((J, T, SINGLE))
        cost = move_cost_elements(self.indices, src, dst, self.grid)
        assert cost > 0

    def test_identity_is_free(self):
        d = Distribution((J, T, SINGLE))
        assert move_cost_elements(self.indices, d, d, self.grid) == 0

    def test_received_elements_exact(self):
        """Gather to a single processor: rank (0,0,0) receives everything
        it does not already hold."""
        src = Distribution((J, T, SINGLE))
        dst = Distribution((SINGLE, SINGLE, SINGLE))
        got = received_elements(
            self.indices, src, dst, (0, 0, 0), self.grid
        )
        # full array 64, own block 4x4=16 -> receives 48
        assert got == 48
        # others receive nothing
        assert received_elements(
            self.indices, src, dst, (1, 0, 0), self.grid
        ) == 0

    def test_block_to_block_same_partition_free(self):
        src = Distribution((J, SINGLE, SINGLE))
        dst = Distribution((J, SINGLE, SINGLE))
        for rank in self.grid.ranks():
            assert received_elements(
                self.indices, src, dst, rank, self.grid
            ) == 0

    def test_swap_dimensions(self):
        """<j,t,1> -> <t,j,1>: blocks change unless diagonal."""
        src = Distribution((J, T, SINGLE))
        dst = Distribution((T, J, SINGLE))
        diag = received_elements(self.indices, src, dst, (0, 0, 0), self.grid)
        off = received_elements(self.indices, src, dst, (0, 1, 0), self.grid)
        assert diag == 0  # (0,0) block is the same region
        assert off == 16  # entire target block differs


class TestReductionCosts:
    def test_result_dist_combine_and_replicate(self):
        dist = Distribution((J, K))
        combined = reduction_result_dist(dist, K, replicate=False)
        assert combined.entries[1] is SINGLE
        replicated = reduction_result_dist(dist, K, replicate=True)
        assert replicated.entries[1] is REPLICATED

    def test_comm_elements(self):
        grid = ProcessorGrid((2, 4))
        dist = Distribution((J, K))
        # result is [j]; root along dim 1 receives 3 partial blocks of
        # j-block size 4
        cost = reduction_comm_elements((J,), dist, K, grid)
        assert cost == 3 * 4

    def test_undistributed_index_is_free(self):
        grid = ProcessorGrid((2, 2))
        dist = Distribution((J, SINGLE))
        assert reduction_comm_elements((J,), dist, K, grid) == 0

    def test_single_processor_dimension_free(self):
        grid = ProcessorGrid((2, 1))
        dist = Distribution((J, K))
        assert reduction_comm_elements((J,), dist, K, grid) == 0
