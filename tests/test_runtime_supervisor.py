"""Supervised pools, chaos schedules, and the recv watchdog.

The fault-tolerance contract (``docs/architecture.md`` section 13):
every process-level failure -- a worker killed, hung, or silently
swallowing its reply -- is detected (watchdog / broken pipe), the pool
is respawned, and the failed statement re-runs **bit-identically**
against the clean run, with every recovery step recorded in notes.
The property-based test drives random :class:`ChaosSchedule`\\ s
through the supervisor to check that contract holds regardless of
which ordinals fire which actions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import random_inputs
from repro.parallel.grid import ProcessorGrid
from repro.parallel.spmd import run_spmd
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.errors import (
    CommFailure,
    DeadlineExceeded,
    SpecError,
)
from repro.robustness.faults import (
    ChaosSchedule,
    ChaosState,
    parse_chaos_spec,
)
from repro.runtime.process import SpmdProcessPool, run_spmd_process
from repro.runtime.supervisor import PoolSupervisor, deadline_clock

MATMUL = """
range N = 6;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


@pytest.fixture(scope="module")
def matmul():
    res = synthesize(MATMUL, SynthesisConfig(grid=ProcessorGrid((2, 2))))
    inputs = random_inputs(res.program, None, seed=0)
    expect = run_spmd(res.partition_plans["C"], inputs).result
    return res, inputs, expect


class TestChaosSchedule:
    def test_parse_all_clauses(self):
        sched = parse_chaos_spec("kill_worker@3;hang_worker@0,5;drop_reply@2")
        assert sched.kill_worker == (3,)
        assert sched.hang_worker == (0, 5)
        assert sched.drop_reply == (2,)
        assert sched.any_chaos
        assert sched.max_ordinal() == 5

    @pytest.mark.parametrize(
        "bad",
        ["kill@0", "kill_worker", "kill_worker@", "kill_worker@-1",
         "kill_worker@x", "drop_reply:2"],
    )
    def test_bad_specs_are_spec_errors(self, bad):
        with pytest.raises(SpecError) as exc:
            parse_chaos_spec(bad)
        assert exc.value.stage == "chaos-injection"

    def test_action_precedence_kill_beats_hang(self):
        sched = ChaosSchedule(kill_worker=(1,), hang_worker=(1,))
        assert sched.action_at(1) == "kill_worker"

    def test_state_fires_each_ordinal_once(self):
        state = ChaosState(parse_chaos_spec("kill_worker@1"))
        assert state.next_action() is None  # ordinal 0
        assert state.next_action() == "kill_worker"  # ordinal 1
        assert state.next_action() is None  # ordinal 2: already fired
        assert state.fired == [(1, "kill_worker")]
        assert state.exhausted


class TestWatchdog:
    def test_hung_worker_raises_within_timeout(self, matmul):
        """A hung worker must surface a structured CommFailure via
        ``conn.poll`` -- not block ``_recv`` forever (the satellite
        fix this PR exists for)."""
        res, inputs, _ = matmul
        state = ChaosState(parse_chaos_spec("hang_worker@0"))
        pool = SpmdProcessPool(1, recv_timeout_s=0.5, chaos=state)
        with pool:
            with pytest.raises(CommFailure) as exc:
                run_spmd_process(
                    res.partition_plans["C"], inputs, pool=pool
                )
        assert exc.value.stage == "spmd-process"
        assert "watchdog" in exc.value.message
        assert pool.broken

    def test_dropped_reply_caught_by_watchdog(self, matmul):
        """drop_reply executes the command but swallows the answer --
        only the watchdog can tell."""
        res, inputs, _ = matmul
        state = ChaosState(parse_chaos_spec("drop_reply@0"))
        pool = SpmdProcessPool(1, recv_timeout_s=0.5, chaos=state)
        with pool:
            with pytest.raises(CommFailure) as exc:
                run_spmd_process(
                    res.partition_plans["C"], inputs, pool=pool
                )
        assert exc.value.stage == "spmd-process"

    def test_no_timeout_means_no_watchdog_overhead(self, matmul):
        res, inputs, expect = matmul
        pool = SpmdProcessPool(1)  # recv_timeout_s=None: legacy blocking
        with pool:
            run = run_spmd_process(
                res.partition_plans["C"], inputs, pool=pool
            )
        np.testing.assert_array_equal(run.result, expect)


class TestCloseEscalation:
    def test_stubborn_worker_is_killed_not_leaked(self):
        """A worker that survives terminate() must be SIGKILLed and its
        connection closed (the shutdown-leak satellite fix)."""

        class StubbornProc:
            def __init__(self):
                self.alive = True
                self.terminated = False
                self.killed = False

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return self.alive

            def terminate(self):
                self.terminated = True  # ignored: stays alive

            def kill(self):
                self.killed = True
                self.alive = False

        class DeadConn:
            def __init__(self):
                self.closed = False

            def send(self, msg):
                raise OSError("peer gone")

            def close(self):
                self.closed = True

        pool = SpmdProcessPool(1)
        proc, conn = StubbornProc(), DeadConn()
        pool._workers = [(proc, conn)]
        pool.close()
        assert proc.terminated and proc.killed
        assert not proc.alive
        assert conn.closed
        assert pool._workers == []


class TestSupervisor:
    def test_kill_respawns_and_result_is_bit_identical(self, matmul):
        res, inputs, expect = matmul
        state = ChaosState(parse_chaos_spec("kill_worker@0"))
        events = []
        sup = PoolSupervisor(
            4, chaos=state, recv_timeout_s=5.0,
            on_respawn=lambda old, new: events.append((old, new)),
        )
        with sup:
            out = res.run_parallel(
                dict(inputs), backend="process", procs=4, supervisor=sup
            )
        np.testing.assert_array_equal(out["C"], expect)
        assert state.fired == [(0, "kill_worker")]
        assert sup.respawns == 1 and sup.retries == 1
        # first spawn + respawn both announce; respawn carries the old
        assert len(events) == 2
        assert events[0][0] is None and events[1][0] is not None
        assert any("retry" in n for n in res.last_run_notes)
        assert any("respawn" in n for n in res.last_run_notes)

    def test_retry_exhaustion_raises_comm_failure(self, matmul):
        res, inputs, _ = matmul
        # kill on every early ordinal: attempts 1 and 2 both die, and
        # the budget of 1 retry is spent
        state = ChaosState(
            ChaosSchedule(kill_worker=tuple(range(8)))
        )
        sup = PoolSupervisor(
            4, chaos=state, recv_timeout_s=5.0, max_statement_retries=1
        )
        with sup:
            with pytest.raises(CommFailure):
                res.run_parallel(
                    dict(inputs), backend="process", procs=4,
                    supervisor=sup,
                )
        assert sup.retries == 1
        assert any("giving up" in n for n in sup.notes)

    def test_logical_faults_are_not_retried(self, matmul):
        """CommFailure with stage='spmd' (deterministic logical fault,
        e.g. injected crashes beyond the restart limit) must propagate
        -- retrying a deterministic failure would loop pointlessly."""
        sup = PoolSupervisor(1, recv_timeout_s=5.0)

        def deterministic_failure(pool):
            raise CommFailure("beyond restart limit", stage="spmd")

        with sup:
            sup.ensure_pool()
            with pytest.raises(CommFailure):
                sup.run_statement(deterministic_failure)
        assert sup.retries == 0

    def test_expired_deadline_stops_retries(self, matmul):
        sup = PoolSupervisor(
            1, recv_timeout_s=5.0, time_left=lambda: 0.0,
            max_statement_retries=3,
        )

        def process_failure(pool):
            raise CommFailure("worker died", stage="spmd-process")

        with sup:
            sup.ensure_pool()
            with pytest.raises(DeadlineExceeded):
                sup.run_statement(process_failure)
        assert sup.retries == 0

    def test_detach_strips_chaos(self):
        state = ChaosState(parse_chaos_spec("kill_worker@0"))
        sup = PoolSupervisor(1, chaos=state, recv_timeout_s=5.0)
        pool = sup.ensure_pool()
        assert pool.chaos is state
        handed = sup.detach()
        assert handed is pool
        assert handed.chaos is None, "warm-parked pool must not carry chaos"
        handed.close()

    def test_adopted_pool_gets_watchdog_installed(self):
        pool = SpmdProcessPool(1)
        assert pool.recv_timeout_s is None
        sup = PoolSupervisor(pool=pool, recv_timeout_s=3.0)
        assert pool.recv_timeout_s == 3.0
        assert sup.procs == 1 and sup.transport == pool.transport
        sup.close()

    def test_deadline_clock(self):
        t = [100.0]
        left = deadline_clock(500, now=lambda: t[0])
        assert left() == pytest.approx(0.5)
        t[0] = 100.6
        assert left() < 0
        assert deadline_clock(None) is None


class TestChaosProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        kills=st.lists(
            st.integers(0, 3), max_size=2, unique=True
        ),
        hangs=st.lists(
            st.integers(0, 3), max_size=1, unique=True
        ),
        drops=st.lists(
            st.integers(0, 3), max_size=1, unique=True
        ),
    )
    def test_any_schedule_recovers_bit_identically(
        self, matmul, kills, hangs, drops
    ):
        """For ANY chaos schedule, a supervisor with enough retry
        budget produces the exact clean-run result -- recovery is
        invisible in the output, visible only in the notes."""
        res, inputs, expect = matmul
        sched = ChaosSchedule(
            kill_worker=tuple(kills),
            hang_worker=tuple(hangs),
            drop_reply=tuple(drops),
        )
        state = ChaosState(sched)
        events = len(kills) + len(hangs) + len(drops)
        sup = PoolSupervisor(
            4, chaos=state, recv_timeout_s=0.5,
            max_statement_retries=events + 1,
        )
        with sup:
            out = res.run_parallel(
                dict(inputs), backend="process", procs=4, supervisor=sup
            )
        np.testing.assert_array_equal(out["C"], expect)
        # every retry answers >= 1 fired event (several events can fire
        # within one superstep when the grid spans several workers);
        # and chaos that fired always forced at least one retry
        assert sup.retries <= len(state.fired)
        assert (sup.retries >= 1) == bool(state.fired)
        assert sup.respawns == sup.retries
