"""Focused interpreter tests: tile guards, counters, analyses
consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.codegen.builder import apply_tiling, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Loop,
    LoopVar,
    ZeroArr,
    loop_op_count,
    peak_memory,
    total_memory,
)

N = IndexRange("N", 5)
A_IDX = Index("a", N)


class TestTileGuards:
    def test_out_of_range_iterations_skipped(self):
        """N=5, B=2: the (tile=2, intra=1) slot maps to a=5 and must be
        skipped -- measured assign executions equal N exactly."""
        tile = LoopVar(A_IDX, "tile", 2)
        intra = LoopVar(A_IDX, "intra", 2)
        target = Access("S", ((tile, intra),))
        src = Access("A", ((tile, intra),))
        block = (
            Alloc("S", ((LoopVar(A_IDX),),)),
            ZeroArr("S"),
            Loop(tile, (Loop(intra, (Assign(target, (src,), True),)),)),
        )
        counters = Counters()
        env = execute(block, {"A": np.arange(5.0)}, counters=counters)
        np.testing.assert_array_equal(env["S"], np.arange(5.0))
        assert counters.flops == 5  # one add per valid iteration

    def test_static_count_matches_guarded_execution(self):
        tile = LoopVar(A_IDX, "tile", 2)
        intra = LoopVar(A_IDX, "intra", 2)
        target = Access("S", ((tile, intra),))
        src = Access("A", ((tile, intra),))
        block = (
            Alloc("S", ((LoopVar(A_IDX),),)),
            ZeroArr("S"),
            Loop(tile, (Loop(intra, (Assign(target, (src,), True),)),)),
        )
        counters = Counters()
        execute(block, {"A": np.arange(5.0)}, counters=counters)
        assert counters.flops == loop_op_count(block)


class TestCounters:
    def test_alloc_counted_once_per_name(self):
        prog = parse_program("""
        range N = 3;
        index a, b : N;
        tensor X(a, b);
        S(a) = sum(b) X(a, b);
        """)
        block = build_unfused(prog.statements)
        counters = Counters()
        execute(block, random_inputs(prog, seed=0), counters=counters)
        assert counters.elements_allocated == 3  # S only, once

    def test_realloc_inside_loop_counts_once(self):
        inner_alloc = Alloc("T", ())
        tgt = Access("T", ())
        block = (
            Loop(
                LoopVar(A_IDX),
                (inner_alloc, Assign(tgt, (tgt,), False)),
            ),
        )
        counters = Counters()
        execute(block, {}, counters=counters)
        assert counters.elements_allocated == 1


class TestAnalysesConsistency:
    def test_peak_never_exceeds_total(self):
        prog = parse_program("""
        range N = 4;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c);
        T(a, c) = sum(b) A(a, b) * B(b, c);
        S(a) = sum(c) T(a, c) * T(a, c);
        """)
        block = build_unfused(prog.statements)
        assert peak_memory(block) <= total_memory(block)

    def test_fused_peak_le_unfused_peak(self, fig1_program):
        from repro.codegen.builder import build_fused
        from repro.fusion.memopt import minimize_memory
        from repro.fusion.tree import build_tree
        from repro.opmin.multi_term import optimize_statement

        seq = optimize_statement(fig1_program.statements[0])
        unfused = build_unfused(seq)
        fused = build_fused(minimize_memory(build_tree(seq)))
        assert peak_memory(fused) <= peak_memory(unfused)

    @given(st.integers(min_value=1, max_value=9))
    @settings(max_examples=9, deadline=None)
    def test_guarded_count_independent_of_block_size(self, b):
        """Any block size yields the same executed-op count for a
        statement covering its tiled index."""
        prog = parse_program("""
        range N = 9;
        index a, b : N;
        tensor A(a, b);
        S(a) = sum(b) A(a, b);
        """)
        block = build_unfused(prog.statements)
        a = next(i for i in prog.statements[0].expr.free if i.name == "a")
        tiled = apply_tiling(block, {a: b}, keep_global=["S"])
        assert loop_op_count(tiled) == loop_op_count(block)


class TestSpmdDeterminism:
    def test_generated_source_is_deterministic(self):
        from repro.parallel.grid import ProcessorGrid
        from repro.parallel.partition import optimize_distribution
        from repro.parallel.ptree import expression_to_ptree
        from repro.parallel.spmd import generate_spmd_source

        prog = parse_program("""
        range N = 8;
        index i, j, k : N;
        tensor A(i, k); tensor B(k, j);
        C(i, j) = sum(k) A(i, k) * B(k, j);
        """)
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2, 2))
        plan = optimize_distribution(tree, grid)
        s1 = generate_spmd_source(plan)
        s2 = generate_spmd_source(plan)
        assert s1 == s2
