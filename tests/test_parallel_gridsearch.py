"""Tests for logical grid-shape selection."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel
from repro.parallel.gridsearch import choose_grid, grid_shapes
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator


def matmul_tree(n=8):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


class TestGridShapes:
    def test_sixteen(self):
        shapes = set(grid_shapes(16, max_dims=3))
        assert (16,) in shapes
        assert (4, 4) in shapes
        assert (2, 8) in shapes and (8, 2) in shapes
        assert (2, 2, 4) in shapes
        for shape in shapes:
            prod = 1
            for p in shape:
                prod *= p
            assert prod == 16

    def test_prime(self):
        assert grid_shapes(7) == [(7,)]

    def test_one(self):
        assert grid_shapes(1) == [(1,)]

    def test_max_dims_respected(self):
        shapes = grid_shapes(16, max_dims=2)
        assert all(len(s) <= 2 for s in shapes)


class TestChooseGrid:
    def test_beats_or_matches_every_shape(self):
        tree, stmt, prog = matmul_tree()
        choice = choose_grid(tree, 8)
        for shape, cost in choice.table:
            assert choice.plan.total_cost <= cost

    def test_matches_manual_best(self):
        tree, stmt, prog = matmul_tree()
        model = CommModel()
        choice = choose_grid(tree, 4, model)
        manual = min(
            optimize_distribution(
                tree, ProcessorGrid(shape), model
            ).total_cost
            for shape in [(4,), (2, 2)]
        )
        assert choice.plan.total_cost == pytest.approx(manual)

    def test_chosen_plan_executes_correctly(self):
        tree, stmt, prog = matmul_tree()
        choice = choose_grid(tree, 4)
        arrays = random_inputs(prog, seed=0)
        want = evaluate_expression(stmt.expr, arrays)
        got, _ = GridSimulator(choice.grid).run(choice.plan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_invalid_count(self):
        tree, _, _ = matmul_tree()
        with pytest.raises(ValueError):
            choose_grid(tree, 0)

    def test_table_covers_all_shapes(self):
        tree, _, _ = matmul_tree()
        choice = choose_grid(tree, 8, max_dims=3)
        shapes = {s for s, _ in choice.table}
        assert shapes == set(grid_shapes(8, max_dims=3))
