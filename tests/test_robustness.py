"""Robustness subsystem: error taxonomy, search budgets with graceful
degradation, fault schedules, and the degraded pipeline's correctness
against the reference executor."""

import time

import numpy as np
import pytest

from repro.engine.executor import evaluate_expression, random_inputs
from repro.expr.parser import parse_program
from repro.parallel.dist import Distribution, SINGLE
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import canonical_plan, optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.budget import Budget, BudgetTracker, as_tracker
from repro.robustness.errors import (
    BudgetExceeded,
    CommFailure,
    PlanError,
    ReproError,
    ShapeError,
    SpecError,
)
from repro.robustness.faults import FaultSchedule, parse_fault_spec
from repro.robustness.validation import validate_env

MATMUL = """
range N = 4;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""

CHAIN = """
range V = 4;
range O = 2;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


class TestErrorTaxonomy:
    def test_exit_codes(self):
        assert SpecError("x").exit_code == 2
        assert BudgetExceeded("x").exit_code == 3
        for cls in (ShapeError, PlanError, CommFailure, ReproError):
            assert cls("x").exit_code == 4

    def test_diagnostic_names_context(self):
        exc = ShapeError("bad shape", stage="execution", tensor="T")
        text = str(exc)
        assert text.startswith("ShapeError[")
        assert "stage=execution" in text
        assert "tensor=T" in text
        assert text.endswith("bad shape")

    def test_back_compat_mro(self):
        """Pre-taxonomy call sites catch the old builtin classes."""
        assert isinstance(SpecError("x"), KeyError)
        assert isinstance(PlanError("x"), KeyError)
        assert isinstance(ShapeError("x"), ValueError)

    def test_spec_error_str_is_not_quoted_repr(self):
        """KeyError.__str__ quotes its arg; the taxonomy overrides it."""
        assert str(SpecError("no array")) == "SpecError: no array"


class TestBudgetTracker:
    def test_node_budget_exhausts(self):
        tracker = Budget(max_nodes=5).start()
        tracker.tick(5)
        with pytest.raises(BudgetExceeded):
            tracker.tick(1, stage="opmin")
        assert tracker.exhausted()
        # once exhausted, every later tick fails fast
        with pytest.raises(BudgetExceeded):
            tracker.tick(1, stage="fusion")

    def test_deadline_exhausts(self):
        tracker = Budget(deadline_ms=1.0).start()
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded, match="deadline"):
            tracker.tick()

    def test_unbounded_budget_never_raises(self):
        tracker = Budget().start()
        tracker.tick(10**9)

    def test_degrade_records(self):
        tracker = Budget(max_nodes=0).start()
        with pytest.raises(BudgetExceeded) as info:
            tracker.tick(1, stage="opmin")
        tracker.degrade("opmin", info.value, "left-to-right")
        assert tracker.degraded_stages() == ["opmin"]
        deg = tracker.degradations[0]
        assert deg.fallback == "left-to-right"
        assert "budget" in deg.reason

    def test_strict_degrade_reraises(self):
        tracker = Budget(max_nodes=0, strict=True).start()
        with pytest.raises(BudgetExceeded) as info:
            tracker.tick(1)
        with pytest.raises(BudgetExceeded):
            tracker.degrade("opmin", info.value, "left-to-right")
        assert tracker.degraded_stages() == []

    def test_as_tracker_normalizes(self):
        assert as_tracker(None) is None
        tracker = Budget(max_nodes=3).start()
        assert as_tracker(tracker) is tracker
        fresh = as_tracker(Budget(max_nodes=3))
        assert isinstance(fresh, BudgetTracker)


class TestDegradedPipeline:
    """Exhausted budgets degrade every stage -- and the degraded plan
    still computes the right answer."""

    def test_zero_budget_still_correct(self):
        config = SynthesisConfig(budget=Budget(max_nodes=0))
        result = synthesize(CHAIN, config)
        degraded = set(result.degraded_stages)
        assert "opmin" in degraded
        assert "fusion" in degraded
        prog = parse_program(CHAIN)
        inputs = random_inputs(prog, seed=0)
        env = result.execute(inputs)
        want = evaluate_expression(prog.statements[0].expr, inputs)
        np.testing.assert_allclose(env["S"], want, rtol=1e-10)

    def test_degradation_lands_in_reports(self):
        config = SynthesisConfig(budget=Budget(max_nodes=0))
        result = synthesize(CHAIN, config)
        flagged = [
            r for r in result.reports if r.details.get("degraded") == "true"
        ]
        assert flagged
        assert any(
            "budget exhausted" in note for r in flagged for note in r.notes
        )

    def test_zero_budget_parallel_still_correct(self):
        config = SynthesisConfig(
            budget=Budget(max_nodes=0), processors=4
        )
        result = synthesize(MATMUL, config)
        assert "distribution" in result.degraded_stages
        prog = parse_program(MATMUL)
        inputs = random_inputs(prog, seed=1)
        out = result.run_parallel(inputs)
        want = evaluate_expression(prog.statements[0].expr, inputs)
        np.testing.assert_allclose(out["C"], want, rtol=1e-10)

    def test_strict_budget_raises(self):
        config = SynthesisConfig(budget=Budget(max_nodes=0, strict=True))
        with pytest.raises(BudgetExceeded):
            synthesize(MATMUL, config)

    def test_large_budget_no_degradation(self):
        config = SynthesisConfig(budget=Budget(max_nodes=10**9))
        result = synthesize(MATMUL, config)
        assert result.degraded_stages == []
        assert result.budget_tracker.nodes > 0

    def test_no_budget_means_no_tracker(self):
        result = synthesize(MATMUL, SynthesisConfig())
        assert result.budget_tracker is None
        assert result.degraded_stages == []

    def test_degraded_op_count_never_better_than_full_search(self):
        full = synthesize(CHAIN, SynthesisConfig())
        degraded = synthesize(
            CHAIN, SynthesisConfig(budget=Budget(max_nodes=0))
        )

        def ops(result):
            for report in result.reports:
                if "optimized operation count" in report.details:
                    return int(report.details["optimized operation count"])
            raise AssertionError("no op count in reports")

        assert ops(degraded) >= ops(full)


class TestCanonicalPlan:
    """The distribution fallback: block-distribute every node."""

    def test_canonical_plan_is_exact(self):
        prog = parse_program(MATMUL)
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        plan = canonical_plan(tree, grid)
        inputs = random_inputs(prog, seed=2)
        got, _ = GridSimulator(grid).run(plan, inputs)
        want = evaluate_expression(prog.statements[0].expr, inputs)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_canonical_plan_cost_bounded_by_search(self):
        prog = parse_program(MATMUL)
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        searched = optimize_distribution(tree, grid)
        canonical = canonical_plan(tree, grid)
        assert canonical.total_cost >= searched.total_cost

    def test_canonical_plan_respects_pinned_result(self):
        prog = parse_program(MATMUL)
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        pinned = Distribution((SINGLE,))
        plan = canonical_plan(tree, grid, result_dist=pinned)
        assert plan.dist[id(tree)] == pinned


class TestValidateEnv:
    def _refs(self, source=MATMUL):
        prog = parse_program(source)
        expr = prog.statements[0].expr
        return prog, list(expr.refs())

    def test_accepts_good_env(self):
        prog, refs = self._refs()
        validate_env(random_inputs(prog, seed=0), refs)

    def test_missing_tensor_named(self):
        _, refs = self._refs()
        with pytest.raises(SpecError, match="'B'") as info:
            validate_env({"A": np.zeros((4, 4))}, refs)
        assert info.value.tensor == "B"

    def test_require_present_false_skips_missing(self):
        _, refs = self._refs()
        validate_env({"A": np.zeros((4, 4))}, refs, require_present=False)

    def test_wrong_shape_names_tensor_and_shapes(self):
        prog, refs = self._refs()
        arrays = random_inputs(prog, seed=0)
        arrays["B"] = np.zeros((4, 5))
        with pytest.raises(ShapeError, match=r"\(4, 5\)"):
            validate_env(arrays, refs)

    def test_check_finite_opt_in(self):
        prog, refs = self._refs()
        arrays = random_inputs(prog, seed=0)
        arrays["A"] = arrays["A"].copy()
        arrays["A"][0, 0] = np.inf
        validate_env(arrays, refs)  # default: non-finite is allowed
        with pytest.raises(ShapeError, match="non-finite"):
            validate_env(arrays, refs, check_finite=True)


class TestFaultSpecParsing:
    def test_drop_list(self):
        sched = parse_fault_spec("drop:0,3")
        assert sched.drop_messages == (0, 3)
        assert sched.drop_attempts == 1

    def test_drop_with_attempts(self):
        sched = parse_fault_spec("drop:0x5")
        assert sched.drop_messages == (0,)
        assert sched.drop_attempts == 5

    def test_combined_clauses(self):
        sched = parse_fault_spec("drop:1;crash:0,2")
        assert sched.drop_messages == (1,)
        assert sched.crash_supersteps == (0, 2)
        assert sched.any_faults

    def test_bad_spec_is_spec_error(self):
        with pytest.raises(SpecError, match="fault spec"):
            parse_fault_spec("explode:9")
        with pytest.raises(SpecError, match="fault spec"):
            parse_fault_spec("drop:zero")

    def test_should_drop_window(self):
        sched = FaultSchedule(drop_messages=(2,), drop_attempts=2)
        assert sched.should_drop(2, 0)
        assert sched.should_drop(2, 1)
        assert not sched.should_drop(2, 2)
        assert not sched.should_drop(1, 0)
