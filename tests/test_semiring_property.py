"""Property suite: every registered semiring, on random small programs,
against a brute-force nested-loop oracle.

The oracle evaluates each statement with plain Python loops over the
full index space using the semiring's scalar ``py_combine``/
``py_reduce`` -- no numpy reductions, no einsum, no loop IR -- so a bug
anywhere in the generalized pipeline (operation minimization, fusion,
tiling, the interpreter, the kernel planner) shows up as a mismatch.

Two carrier classes per algebra: float64 values (with the algebra's
annihilator sprinkled in, e.g. ``inf`` entries for ``min_plus``) and a
0/1 integer-valued carrier (the natural domain of ``or_and``).
"""

import itertools

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a tier-1 dep
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.engine.executor import run_statements
from repro.expr.canonical import flatten
from repro.expr.parser import parse_program
from repro.pipeline import SynthesisConfig, synthesize
from repro.semiring import available_semirings, get_semiring

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: single-statement program templates; headers are filled per-size
TEMPLATES = (
    "C(i, j) = sum(k) A(i, k) * B(k, j);",
    "y(i) = sum(j) A(i, j) * x(j);",
    "t(i) = sum(j) A(i, j) * B(j, i);",
    "P(i, j) = A(i, j) * B(i, j);",
    "C(i, j) = sum(k, l) A(i, k) * B(k, l) * D(l, j);",
)

DECLS = {
    "A": "tensor A(i, j);",
    "B": "tensor B(i, j);",
    "D": "tensor D(i, j);",
    "x": "tensor x(i);",
}


def _program_source(template: str, n: int) -> str:
    lines = [f"range N = {n};", "index i, j, k, l : N;"]
    for name, decl in DECLS.items():
        if f"{name}(" in template:
            lines.append(decl)
    lines.append(template)
    return "\n".join(lines) + "\n"


def _random_inputs(template: str, n: int, sr, carrier: str, seed: int):
    rng = np.random.default_rng(seed)
    out = {}
    for name in DECLS:
        if f"{name}(" not in template:
            continue
        shape = (n,) if name == "x" else (n, n)
        if carrier == "binary" or sr.name == "or_and":
            values = rng.integers(0, 2, shape).astype(np.float64)
        else:
            values = rng.integers(0, 4, shape).astype(np.float64)
            values[rng.random(shape) < 0.2] = sr.zero
        out[name] = values
    return out


def _brute_force(statements, inputs, sr):
    """Nested-loop reference evaluation of a formula sequence."""
    env = dict(inputs)
    for stmt in statements:
        out_idx = tuple(stmt.result.indices)
        shape = tuple(i.extent() for i in out_idx)
        out = np.full(shape, sr.zero)
        for coords in itertools.product(*(range(e) for e in shape)):
            point = dict(zip(out_idx, coords))
            acc = sr.zero
            for coef, sums, refs in flatten(stmt.expr):
                assert coef == 1.0
                sum_list = sorted(sums, key=lambda ix: ix.name)
                spaces = [range(ix.extent()) for ix in sum_list]
                for scoords in itertools.product(*spaces):
                    full = dict(point)
                    full.update(zip(sum_list, scoords))
                    value = sr.one
                    for ref in refs:
                        where = tuple(full[ix] for ix in ref.indices)
                        value = sr.py_combine(
                            value, float(env[ref.tensor.name][where])
                        )
                    acc = sr.py_reduce(acc, value)
            out[coords] = acc
        env[stmt.result.name] = out
    return env


@pytest.mark.parametrize("name", available_semirings())
@given(data=st.data())
@settings(max_examples=8, **COMMON)
def test_executors_match_brute_force(name, data):
    sr = get_semiring(name)
    template = data.draw(st.sampled_from(TEMPLATES), label="template")
    n = data.draw(st.integers(2, 4), label="n")
    carrier = data.draw(
        st.sampled_from(("float", "binary")), label="carrier"
    )
    seed = data.draw(st.integers(0, 1_000), label="seed")

    source = _program_source(template, n)
    program = parse_program(source)
    inputs = _random_inputs(template, n, sr, carrier, seed)
    res = program.statements[-1].result.name
    want = _brute_force(program.statements, inputs, sr)[res]

    ref = run_statements(program.statements, inputs, semiring=name)[res]
    assert np.array_equal(ref, want)

    result = synthesize(source, SynthesisConfig(semiring=name))
    assert np.array_equal(result.execute(inputs)[res], want)

    runner = result.kernel_runner()
    assert np.array_equal(runner.run(inputs, copy=True)[res], want)


@given(data=st.data())
@settings(max_examples=6, **COMMON)
def test_sparse_executor_matches_brute_force(data):
    """The hash-join path stores entries != the semiring's zero; inf
    must be droppable and 0.0 storable under ``min_plus`` -- exactly
    inverted from the classical algebra."""
    from repro.sparse.executor import run_statements as sparse_run

    name = data.draw(
        st.sampled_from(available_semirings()), label="semiring"
    )
    sr = get_semiring(name)
    template = data.draw(st.sampled_from(TEMPLATES[:3]), label="template")
    n = data.draw(st.integers(2, 4), label="n")
    seed = data.draw(st.integers(0, 1_000), label="seed")

    source = _program_source(template, n)
    program = parse_program(source)
    inputs = _random_inputs(template, n, sr, "float", seed)
    res = program.statements[-1].result.name
    want = _brute_force(program.statements, inputs, sr)[res]
    got = sparse_run(program.statements, inputs, semiring=name)[res]
    assert np.array_equal(got, want)
