"""Validation of the greedy factorizer against exhaustive merge-order
enumeration on small multi-term expressions."""

import itertools
import random

import pytest

from repro.expr.ast import Statement
from repro.expr.canonical import flatten
from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.opmin.cost import ADD_OPS
from repro.opmin.factorize import Factorizer, _mergeable, _term_cost
from repro.opmin.multi_term import TempNamer
from repro.expr.indices import total_extent


def exhaustive_best(terms) -> int:
    """Minimum total cost over every sequence of legal merges."""

    def cost_of(terms_now) -> int:
        return sum(_term_cost(t) for t in terms_now)

    best = [cost_of(terms)]

    def explore(work, helper_cost):
        best[0] = min(best[0], cost_of(work) + helper_cost)
        for i in range(len(work)):
            for j in range(i + 1, len(work)):
                hit = _mergeable(work[i], work[j])
                if hit is None:
                    continue
                pos_a, _ = hit
                factorizer = Factorizer(TempNamer(set()))
                merged = factorizer._merge(work[i], work[j], *hit)
                add_cost = ADD_OPS * total_extent(work[i][2][pos_a].indices)
                rest = [t for k, t in enumerate(work) if k not in (i, j)]
                explore(rest + [merged], helper_cost + add_cost)

    explore(list(terms), 0)
    return best[0]


def greedy_total(terms) -> int:
    factorizer = Factorizer(TempNamer(set()))
    out = factorizer.run(list(terms))
    # each helper statement merges exactly two operands -> one add/elem
    helper = sum(
        ADD_OPS * total_extent(s.result.indices)
        for s in factorizer.helper_statements
    )
    return sum(_term_cost(t) for t in out) + helper


def random_mergeable_statement(seed: int):
    """2-4 terms over a small pool with deliberately shared factors."""
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    shared = rng.random() < 0.8
    lines = ["range N = 6;", "index a, b, e : N;", "tensor T(e, b);"]
    terms = []
    for k in range(n):
        lines.append(f"tensor F{k}(a, e);")
    for k in range(n):
        other = "T(e,b)" if shared or k == 0 else f"F{(k + 1) % n}(e, b)"
        terms.append(f"sum(e) F{k}(a,e) * {other}")
    lines.append("R(a, b) = " + " + ".join(t for t in terms) + ";")
    return parse_program("\n".join(lines))


@pytest.mark.parametrize("seed", range(10))
def test_greedy_matches_exhaustive(seed):
    prog = random_mergeable_statement(seed)
    stmt = prog.statements[0]
    terms = flatten(stmt.expr)
    assert greedy_total(terms) == exhaustive_best(terms)


def test_exhaustive_on_three_way_merge():
    prog = parse_program("""
    range N = 8;
    index a, b, e : N;
    tensor F(a, e); tensor G(a, e); tensor H(a, e); tensor T(e, b);
    R(a, b) = sum(e) F(a,e) * T(e,b)
            + sum(e) G(a,e) * T(e,b)
            + sum(e) H(a,e) * T(e,b);
    """)
    terms = flatten(prog.statements[0].expr)
    assert greedy_total(terms) == exhaustive_best(terms)
    # fully merged: one contraction + two helper adds
    n = 8
    assert exhaustive_best(terms) == 2 * n**3 + 2 * (n * n)
