"""Semiring layer: registry laws, the algebra-generalized einsum, the
GEMM guard, CLI validation, and cache-key separation.

The regression surface here is the ISSUE's satellite checklist: GEMM
must *refuse* (never silently misevaluate) non-``(+, x)`` algebras, an
unknown ``--semiring`` must exit 2 with the registered names on one
line, and both the plan cache and the compiled-artifact store must key
on the semiring id.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.codegen.cgen import NEST_IR_VERSION, render_nest_ir
from repro.kernels import artifact_key, compile_kernel_plan
from repro.kernels.lowering import exec_gemm, lower_binary_term
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.errors import ReproError, SpecError
from repro.runtime.plan_cache import PlanCache, plan_key
from repro.semiring import (
    DEFAULT_SEMIRING,
    available_semirings,
    get_semiring,
    require_unit_coef,
    semiring_einsum,
)

MM = (
    "range N = 4;\n"
    "index i, j, k : N;\n"
    "tensor A(i, k);\n"
    "tensor B(k, j);\n"
    "C(i, j) = sum(k) A(i, k) * B(k, j);\n"
)

ALL = available_semirings()


class TestRegistry:
    def test_all_five_registered(self):
        assert ALL == (
            "max_plus", "max_times", "min_plus", "or_and", "plus_times"
        )

    def test_default_is_plus_times(self):
        assert DEFAULT_SEMIRING == "plus_times"
        assert get_semiring("plus_times").is_default
        assert not get_semiring("min_plus").is_default

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SpecError) as info:
            get_semiring("tropical")
        msg = str(info.value)
        for name in ALL:
            assert name in msg

    @pytest.mark.parametrize("name", ALL)
    def test_identity_and_annihilator_laws(self, name):
        """0-bar is the reduce identity and the combine annihilator;
        1-bar is the combine identity -- checked on a carrier value."""
        sr = get_semiring(name)
        x = 1.0
        assert sr.np_reduce(sr.zero, x) == x
        assert sr.np_combine(sr.one, x) == x
        assert sr.np_combine(sr.zero, x) == sr.zero
        assert sr.py_reduce(sr.zero, x) == x
        assert sr.py_combine(sr.one, x) == x

    @pytest.mark.parametrize("name", ALL)
    def test_idempotent_reduce_fixed_point(self, name):
        sr = get_semiring(name)
        if sr.idempotent:
            assert sr.np_reduce(2.0, 2.0) == 2.0
        else:
            assert sr.np_reduce(2.0, 2.0) == 4.0


class TestSemiringEinsum:
    def _brute_matvec(self, a, x, sr):
        out = np.full(a.shape[0], sr.zero)
        for i in range(a.shape[0]):
            acc = sr.zero
            for j in range(a.shape[1]):
                acc = sr.py_reduce(acc, sr.py_combine(a[i, j], x[j]))
            out[i] = acc
        return out

    @pytest.mark.parametrize("name", ALL)
    def test_matvec_matches_nested_loops(self, name):
        sr = get_semiring(name)
        rng = np.random.default_rng(7)
        a = rng.integers(0, 2 if name == "or_and" else 4, (5, 4)).astype(
            np.float64
        )
        x = rng.integers(0, 2 if name == "or_and" else 4, 4).astype(
            np.float64
        )
        got = semiring_einsum("ij,j->i", a, x, semiring=sr)
        assert np.array_equal(got, self._brute_matvec(a, x, sr))

    def test_min_plus_with_infinities(self):
        sr = get_semiring("min_plus")
        a = np.array([[0.0, 2.0], [np.inf, 0.0]])
        b = np.array([[0.0, np.inf], [3.0, 0.0]])
        got = semiring_einsum("ik,kj->ij", a, b, semiring=sr)
        want = np.array([[0.0, 2.0], [3.0, 0.0]])
        assert np.array_equal(got, want)

    def test_diagonal_extraction(self):
        sr = get_semiring("min_plus")
        a = np.array([[1.0, 9.0], [9.0, 4.0]])
        got = semiring_einsum("ii->i", a, semiring=sr)
        assert np.array_equal(got, np.array([1.0, 4.0]))


class TestGemmGuard:
    """Satellite 1: GEMM is the ``(+, x)`` algebra by definition, so
    reaching it under any other semiring must be a structured error."""

    def test_lower_binary_term_declines(self):
        prog = synthesize(MM, SynthesisConfig()).program
        stmt = prog.statements[0]
        i, j = stmt.result.indices
        refs = list(stmt.expr.refs())
        (k,) = set(refs[0].indices) - {i, j}
        with pytest.raises(ReproError) as info:
            lower_binary_term(
                refs[0].indices, refs[1].indices, frozenset({k}), (i, j),
                semiring="min_plus",
            )
        assert "plus_times" in str(info.value)

    def test_exec_gemm_declines(self):
        a = np.ones((2, 2))
        with pytest.raises(ReproError):
            exec_gemm(
                a, a, lred=(), rred=(), lperm=(0, 1), rperm=(0, 1),
                nb=1, nm=2, nk=2, nn=2, operm=(0, 1), semiring="or_and",
            )

    def test_plan_never_routes_nondefault_to_gemm(self):
        result = synthesize(
            MM, SynthesisConfig(semiring="min_plus", codegen="gemm")
        )
        plan = result.kernel_runner().plan
        kinds = {t.kind for s in plan.statements for t in s.terms}
        assert "gemm" not in kinds

    def test_unit_coefficient_contract(self):
        require_unit_coef(2.0, get_semiring("plus_times"))
        require_unit_coef(1.0, get_semiring("min_plus"))
        with pytest.raises(ReproError):
            require_unit_coef(2.0, get_semiring("min_plus"))


class TestCLI:
    """Satellite 2: unknown ``--semiring`` exits 2 with one line naming
    the registered algebras, on the compiler and the demo subcommand."""

    def test_compiler_unknown_semiring_exits_2(self, capsys):
        rc = cli_main(["-", "--semiring", "boolean"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown semiring" in err
        for name in ALL:
            assert name in err

    def test_demo_unknown_semiring_exits_2(self, capsys):
        rc = cli_main(["run", "--semiring", "boolean"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown semiring" in err

    def test_compiler_accepts_min_plus(self, tmp_path, capsys):
        src = tmp_path / "p.tce"
        src.write_text(MM)
        rc = cli_main([str(src), "--semiring", "min_plus", "--run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "semiring" in out
        assert "outputs match the reference executor" in out


class TestKeySeparation:
    """Plan-cache and artifact keys must distinguish semirings: the same
    program under two algebras is two different compilations."""

    def test_plan_key_distinguishes_semirings(self):
        program = synthesize(MM, SynthesisConfig()).program
        keys = {
            plan_key(program, SynthesisConfig(semiring=name))
            for name in ALL
        }
        assert len(keys) == len(ALL)

    def test_plan_cache_cold_then_warm_per_semiring(self):
        cache = PlanCache()
        config = SynthesisConfig(semiring="min_plus")
        synthesize(MM, config, cache=cache)
        assert (cache.misses, cache.hits) == (1, 0)
        synthesize(MM, config, cache=cache)
        assert (cache.misses, cache.hits) == (1, 1)
        synthesize(MM, SynthesisConfig(), cache=cache)
        assert (cache.misses, cache.hits) == (2, 1)

    def test_nest_ir_and_artifact_key_carry_semiring(self):
        result = synthesize(MM, SynthesisConfig())
        stmts, bindings = result.statements, result.config.bindings
        irs = {}
        for name in ("plus_times", "min_plus"):
            plan = compile_kernel_plan(
                stmts, bindings, mode="native", semiring=name
            )
            (spec,) = [
                t.native for s in plan.statements for t in s.terms
            ]
            assert spec is not None
            irs[name] = render_nest_ir(spec)
        assert NEST_IR_VERSION == "nest-ir v3"
        assert "semiring=plus_times" in irs["plus_times"]
        assert "semiring=min_plus" in irs["min_plus"]
        keys = {
            artifact_key(ir, "float64", "c", "cc")
            for ir in irs.values()
        }
        assert len(keys) == 2
