"""Tests for loop-order optimization."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.codegen.builder import build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import Loop, loop_op_count
from repro.locality.cache_sim import simulate_cache
from repro.locality.permute import optimize_loop_order
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree


def asym_contraction(np_, nq, nr):
    """A contraction with asymmetric extents so loop order matters."""
    return parse_program(f"""
    range P = {np_}; range Q = {nq}; range R = {nr};
    index p : P; index q : Q; index r : R;
    tensor A(p, q); tensor B(q, r);
    C(p, r) = sum(q) A(p, q) * B(q, r);
    """)


class TestOptimizeLoopOrder:
    def test_cost_never_worse(self):
        prog = asym_contraction(4, 32, 4)
        block = build_unfused(prog.statements)
        result = optimize_loop_order(block, capacity=40)
        assert result.cost <= result.baseline_cost

    def test_order_matters_with_tight_capacity(self):
        """With capacity holding A's row but not B, hoisting the right
        loop changes the modeled misses; the search finds an order at
        least as good as the declaration order."""
        prog = asym_contraction(16, 16, 16)
        block = build_unfused(prog.statements)
        result = optimize_loop_order(block, capacity=48)
        assert result.evaluated == 6  # 3! permutations of one nest
        assert result.cost <= result.baseline_cost

    def test_semantics_preserved(self):
        prog = asym_contraction(5, 7, 3)
        block = build_unfused(prog.statements)
        result = optimize_loop_order(block, capacity=16)
        arrays = random_inputs(prog, seed=1)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        env = execute(result.structure, arrays)
        np.testing.assert_allclose(env["C"], want, rtol=1e-10)

    def test_op_count_unchanged(self):
        prog = asym_contraction(5, 7, 3)
        block = build_unfused(prog.statements)
        result = optimize_loop_order(block, capacity=16)
        assert loop_op_count(result.structure) == loop_op_count(block)

    def test_imperfect_nests_left_intact(self):
        """Fused structures (allocs inside loops) are not reordered but
        the search still runs on inner perfect parts."""
        src = """
        range V = 6; range O = 3;
        index a, b, c, d, e, f : V;
        index i, j, k, l : O;
        tensor A(a, c, i, k); tensor B(b, e, f, l);
        tensor C(d, f, j, k); tensor D(c, d, e, l);
        T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
        T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
        S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
        """
        prog = parse_program(src)
        root = build_tree(prog.statements)
        fused = build_fused(minimize_memory(root))
        result = optimize_loop_order(fused, capacity=64)
        arrays = random_inputs(prog, seed=2)
        want_env = execute(fused, arrays)
        got_env = execute(result.structure, arrays)
        np.testing.assert_allclose(got_env["S"], want_env["S"], rtol=1e-10)

    def test_measured_misses_confirm_choice(self):
        """The chosen order's measured LRU misses are no worse than the
        declaration order's."""
        prog = asym_contraction(12, 12, 12)
        block = build_unfused(prog.statements)
        capacity = 30
        result = optimize_loop_order(block, capacity)
        arrays = random_inputs(prog, seed=3)
        base = simulate_cache(block, arrays, capacity)
        opt = simulate_cache(result.structure, arrays, capacity)
        assert opt.misses <= base.misses * 1.1  # model is approximate
