"""Bindings threading: one program, many scales.

The same AST must serve paper-scale analysis and test-scale execution
through the ``bindings`` mapping.  These tests pin that contract for
every stage: cost models, fusion, space-time, locality, distribution,
codegen, and the pipeline.
"""

import numpy as np
import pytest

from repro import SynthesisConfig, synthesize
from repro.chem.workloads import fig1_formula_sequence, fig1_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.codegen.builder import build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count, total_memory
from repro.codegen.pygen import compile_loops
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_statement
from repro.validate import verify_result

SMALL = {"V": 3, "O": 2}


@pytest.fixture(scope="module")
def prog():
    # declared defaults are paper scale; tests bind down
    return fig1_program()  # V=3000, O=100 defaults


class TestCostModelBindings:
    def test_direct_count_scales(self, prog):
        stmt = prog.statements[0]
        paper = statement_op_count(stmt)
        small = statement_op_count(stmt, SMALL)
        assert paper == 4 * 3000**6 * 100**4
        assert small == 4 * 3**6 * 2**4

    def test_optimizer_uses_bindings_for_decisions(self, prog):
        """Extent-dependent tie-breaks must follow the bound sizes, and
        the optimized count at a binding matches re-counting there."""
        stmt = prog.statements[0]
        seq = optimize_statement(stmt, SMALL)
        assert sequence_op_count(seq, SMALL) <= statement_op_count(
            stmt, SMALL
        )


class TestStructureBindings:
    def test_sizes_scale_with_bindings(self):
        seq_prog = fig1_formula_sequence()  # paper-scale defaults
        block = build_unfused(seq_prog.statements)
        paper_sizes = array_sizes(block)
        small_sizes = array_sizes(block, SMALL)
        assert paper_sizes["T1"] == 3000**4
        assert small_sizes["T1"] == 3**4
        assert total_memory(block, SMALL) < total_memory(block)

    def test_fusion_result_carries_bindings(self):
        seq_prog = fig1_formula_sequence()
        root = build_tree(seq_prog.statements)
        paper = minimize_memory(root)
        small = minimize_memory(root, SMALL)
        # T1 scalar + T2 O^2 in both, with O bound accordingly
        assert paper.total_memory == 1 + 100 * 100
        assert small.total_memory == 1 + 2 * 2

    def test_execution_at_bound_scale(self):
        seq_prog = fig1_formula_sequence()
        root = build_tree(seq_prog.statements)
        result = minimize_memory(root, SMALL)
        block = build_fused(result)
        arrays = random_inputs(seq_prog, SMALL, seed=0)
        want = None
        env = execute(block, arrays, SMALL)
        # reference at the same binding
        from repro.engine.executor import run_statements

        ref = run_statements(seq_prog.statements, arrays, SMALL)
        np.testing.assert_allclose(env["S"], ref["S"], rtol=1e-10)

    def test_generated_code_respects_bindings(self):
        seq_prog = fig1_formula_sequence()
        block = build_unfused(seq_prog.statements)
        kernel = compile_loops(block, SMALL)
        arrays = random_inputs(seq_prog, SMALL, seed=1)
        env = kernel(arrays)
        assert env["S"].shape == (3, 3, 2, 2)


class TestPipelineBindings:
    def test_full_pipeline_at_binding(self, prog):
        config = SynthesisConfig(bindings=SMALL, optimize_cache=False)
        result = synthesize(prog, config)
        report = verify_result(result)
        assert report.ok
        # the codegen report counted at the bound scale
        codegen = next(
            r for r in result.reports if r.name == "Code generation"
        )
        assert codegen.details["operation count"] < 10**7

    def test_spacetime_trigger_depends_on_binding(self):
        """The same machine budget that fits at a tiny binding requires
        the space-time stage at a larger one."""
        from repro import MachineModel, MemoryLevel
        from repro.chem.a3a import a3a_problem

        problem = a3a_problem(V=6, O=2, Ci=20)
        machine = MachineModel(
            cache=MemoryLevel("cache", 16, 8.0),
            memory=MemoryLevel("memory", 200, 512.0),
        )

        def invoked(bindings):
            config = SynthesisConfig(
                machine=machine, bindings=bindings, optimize_cache=False
            )
            result = synthesize(problem.program, config)
            st = next(
                r for r in result.reports if "Space-time" in r.name
            )
            return st.details["invoked"] == "yes"

        assert not invoked({"V": 2, "O": 2})  # temps fit
        assert invoked(None)  # V=6: 2 + 2*V^3*O = 866 > 200

    def test_distribution_with_bindings(self, prog):
        from repro import ProcessorGrid

        config = SynthesisConfig(
            bindings=SMALL,
            grid=ProcessorGrid((2,)),
            optimize_cache=False,
        )
        result = synthesize(prog, config)
        arrays = random_inputs(prog, SMALL, seed=2)
        got = result.run_parallel(arrays)
        want = evaluate_expression(prog.statements[0].expr, arrays, SMALL)
        np.testing.assert_allclose(got["S"], want, rtol=1e-9)


class TestLocalityBindings:
    def test_tile_candidates_follow_bound_extents(self):
        from repro.locality.tile_search import optimize_locality

        seq_prog = fig1_formula_sequence()
        block = build_unfused(seq_prog.statements)
        result = optimize_locality(
            block, capacity=32, bindings=SMALL,
            indices=None, max_combinations=50_000,
        )
        # candidate tile sizes never exceed the bound extents
        for idx, b in result.tile_sizes.items():
            assert b <= idx.extent(SMALL)
