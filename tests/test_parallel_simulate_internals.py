"""Unit tests for GridSimulator internals: scatter/assemble round trips
and redistribution counting."""

import numpy as np
import pytest

from repro.expr.indices import Index, IndexRange
from repro.parallel.commcost import move_cost_elements
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid
from repro.parallel.simulate import GridSimulator, SimulationReport

N = IndexRange("N", 8)
I, J = Index("i", N), Index("j", N)
INDICES = (I, J)


@pytest.fixture
def sim():
    return GridSimulator(ProcessorGrid((2, 2)))


def scatter(sim, dist, seed=0):
    rng = np.random.default_rng(seed)
    glob = rng.standard_normal((8, 8))
    return glob, sim.scatter(glob, INDICES, dist)


class TestScatterAssemble:
    @pytest.mark.parametrize(
        "entries",
        [
            (I, J),
            (J, I),
            (I, REPLICATED),
            (SINGLE, J),
            (REPLICATED, REPLICATED),
            (SINGLE, SINGLE),
        ],
    )
    def test_roundtrip(self, sim, entries):
        dist = Distribution(entries)
        glob, value = scatter(sim, dist)
        back = sim.assemble(value)
        np.testing.assert_array_equal(back, glob)

    def test_holder_blocks_only(self, sim):
        dist = Distribution((SINGLE, J))
        _, value = scatter(sim, dist)
        # only ranks with first coordinate 0 hold blocks
        assert set(value.blocks) == {(0, 0), (0, 1)}

    def test_block_shapes(self, sim):
        dist = Distribution((I, J))
        _, value = scatter(sim, dist)
        for rank, blk in value.blocks.items():
            assert blk.shape == (4, 4)


class TestRedistribute:
    def test_counts_match_model(self, sim):
        src = Distribution((I, J))
        dst = Distribution((J, I))
        glob, value = scatter(sim, src)
        report = SimulationReport(
            received={r: 0 for r in sim.grid.ranks()},
            local_ops={r: 0 for r in sim.grid.ranks()},
        )
        out = sim.redistribute(value, dst, report)
        np.testing.assert_array_equal(sim.assemble(out), glob)
        assert max(report.received.values()) == move_cost_elements(
            INDICES, src, dst, sim.grid
        )

    def test_noop_costs_nothing(self, sim):
        dist = Distribution((I, J))
        _, value = scatter(sim, dist)
        report = SimulationReport(
            received={r: 0 for r in sim.grid.ranks()},
            local_ops={r: 0 for r in sim.grid.ranks()},
        )
        out = sim.redistribute(value, dist, report)
        assert out is value
        assert sum(report.received.values()) == 0

    def test_replication_counts_copies(self, sim):
        src = Distribution((I, J))
        dst = Distribution((REPLICATED, REPLICATED))
        glob, value = scatter(sim, src)
        report = SimulationReport(
            received={r: 0 for r in sim.grid.ranks()},
            local_ops={r: 0 for r in sim.grid.ranks()},
        )
        out = sim.redistribute(value, dst, report)
        np.testing.assert_array_equal(sim.assemble(out), glob)
        # every rank ends with the full 64 minus its own 16
        assert all(v == 48 for v in report.received.values())
