"""Tests for computation-tree construction."""

import pytest

from repro.expr.parser import parse_program
from repro.fusion.tree import build_forest, build_tree
from repro.opmin.multi_term import optimize_statement


FIG1_SEQ_SRC = """
range V = 10;
range O = 4;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
"""


class TestBuildTree:
    def test_fig1_shape(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        assert root.array.name == "S"
        names = [c.array.name for c in root.children]
        assert set(names) == {"T2", "A"}
        t2 = next(c for c in root.children if c.array.name == "T2")
        assert {c.array.name for c in t2.children} == {"T1", "C"}

    def test_loop_indices(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        assert {i.name for i in root.loop_indices} == {"a", "b", "i", "j", "c", "k"}
        t2 = next(c for c in root.children if c.array.name == "T2")
        assert {i.name for i in t2.loop_indices} == {"b", "c", "j", "k", "d", "f"}

    def test_input_leaves_not_fusible(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        for child, ok in zip(root.children, root.fusible):
            if child.is_leaf:
                assert not ok
            else:
                assert ok

    def test_common_indices(self):
        prog = parse_program(FIG1_SEQ_SRC)
        root = build_tree(prog.statements)
        t2 = next(c for c in root.children if c.array.name == "T2")
        assert {i.name for i in root.common_indices(t2)} == {"b", "c", "j", "k"}

    def test_dead_statement_rejected(self):
        src = """
        range V = 4; index a, b : V;
        tensor A(a, b);
        T(a) = sum(b) A(a, b);
        S(a) = sum(b) A(a, b);
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="dead|not consumed"):
            build_tree(prog.statements)

    def test_double_assignment_rejected(self):
        src = """
        range V = 4; index a, b : V;
        tensor A(a, b);
        S(a) = sum(b) A(a, b);
        S(a) = sum(b) A(a, b);
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="twice"):
            build_tree(prog.statements)


class TestBuildForest:
    def test_shared_temp_becomes_root(self):
        src = """
        range V = 4; index a, b, c : V;
        tensor A(a, b); tensor B(b, c);
        X(a, c) = sum(b) A(a, b) * B(b, c);
        Y(a, b) = sum(c) X(a, c) * B(b, c);
        S(a) = sum(b, c) Y(a, b) * X(b, c);
        """
        prog = parse_program(src)
        forest = build_forest(prog.statements)
        assert len(forest) == 2
        assert forest[0].array.name == "X"
        assert forest[-1].array.name == "S"
        # X appears as a leaf in the S tree
        s_tree = forest[-1]
        leaf_names = {
            n.array.name for n in s_tree.subtree() if n.is_leaf
        }
        assert "X" in leaf_names

    def test_build_tree_rejects_forest(self):
        src = """
        range V = 4; index a, b, c : V;
        tensor A(a, b);
        X(a, b) = A(a, b) + A(a, b);
        S(a) = sum(b, c) X(a, b) * X(b, c);
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="shared"):
            build_tree(prog.statements)

    def test_optimized_sequence_builds(self, fig1_statement):
        seq = optimize_statement(fig1_statement)
        root = build_tree(seq)
        assert root.array.name == "S"
        assert len(root.internal_nodes()) == 3
