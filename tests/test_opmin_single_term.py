"""Unit and property tests for the single-term subset DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.ast import TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.expr.tensor import Tensor
from repro.opmin.optree import Contract, Leaf, Reduce, tree_cost, tree_to_statements
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.search import exhaustive_best_tree
from repro.opmin.single_term import optimize_term
from repro.engine.executor import evaluate_expression, run_statements


def term_of(program_stmt):
    terms = flatten(program_stmt.expr)
    assert len(terms) == 1
    coef, sums, refs = terms[0]
    return refs, sums


FIG1_SRC = """
range N = 6;
index a, b, c, d, e, f, i, j, k, l : N;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


class TestFig1:
    def test_optimal_cost_is_6_N6(self):
        prog = parse_program(FIG1_SRC)
        refs, sums = term_of(prog.statements[0])
        tree = optimize_term(refs, sums)
        assert tree_cost(tree) == 6 * 6**6

    def test_matches_exhaustive(self):
        prog = parse_program(FIG1_SRC)
        refs, sums = term_of(prog.statements[0])
        tree = optimize_term(refs, sums)
        ex_tree, stats = exhaustive_best_tree(refs, sums)
        assert tree_cost(tree) == stats.best_cost == tree_cost(ex_tree)

    def test_finds_bdca_association(self):
        """The op-minimal tree contracts B with D first (paper's order)."""
        prog = parse_program(FIG1_SRC)
        refs, sums = term_of(prog.statements[0])
        tree = optimize_term(refs, sums)

        def innermost_pair(node):
            if isinstance(node, Contract):
                l, r = node.left, node.right
                if isinstance(l, Leaf) and isinstance(r, Leaf):
                    return {l.ref.tensor.name, r.ref.tensor.name}
                return innermost_pair(l) or innermost_pair(r)
            return None

        assert innermost_pair(tree) == {"B", "D"}

    def test_formula_sequence_cost_matches_tree_cost(self):
        prog = parse_program(FIG1_SRC)
        stmt = prog.statements[0]
        refs, sums = term_of(stmt)
        tree = optimize_term(refs, sums)
        statements = tree_to_statements(tree, stmt.result)
        assert sequence_op_count(statements) == tree_cost(tree)

    def test_numerical_equivalence(self):
        """The optimized formula sequence computes the same S."""
        prog = parse_program(FIG1_SRC)
        stmt = prog.statements[0]
        bindings = {"N": 3}
        rng = np.random.default_rng(1)
        arrays = {
            t.name: rng.standard_normal(t.shape(bindings))
            for t in prog.inputs()
        }
        reference = evaluate_expression(stmt.expr, arrays, bindings)

        refs, sums = term_of(stmt)
        tree = optimize_term(refs, sums, bindings)
        statements = tree_to_statements(tree, stmt.result)
        env = run_statements(statements, arrays, bindings)
        got = env["S"]
        # reference axes are sorted(free); S is declared (a,b,i,j) == sorted
        np.testing.assert_allclose(got, reference, rtol=1e-10)


class TestSmallCases:
    def test_single_factor_copy(self, idx):
        A = Tensor("A", (idx["a"],))
        tree = optimize_term([TensorRef(A, (idx["a"],))], frozenset())
        assert isinstance(tree, Leaf)

    def test_single_factor_reduction(self, idx):
        A = Tensor("A", (idx["a"], idx["b"]))
        tree = optimize_term(
            [TensorRef(A, (idx["a"], idx["b"]))], frozenset([idx["b"]])
        )
        assert isinstance(tree, Reduce)
        assert tree.free == {idx["a"]}

    def test_sum_index_in_no_factor_rejected(self, idx):
        A = Tensor("A", (idx["a"],))
        with pytest.raises(ValueError, match="no factor"):
            optimize_term([TensorRef(A, (idx["a"],))], frozenset([idx["b"]]))

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError, match="at least one factor"):
            optimize_term([], frozenset())

    def test_matrix_chain_classic(self):
        """((AB)C) vs (A(BC)): ranges chosen so the classic DP answer is
        known: dims 10x100, 100x5, 5x50 -> (AB)C with 7500 mults."""
        src = """
        range P = 10; range Q = 100; range R = 5; range S = 50;
        index p : P; index q : Q; index r : R; index s : S;
        tensor A(p, q); tensor B(q, r); tensor C(r, s);
        M(p, s) = sum(q, r) A(p, q) * B(q, r) * C(r, s);
        """
        prog = parse_program(src)
        refs, sums = term_of(prog.statements[0])
        tree = optimize_term(refs, sums)
        # (AB): 2*10*100*5 = 10000 ops; (AB)C: 2*10*5*50 = 5000 -> 15000
        # A(BC): 2*100*5*50 = 50000; then 2*10*100*50 = 100000 -> 150000
        assert tree_cost(tree) == 15000

    def test_outer_product(self, idx):
        A = Tensor("A", (idx["a"],))
        B = Tensor("B", (idx["b"],))
        tree = optimize_term(
            [TensorRef(A, (idx["a"],)), TensorRef(B, (idx["b"],))], frozenset()
        )
        assert isinstance(tree, Contract)
        assert tree.sum_indices == ()
        assert tree.free == {idx["a"], idx["b"]}

    def test_hadamard_then_reduce(self, idx):
        A = Tensor("A", (idx["a"], idx["b"]))
        B = Tensor("B", (idx["a"], idx["b"]))
        refs = [
            TensorRef(A, (idx["a"], idx["b"])),
            TensorRef(B, (idx["a"], idx["b"])),
        ]
        tree = optimize_term(refs, frozenset([idx["a"], idx["b"]]))
        assert tree.free == frozenset()
        assert tree_cost(tree) == 2 * 100  # one muladd per (a,b)


@st.composite
def random_term(draw):
    """Random contraction: 3-5 tensors over up to 7 indices with varied
    extents; a random subset of indices is summed."""
    n_idx = draw(st.integers(min_value=3, max_value=7))
    extents = [draw(st.sampled_from([2, 3, 4, 8, 16])) for _ in range(n_idx)]
    ranges = [IndexRange(f"R{k}", e) for k, e in enumerate(extents)]
    pool = [Index(f"x{k}", r) for k, r in enumerate(ranges)]
    n_tensors = draw(st.integers(min_value=3, max_value=5))
    refs = []
    for t in range(n_tensors):
        dims = draw(st.integers(min_value=1, max_value=3))
        chosen = tuple(
            dict.fromkeys(draw(st.sampled_from(pool)) for _ in range(dims))
        )
        refs.append(TensorRef(Tensor(f"T{t}", chosen), chosen))
    used = sorted({i for r in refs for i in r.indices})
    n_sum = draw(st.integers(min_value=0, max_value=len(used)))
    sums = frozenset(draw(st.permutations(used))[:n_sum])
    return refs, sums


class TestDPMatchesExhaustive:
    @given(random_term())
    @settings(max_examples=40, deadline=None)
    def test_dp_equals_exhaustive_cost(self, term):
        refs, sums = term
        dp_tree = optimize_term(refs, sums)
        _, stats = exhaustive_best_tree(refs, sums)
        assert tree_cost(dp_tree) == stats.best_cost

    @given(random_term())
    @settings(max_examples=25, deadline=None)
    def test_tree_evaluates_correctly(self, term):
        refs, sums = term
        tree = optimize_term(refs, sums)
        expr = tree.expression()

        # reference: evaluate the original flat term
        from repro.expr.ast import Mul, Sum

        body = Mul(tuple(refs)) if len(refs) > 1 else refs[0]
        original = Sum(tuple(sums), body) if sums else body

        rng = np.random.default_rng(0)
        arrays = {}
        for ref in refs:
            arrays.setdefault(
                ref.tensor.name, rng.standard_normal(ref.tensor.shape())
            )
        want = evaluate_expression(original, arrays)
        got = evaluate_expression(expr, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
