"""Tests for reverse-distributivity factorization."""

import numpy as np
import pytest

from repro.expr.canonical import flatten
from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count
from repro.opmin.multi_term import optimize_statement

FG_SRC = """
range V = 20;
range O = 6;
index a, b, e : V;
index i, j : O;
tensor F(a, e);
tensor G(a, e);
tensor T(e, b, i, j);
R(a, b, i, j) = sum(e) F(a, e) * T(e, b, i, j)
              + sum(e) G(a, e) * T(e, b, i, j);
"""


@pytest.fixture
def fg_prog():
    return parse_program(FG_SRC)


class TestFactorize:
    def test_two_contractions_become_one(self, fg_prog):
        stmt = fg_prog.statements[0]
        seq = optimize_statement(stmt, factorize=True)
        # the sum-factor pattern collapses: one helper add + one
        # contraction + trivial final assignment
        from repro.expr.ast import Add

        helper = [s for s in seq if isinstance(s.expr, Add)
                  and {r.tensor.name for r in s.expr.refs()} == {"F", "G"}]
        assert len(helper) == 1
        contractions = [
            s for s in seq if any(
                isinstance(s.expr, type(s.expr)) and sums
                for _, sums, _ in flatten(s.expr)
            )
        ]
        assert len(contractions) == 1

    def test_factorization_saves_ops(self, fg_prog):
        stmt = fg_prog.statements[0]
        on = sequence_op_count(optimize_statement(stmt, factorize=True))
        off = sequence_op_count(optimize_statement(stmt, factorize=False))
        assert on < off
        v, o = 20, 6
        # factored: one contraction (2 v^3 o^2) + helper add (2 v^2)
        assert on == 2 * v**3 * o**2 + 2 * v * v
        # split: two contractions + the final 2-term combine
        assert off == 2 * (2 * v**3 * o**2) + 2 * (v * v * o * o)

    def test_numerics_preserved(self, fg_prog):
        stmt = fg_prog.statements[0]
        arrays = random_inputs(fg_prog, seed=0)
        want = run_statements([stmt], arrays)["R"]
        for flag in (True, False):
            seq = optimize_statement(stmt, factorize=flag)
            got = run_statements(seq, arrays)["R"]
            np.testing.assert_allclose(got, want, rtol=1e-10, err_msg=str(flag))

    def test_coefficients_folded_into_helper(self):
        prog = parse_program("""
        range V = 8;
        index a, b, e : V;
        tensor F(a, e); tensor G(a, e); tensor T(e, b);
        R(a, b) = sum(e) F(a, e) * T(e, b) - 2 * sum(e) G(a, e) * T(e, b);
        """)
        stmt = prog.statements[0]
        seq = optimize_statement(stmt, factorize=True)
        arrays = random_inputs(prog, seed=1)
        want = run_statements([stmt], arrays)["R"]
        got = run_statements(seq, arrays)["R"]
        np.testing.assert_allclose(got, want, rtol=1e-10)
        from repro.expr.ast import Add

        helper = next(s for s in seq if isinstance(s.expr, Add))
        coefs = sorted(c for c, _ in helper.expr.terms)
        assert coefs == [-2.0, 1.0]

    def test_unprofitable_merge_skipped(self):
        """When the shared factor is tiny and the differing factor huge,
        merging may not pay; whatever the decision, ops(factorize=True)
        <= ops(factorize=False)."""
        prog = parse_program("""
        range V = 30; range W = 2;
        index a : W; index e, b : V;
        tensor F(a, e); tensor G(a, e); tensor T(e, b);
        R(a, b) = sum(e) F(a, e) * T(e, b) + sum(e) G(a, e) * T(e, b);
        """)
        stmt = prog.statements[0]
        on = sequence_op_count(optimize_statement(stmt, factorize=True))
        off = sequence_op_count(optimize_statement(stmt, factorize=False))
        assert on <= off

    def test_chained_merges(self):
        """Three terms over the same contraction collapse fully."""
        prog = parse_program("""
        range V = 10;
        index a, b, e : V;
        tensor F(a, e); tensor G(a, e); tensor H(a, e); tensor T(e, b);
        R(a, b) = sum(e) F(a, e) * T(e, b)
                + sum(e) G(a, e) * T(e, b)
                + sum(e) H(a, e) * T(e, b);
        """)
        stmt = prog.statements[0]
        seq = optimize_statement(stmt, factorize=True)
        arrays = random_inputs(prog, seed=2)
        want = run_statements([stmt], arrays)["R"]
        got = run_statements(seq, arrays)["R"]
        np.testing.assert_allclose(got, want, rtol=1e-10)
        # only one summation statement remains
        n_contractions = sum(
            1
            for s in seq
            for _, sums, _ in flatten(s.expr)
            if sums
        )
        assert n_contractions == 1

    def test_different_index_structure_not_merged(self):
        """T referenced with different index tuples must not merge."""
        prog = parse_program("""
        range V = 6;
        index a, b, e : V;
        tensor F(a, e); tensor G(a, e); tensor T(e, b);
        R(a, b) = sum(e) F(a, e) * T(e, b) + sum(e) G(e, a) * T(e, b);
        """)
        # F(a,e) vs G(e,a): differing factor has mismatched tuples ->
        # wait, the differing factors are F(a,e) and G(e,a); the common
        # factor T matches; merge requires the DIFFERING refs to share
        # the index tuple -- (a,e) vs (e,a) do not.
        stmt = prog.statements[0]
        arrays = random_inputs(prog, seed=3)
        want = run_statements([stmt], arrays)["R"]
        got = run_statements(
            optimize_statement(stmt, factorize=True), arrays
        )["R"]
        np.testing.assert_allclose(got, want, rtol=1e-10)
