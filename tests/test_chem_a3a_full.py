"""Tests for the full six-term A3A spin expression."""

import numpy as np
import pytest

from repro.chem.a3a_full import a3a_full_problem
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program


@pytest.fixture(scope="module")
def problem():
    return a3a_full_problem(VA=3, VB=2, O=2, Ci=20)


@pytest.fixture(scope="module")
def optimized(problem):
    return optimize_program(problem.program)


class TestStructure:
    def test_parses_with_mixed_ranges(self, problem):
        names = [s.result.name for s in problem.program.statements]
        assert names[:3] == ["Waa", "Wab", "Wbb"]
        assert names[-1] == "E"

    def test_final_statement_has_six_terms(self, problem):
        from repro.expr.canonical import flatten

        terms = flatten(problem.program.statements[-1].expr)
        assert len(terms) == 6

    def test_antisymmetrization_terms(self, problem):
        from repro.expr.ast import Add

        waa = problem.program.statements[0]
        assert isinstance(waa.expr, Add)
        coefs = sorted(c for c, _ in waa.expr.terms)
        assert coefs == [-1.0, 1.0]

    def test_functions_are_integrals(self, problem):
        funcs = {t.name for t in problem.program.functions()}
        assert funcs == {"gaa", "gab", "gbb"}


class TestOptimization:
    def test_cse_shares_intermediates_across_terms(self, problem, optimized):
        """Spin-block pairs of terms share work: at least one temporary
        is consumed by two or more later statements (e.g. the X block of
        the beta-beta pair), and no two statements compute canonically
        equal expressions."""
        from repro.expr.canonical import canonical_key

        consumers = {}
        for s in optimized:
            for ref in s.expr.refs():
                if ref.tensor.name.startswith("T"):
                    consumers[ref.tensor.name] = (
                        consumers.get(ref.tensor.name, 0) + 1
                    )
        assert any(count >= 2 for count in consumers.values())
        keys = [canonical_key(s.expr) for s in optimized]
        assert len(keys) == len(set(keys))

    def test_symmetric_square_factorization_found(self, optimized):
        """The optimizer may beat the naive X-block form by squaring a
        shared half-contraction (sum T9*T9): verify some statement
        multiplies a temporary by itself -- the op-count win the free
        pairing search is allowed to find."""
        squares = [
            s
            for s in optimized
            if len({(r.tensor.name, r.indices) for r in s.expr.refs()}) == 1
            and sum(1 for _ in s.expr.refs()) == 2
        ]
        assert squares

    def test_optimized_cheaper_than_direct(self, problem, optimized):
        direct = sum(
            statement_op_count(s) for s in problem.program.statements
        )
        assert sequence_op_count(optimized) < direct

    def test_numerics_preserved(self, problem, optimized):
        inputs = random_inputs(problem.program, seed=8)
        want = run_statements(
            problem.program.statements, inputs, functions=problem.functions
        )["E"]
        got = run_statements(optimized, inputs, functions=problem.functions)[
            "E"
        ]
        assert float(got) == pytest.approx(float(want), rel=1e-9)

    def test_single_assignment(self, optimized):
        produced = [s.result.name for s in optimized]
        assert len(produced) == len(set(produced))


class TestScaling:
    def test_paper_scale_cost_structure(self):
        """At paper scale the direct form is dominated by the integral
        re-evaluations inside the 8-index loops; optimization pulls the
        integral evaluation out (factor ~VA^2 on the dominant term)."""
        big = a3a_full_problem(VA=3000, VB=2800, O=100, Ci=1000)
        direct = sum(
            statement_op_count(s) for s in big.program.statements
        )
        optimized = sequence_op_count(optimize_program(big.program))
        assert optimized < direct / 1_000
