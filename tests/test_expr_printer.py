"""Round-trip tests for program serialization."""

import numpy as np
import pytest

from repro.expr.canonical import canonical_key
from repro.expr.parser import parse_program
from repro.expr.printer import program_to_source, statement_to_source
from repro.engine.executor import random_inputs, run_statements
from repro.chem.workloads import (
    ccsd_doubles_program,
    ccsd_like_program,
    fig1_formula_sequence,
    fig1_program,
    random_contraction_program,
)
from repro.opmin.multi_term import optimize_statement


def roundtrip(program, statements=None):
    source = program_to_source(program, statements)
    return parse_program(source), source


class TestStatementToSource:
    def test_simple(self, fig1_statement):
        text = statement_to_source(fig1_statement)
        assert text.startswith("S(a,b,i,j) = sum(")
        assert text.endswith(";")

    def test_accumulate(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) += A(a);"
        )
        assert "+=" in statement_to_source(prog.statements[0])

    def test_coefficients(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); tensor B(a);"
            "S(a) = 2 * A(a) - B(a) - 0.5 * B(a);"
        )
        text = statement_to_source(prog.statements[0])
        back = parse_program(
            "range N=3; index a:N; tensor A(a); tensor B(a);" + text
        )
        assert canonical_key(back.statements[0].expr) == canonical_key(
            prog.statements[0].expr
        )


class TestProgramRoundTrip:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: fig1_program(V=5, O=3),
            lambda: fig1_formula_sequence(V=5, O=3),
            lambda: ccsd_like_program(V=5, O=3),
            lambda: ccsd_doubles_program(V=4, O=2),
        ],
    )
    def test_canonically_equal(self, maker):
        prog = maker()
        back, _ = roundtrip(prog)
        assert len(back.statements) == len(prog.statements)
        for a, b in zip(prog.statements, back.statements):
            assert canonical_key(a.expr) == canonical_key(b.expr)
            assert a.result.name == b.result.name

    @pytest.mark.parametrize("seed", range(5))
    def test_random_programs_numerically_equal(self, seed):
        prog = random_contraction_program(seed + 900)
        back, _ = roundtrip(prog)
        arrays = random_inputs(prog, seed=seed)
        want = run_statements(prog.statements, arrays)
        got = run_statements(back.statements, arrays)
        name = prog.statements[0].result.name
        np.testing.assert_allclose(got[name], want[name], rtol=1e-12)

    def test_optimized_sequence_prints_and_reparses(self, fig1_statement):
        seq = optimize_statement(fig1_statement)
        prog = fig1_program(V=10, O=4)
        source = program_to_source(prog, seq)
        back = parse_program(source)
        assert len(back.statements) == len(seq)
        arrays = random_inputs(prog, {"V": 3, "O": 2}, seed=1)
        want = run_statements(seq, arrays, {"V": 3, "O": 2})
        got = run_statements(back.statements, arrays, {"V": 3, "O": 2})
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-12)

    def test_annotations_preserved(self):
        prog = parse_program("""
        range N = 5;
        index a, b : N;
        tensor T(a, b) symmetric(0, 1) ;
        tensor W(a, b) sparse(0.25);
        function f(a, b) cost 42;
        S(a, b) = T(a, b) + W(a, b) + f(a, b);
        """)
        back, source = roundtrip(prog)
        assert "symmetric(0,1)" in source
        assert "sparse(0.25)" in source
        assert "cost 42" in source
        tensors = {t.name: t for t in back.tensors()}
        assert tensors["T"].symmetries[0].positions == (0, 1)
        assert tensors["W"].fill == 0.25
        assert tensors["f"].compute_cost == 42
