"""Round-trip tests for program serialization."""

import numpy as np
import pytest

from repro.expr.canonical import canonical_key
from repro.expr.parser import parse_program
from repro.expr.printer import program_to_source, statement_to_source
from repro.engine.executor import random_inputs, run_statements
from repro.chem.workloads import (
    ccsd_doubles_program,
    ccsd_like_program,
    fig1_formula_sequence,
    fig1_program,
    random_contraction_program,
)
from repro.opmin.multi_term import optimize_statement


def roundtrip(program, statements=None):
    source = program_to_source(program, statements)
    return parse_program(source), source


class TestStatementToSource:
    def test_simple(self, fig1_statement):
        text = statement_to_source(fig1_statement)
        assert text.startswith("S(a,b,i,j) = sum(")
        assert text.endswith(";")

    def test_accumulate(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); S(a) += A(a);"
        )
        assert "+=" in statement_to_source(prog.statements[0])

    def test_coefficients(self):
        prog = parse_program(
            "range N=3; index a:N; tensor A(a); tensor B(a);"
            "S(a) = 2 * A(a) - B(a) - 0.5 * B(a);"
        )
        text = statement_to_source(prog.statements[0])
        back = parse_program(
            "range N=3; index a:N; tensor A(a); tensor B(a);" + text
        )
        assert canonical_key(back.statements[0].expr) == canonical_key(
            prog.statements[0].expr
        )


class TestProgramRoundTrip:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: fig1_program(V=5, O=3),
            lambda: fig1_formula_sequence(V=5, O=3),
            lambda: ccsd_like_program(V=5, O=3),
            lambda: ccsd_doubles_program(V=4, O=2),
        ],
    )
    def test_canonically_equal(self, maker):
        prog = maker()
        back, _ = roundtrip(prog)
        assert len(back.statements) == len(prog.statements)
        for a, b in zip(prog.statements, back.statements):
            assert canonical_key(a.expr) == canonical_key(b.expr)
            assert a.result.name == b.result.name

    @pytest.mark.parametrize("seed", range(5))
    def test_random_programs_numerically_equal(self, seed):
        prog = random_contraction_program(seed + 900)
        back, _ = roundtrip(prog)
        arrays = random_inputs(prog, seed=seed)
        want = run_statements(prog.statements, arrays)
        got = run_statements(back.statements, arrays)
        name = prog.statements[0].result.name
        np.testing.assert_allclose(got[name], want[name], rtol=1e-12)

    def test_optimized_sequence_prints_and_reparses(self, fig1_statement):
        seq = optimize_statement(fig1_statement)
        prog = fig1_program(V=10, O=4)
        source = program_to_source(prog, seq)
        back = parse_program(source)
        assert len(back.statements) == len(seq)
        arrays = random_inputs(prog, {"V": 3, "O": 2}, seed=1)
        want = run_statements(seq, arrays, {"V": 3, "O": 2})
        got = run_statements(back.statements, arrays, {"V": 3, "O": 2})
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-12)

    def test_result_annotations_preserved(self):
        """Annotated *result* declarations must survive the round-trip
        (they used to be dropped because the LHS implicitly declares)."""
        prog = parse_program("""
        range N = 8;
        index a, b, c : N;
        tensor A(a, b) sparse(0.1);
        tensor S(a, c) symmetric(0, 1) sparse(0.25);
        S(a, c) = sum(b) A(a, b) * A(b, c);
        """)
        back, source = roundtrip(prog)
        want = {t.name: t for t in prog.tensors()}
        got = {t.name: t for t in back.tensors()}
        assert got == want
        assert source.count("tensor S(") == 1

    def test_annotations_preserved(self):
        prog = parse_program("""
        range N = 5;
        index a, b : N;
        tensor T(a, b) symmetric(0, 1) ;
        tensor W(a, b) sparse(0.25);
        function f(a, b) cost 42;
        S(a, b) = T(a, b) + W(a, b) + f(a, b);
        """)
        back, source = roundtrip(prog)
        assert "symmetric(0,1)" in source
        assert "sparse(0.25)" in source
        assert "cost 42" in source
        tensors = {t.name: t for t in back.tensors()}
        assert tensors["T"].symmetries[0].positions == (0, 1)
        assert tensors["W"].fill == 0.25
        assert tensors["f"].compute_cost == 42


def random_annotated_program(seed: int):
    """A random program whose tensors (inputs *and* result) carry random
    symmetry groups and sparse(fill) annotations."""
    import random

    rng = random.Random(seed)
    n_ranges = rng.randint(1, 2)
    ranges = {f"R{k}": rng.randint(2, 6) for k in range(n_ranges)}
    lines = [f"range {n} = {e};" for n, e in ranges.items()]
    index_names = [f"x{k}" for k in range(rng.randint(3, 5))]
    index_range = {}
    for name in index_names:
        index_range[name] = rng.choice(list(ranges))
        lines.append(f"index {name} : {index_range[name]};")

    def annotations(dims):
        parts = []
        positions_by_range = {}
        for pos, idx in enumerate(dims):
            positions_by_range.setdefault(index_range[idx], []).append(pos)
        group = [p for p in positions_by_range.values() if len(p) >= 2]
        if group and rng.random() < 0.5:
            chosen = rng.choice(group)
            kw = rng.choice(["symmetric", "antisymmetric"])
            parts.append(f"{kw}({','.join(map(str, chosen))})")
        if rng.random() < 0.6:
            fill = rng.choice([0.5, 0.25, 0.1, 0.05, 0.001])
            parts.append(f"sparse({fill})")
        return " ".join(parts)

    refs = []
    used = []
    for t in range(rng.randint(2, 3)):
        dims = rng.sample(index_names, rng.randint(1, min(3, len(index_names))))
        used.extend(d for d in dims if d not in used)
        lines.append(
            f"tensor T{t}({','.join(dims)}) {annotations(dims)};"
        )
        refs.append(f"T{t}({','.join(dims)})")
    out = rng.sample(used, rng.randint(1, len(used)))
    sums = [n for n in used if n not in out]
    out_ann = annotations(out)
    if out_ann:
        lines.append(f"tensor S({','.join(out)}) {out_ann};")
    rhs = " * ".join(refs)
    if sums:
        rhs = f"sum({','.join(sums)}) {rhs}"
    op = rng.choice(["=", "+="])
    lines.append(f"S({','.join(out)}) {op} {rhs};")
    return parse_program("\n".join(lines))


class TestAnnotationRoundTripProperty:
    """Property: printing and re-parsing preserves every tensor
    declaration exactly -- symmetry groups, sparse fills, function
    costs -- for randomized annotated programs."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_declarations_equal(self, seed):
        prog = random_annotated_program(seed)
        back, _ = roundtrip(prog)
        want = {t.name: t for t in prog.tensors()}
        got = {t.name: t for t in back.tensors()}
        assert got == want

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_statements_canonically_equal(self, seed):
        prog = random_annotated_program(seed)
        back, _ = roundtrip(prog)
        assert len(back.statements) == len(prog.statements)
        for a, b in zip(prog.statements, back.statements):
            assert canonical_key(a.expr) == canonical_key(b.expr)
            assert a.accumulate == b.accumulate
