"""Tests for pipeline configuration knobs added beyond the base run."""

import numpy as np
import pytest

from repro import SynthesisConfig, synthesize
from repro import MachineModel, MemoryLevel
from repro.chem.workloads import ccsd_like_program
from repro.validate import verify_result

SRC = """
range V = 6;
range O = 3;
index a, b, e : V;
index i, j : O;
tensor F(a, e);
tensor G(a, e);
tensor T(e, b, i, j);
R(a, b, i, j) = sum(e) F(a, e) * T(e, b, i, j)
              + sum(e) G(a, e) * T(e, b, i, j);
"""


class TestFactorizeOption:
    def test_default_factorizes(self):
        result = synthesize(SRC, SynthesisConfig(optimize_cache=False))
        # factored form: helper add + one contraction + combine
        n_contract = sum(
            1
            for s in result.statements
            for _, sums, _ in _flat(s)
            if sums
        )
        assert n_contract == 1

    def test_disable_factorization(self):
        config = SynthesisConfig(optimize_cache=False, factorize=False)
        result = synthesize(SRC, config)
        n_contract = sum(
            1
            for s in result.statements
            for _, sums, _ in _flat(s)
            if sums
        )
        assert n_contract == 2

    def test_both_verify(self):
        for flag in (True, False):
            config = SynthesisConfig(optimize_cache=False, factorize=flag)
            result = synthesize(SRC, config)
            assert verify_result(result).ok


class TestOrderOption:
    def test_order_search_reported_and_correct(self):
        machine = MachineModel(cache=MemoryLevel("cache", 48, 8.0))
        config = SynthesisConfig(machine=machine, optimize_order=True)
        result = synthesize(SRC, config)
        report = next(
            r for r in result.reports if "locality" in r.name.lower()
        )
        assert "loop-order modeled misses" in report.details
        assert verify_result(result).ok

    def test_order_never_hurts_model(self):
        machine = MachineModel(cache=MemoryLevel("cache", 48, 8.0))
        with_order = synthesize(
            SRC, SynthesisConfig(machine=machine, optimize_order=True)
        )
        without = synthesize(
            SRC, SynthesisConfig(machine=machine, optimize_order=False)
        )
        def final_misses(result):
            report = next(
                r for r in result.reports if "locality" in r.name.lower()
            )
            return report.details["optimized modeled misses"]

        assert final_misses(with_order) <= final_misses(without)


def _flat(stmt):
    from repro.expr.canonical import flatten

    return flatten(stmt.expr)


class TestProcessorsOption:
    def test_processor_count_picks_a_grid(self):
        config = SynthesisConfig(optimize_cache=False, processors=4)
        result = synthesize(SRC, config)
        report = next(
            r
            for r in result.reports
            if r.name == "Data distribution and partitioning"
        )
        assert report.details["processors"] == 4
        assert any("chose grid" in n for n in report.notes)
        assert verify_result(result).ok

    def test_explicit_grid_wins_over_count(self):
        from repro import ProcessorGrid

        config = SynthesisConfig(
            optimize_cache=False,
            grid=ProcessorGrid((2,)),
            processors=16,
        )
        result = synthesize(SRC, config)
        report = next(
            r
            for r in result.reports
            if r.name == "Data distribution and partitioning"
        )
        assert report.details["processors"] == 2


class TestParallelExecution:
    def test_spmd_sources_and_run_parallel(self):
        from repro import ProcessorGrid
        from repro.engine.executor import random_inputs, run_statements

        config = SynthesisConfig(
            optimize_cache=False, grid=ProcessorGrid((2,))
        )
        result = synthesize(SRC, config)
        sources = result.spmd_sources()
        assert sources
        for name, src in sources.items():
            assert f"def rank_program_{name}(" in src
        arrays = random_inputs(result.program, seed=0)
        got = result.run_parallel(arrays)
        want = run_statements(result.program.statements, arrays)
        np.testing.assert_allclose(got["R"], want["R"], rtol=1e-9)

    def test_run_parallel_without_grid_raises(self):
        result = synthesize(SRC, SynthesisConfig(optimize_cache=False))
        with pytest.raises(ValueError, match="grid"):
            result.run_parallel({})


class TestParallelExecutionWithFunctions:
    def test_a3a_parallel_path(self):
        """Function materializations run locally; array contractions run
        through generated SPMD programs; the energy is exact."""
        from repro import ProcessorGrid
        from repro.chem.a3a import a3a_problem
        from repro.engine.executor import random_inputs, run_statements

        problem = a3a_problem(V=4, O=2, Ci=10)
        config = SynthesisConfig(
            optimize_cache=False, grid=ProcessorGrid((2,))
        )
        result = synthesize(problem.program, config)
        inputs = random_inputs(problem.program, seed=0)
        want = run_statements(
            problem.statements, inputs, functions=problem.functions
        )["E"]
        got = result.run_parallel(inputs, functions=problem.functions)["E"]
        assert float(got) == pytest.approx(float(want), rel=1e-9)
