"""Unit tests for repro.expr.indices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.expr.indices import Index, IndexRange, extent, make_indices, total_extent


class TestIndexRange:
    def test_extent_uses_default(self):
        assert IndexRange("V", 3000).extent() == 3000

    def test_extent_binding_overrides_default(self):
        assert IndexRange("V", 3000).extent({"V": 8}) == 8

    def test_extent_binding_for_other_range_ignored(self):
        assert IndexRange("V", 3000).extent({"O": 8}) == 3000

    def test_extent_without_default_or_binding_raises(self):
        with pytest.raises(ValueError, match="no default"):
            IndexRange("V").extent()

    def test_extent_without_default_but_with_binding(self):
        assert IndexRange("V").extent({"V": 5}) == 5

    def test_nonpositive_binding_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            IndexRange("V", 10).extent({"V": 0})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            IndexRange("")

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            IndexRange("V", -1)

    def test_equality_and_hash(self):
        assert IndexRange("V", 10) == IndexRange("V", 10)
        assert hash(IndexRange("V", 10)) == hash(IndexRange("V", 10))
        assert IndexRange("V", 10) != IndexRange("V", 20)


class TestIndex:
    def test_extent_delegates_to_range(self, rng_v):
        assert Index("a", rng_v).extent() == 10
        assert Index("a", rng_v).extent({"V": 3}) == 3

    def test_indices_of_same_name_different_range_differ(self, rng_v, rng_o):
        assert Index("a", rng_v) != Index("a", rng_o)

    def test_sortable(self, rng_v):
        names = sorted([Index("c", rng_v), Index("a", rng_v), Index("b", rng_v)])
        assert [i.name for i in names] == ["a", "b", "c"]

    def test_empty_name_rejected(self, rng_v):
        with pytest.raises(ValueError):
            Index("", rng_v)

    def test_extent_function_alias(self, rng_v):
        assert extent(Index("a", rng_v)) == 10


class TestTotalExtent:
    def test_empty_is_scalar(self):
        assert total_extent([]) == 1

    def test_product(self, rng_v, rng_o):
        indices = [Index("a", rng_v), Index("i", rng_o)]
        assert total_extent(indices) == 40

    def test_with_bindings(self, rng_v, rng_o):
        indices = [Index("a", rng_v), Index("i", rng_o)]
        assert total_extent(indices, {"V": 2, "O": 3}) == 6

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=6))
    def test_matches_manual_product(self, extents):
        rngs = [IndexRange(f"R{k}", n) for k, n in enumerate(extents)]
        indices = [Index(f"x{k}", r) for k, r in enumerate(rngs)]
        expected = 1
        for n in extents:
            expected *= n
        assert total_extent(indices) == expected


class TestMakeIndices:
    def test_creates_all(self, rng_v):
        table = make_indices("abc", rng_v)
        assert set(table) == {"a", "b", "c"}
        assert all(i.range == rng_v for i in table.values())


class TestEinsumLetters:
    def test_distinct_letters(self, rng_v):
        from repro.expr.indices import einsum_letters

        indices = [Index(f"x{k}", rng_v) for k in range(10)]
        table = einsum_letters(indices)
        assert len(set(table.values())) == 10
        assert all(len(ch) == 1 and ch.isalpha() for ch in table.values())

    def test_too_many_indices_is_a_value_error(self, rng_v):
        """Shared guard for both einsum backends: 52 subscript letters
        exist, the 53rd index must raise an informative ValueError."""
        from repro.expr.indices import einsum_letters

        indices = [Index(f"x{k}", rng_v) for k in range(53)]
        with pytest.raises(ValueError, match="too many distinct indices"):
            einsum_letters(indices)

    def test_52_indices_is_the_boundary(self, rng_v):
        from repro.expr.indices import einsum_letters

        indices = [Index(f"x{k}", rng_v) for k in range(52)]
        assert len(einsum_letters(indices)) == 52
