"""Tests for primitive-function tensors (the paper's f1/f2 integrals)."""

import pytest

from repro.expr.parser import ParseError, parse_program
from repro.expr.tensor import Tensor


A3A_SNIPPET = """
range V = 8;
range O = 3;
index a, c, e, f, b : V;
index k : O;
function f1(c, e, b, k) cost 1000;
T1(c, e, b, k) = f1(c, e, b, k);
"""


class TestFunctionDeclaration:
    def test_parse_function(self):
        prog = parse_program(A3A_SNIPPET)
        f1 = prog.statements[0].expr.tensor
        assert f1.is_function
        assert f1.compute_cost == 1000

    def test_function_not_in_inputs(self):
        prog = parse_program(A3A_SNIPPET)
        assert all(t.name != "f1" for t in prog.inputs())
        assert [t.name for t in prog.functions()] == ["f1"]

    def test_function_occupies_no_storage(self):
        prog = parse_program(A3A_SNIPPET)
        f1 = prog.statements[0].expr.tensor
        assert f1.stored_size() == 0
        assert f1.size() == 8 * 8 * 8 * 3  # iteration space still defined

    def test_duplicate_function_name_rejected(self):
        with pytest.raises(ParseError, match="already declared"):
            parse_program(
                "range V=2; index a:V;"
                "function f(a) cost 10; function f(a) cost 10;"
            )

    def test_function_requires_cost_keyword(self):
        with pytest.raises(ParseError, match="cost"):
            parse_program("range V=2; index a:V; function f(a) price 10;")


class TestFunctionTensorInvariants:
    def test_zero_cost_function_rejected(self, idx):
        with pytest.raises(ValueError, match="positive compute_cost"):
            Tensor("f", (idx["a"],), kind="function", compute_cost=0)

    def test_array_with_cost_rejected(self, idx):
        with pytest.raises(ValueError, match="compute_cost 0"):
            Tensor("A", (idx["a"],), compute_cost=5)

    def test_bad_kind_rejected(self, idx):
        with pytest.raises(ValueError, match="kind"):
            Tensor("A", (idx["a"],), kind="blob")
