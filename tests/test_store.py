"""The shared two-tier store (memory LRU + sharded on-disk tier).

Both content-addressed stores (the plan cache and the tuning database)
sit on :class:`repro.store.TwoTierStore`; these tests pin down the
store's own contract -- sharded fanout layout, atomic + locked
publication, LRU behavior, corrupt/stale handling, and the counters
the serving layer surfaces.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.store import TwoTierStore


def _keys(n, prefix=""):
    return [f"{prefix}{i:02d}{'ab' * 31}" for i in range(n)]


class TestMemoryTier:
    def test_round_trip(self):
        store = TwoTierStore(maxsize=4)
        store.put("deadbeef", b"payload")
        value, tier = store.get("deadbeef")
        assert value == b"payload"
        assert tier == "memory"

    def test_miss_returns_none(self):
        store = TwoTierStore(maxsize=4)
        assert store.get("deadbeef") is None
        assert store.misses == 1

    def test_lru_eviction_order(self):
        store = TwoTierStore(maxsize=2)
        a, b, c = _keys(3)
        store.put(a, b"a")
        store.put(b, b"b")
        store.get(a)  # refresh a; b is now least recent
        store.put(c, b"c")
        assert store.evictions == 1
        assert store.get(b) is None  # evicted (no disk tier)
        assert store.get(a) is not None
        assert store.get(c) is not None

    def test_decode_applies(self):
        store = TwoTierStore(maxsize=4)
        store.put("k", b"123")
        value, _ = store.get("k", decode=lambda blob: int(blob))
        assert value == 123


class TestDiskTier:
    def test_sharded_layout(self, tmp_path):
        store = TwoTierStore(maxsize=4, directory=tmp_path, suffix=".bin")
        store.put("cafef00d", b"x")
        expected = tmp_path / "ca" / "cafef00d.bin"
        assert expected.is_file()
        assert expected.read_bytes() == b"x"

    def test_disk_hit_after_memory_eviction(self, tmp_path):
        store = TwoTierStore(maxsize=1, directory=tmp_path)
        a, b = _keys(2)
        store.put(a, b"a")
        store.put(b, b"b")  # evicts a from memory; disk keeps it
        value, tier = store.get(a)
        assert value == b"a"
        assert tier == "disk"
        assert store.disk_hits == 1
        # a disk hit repopulates the memory tier
        _, tier = store.get(a)
        assert tier == "memory"

    def test_fresh_instance_reads_other_instances_files(self, tmp_path):
        first = TwoTierStore(maxsize=4, directory=tmp_path)
        first.put("feedface", b"shared")
        second = TwoTierStore(maxsize=4, directory=tmp_path)
        value, tier = second.get("feedface")
        assert value == b"shared"
        assert tier == "disk"

    def test_legacy_flat_file_still_readable(self, tmp_path):
        # stores written before sharding kept files at the top level
        (tmp_path / "0ldkey.bin").write_bytes(b"legacy")
        store = TwoTierStore(maxsize=4, directory=tmp_path, suffix=".bin")
        value, tier = store.get("0ldkey")
        assert value == b"legacy"
        assert tier == "disk"

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = TwoTierStore(maxsize=1, directory=tmp_path)
        a, b = _keys(2)
        store.put(a, b"good")
        store.put(b, b"spill")  # push a out of memory
        path = Path(store.path(a))
        path.write_bytes(b"")

        def decode(blob):
            if not blob:
                raise ValueError("corrupt")
            return blob

        assert store.get(a, decode=decode) is None
        assert not path.exists(), "corrupt file must be removed"
        assert store.misses == 1

    def test_stale_entry_is_a_miss(self, tmp_path):
        store = TwoTierStore(maxsize=1, directory=tmp_path)
        a, b = _keys(2)
        store.put(a, b"v1")
        store.put(b, b"spill")
        result = store.get(a, validate=lambda value: False)
        assert result is None
        assert store.stale == 1

    def test_clear_disk(self, tmp_path):
        store = TwoTierStore(maxsize=4, directory=tmp_path)
        store.put("aa11", b"x")
        store.put("bb22", b"y")
        store.clear(disk=True)
        assert store.get("aa11") is None
        assert not list(tmp_path.rglob("*.bin"))


class TestLocking:
    def test_held_lock_skips_publication(self, tmp_path):
        store = TwoTierStore(maxsize=4, directory=tmp_path)
        shard = tmp_path / "ca"
        shard.mkdir()
        lock = shard / "cafe.lock"
        lock.write_text("held")
        store.put("cafe", b"blocked")
        # memory tier has it, disk publication was skipped
        assert store.get("cafe") == (b"blocked", "memory")
        assert not Path(store.path("cafe")).exists()
        assert lock.exists()

    def test_stale_lock_is_broken(self, tmp_path):
        store = TwoTierStore(
            maxsize=4, directory=tmp_path, lock_timeout_s=0.0
        )
        shard = tmp_path / "ca"
        shard.mkdir()
        (shard / "cafe.lock").write_text("orphan")
        store.put("cafe", b"published")
        assert Path(store.path("cafe")).read_bytes() == b"published"
        assert not (shard / "cafe.lock").exists()

    def test_lock_removed_after_publish(self, tmp_path):
        store = TwoTierStore(maxsize=4, directory=tmp_path)
        store.put("cafe", b"x")
        assert not list(tmp_path.rglob("*.lock"))

    def test_concurrent_writers_one_file_no_tempfile_litter(self, tmp_path):
        store = TwoTierStore(maxsize=64, directory=tmp_path)
        barrier = threading.Barrier(8)

        def writer(i):
            barrier.wait()
            store.put("c0ffee", f"writer-{i}".encode())

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        files = sorted(p.name for p in tmp_path.rglob("*") if p.is_file())
        assert files == ["c0ffee.bin"], files
        assert Path(store.path("c0ffee")).read_bytes().startswith(b"writer-")

    def test_multiprocess_style_distinct_stores_same_dir(self, tmp_path):
        stores = [
            TwoTierStore(maxsize=4, directory=tmp_path) for _ in range(4)
        ]
        for i, store in enumerate(stores):
            store.put("deadbeef", b"same-content")
            store.put(f"unique{i}", f"{i}".encode())
        assert Path(store.path("deadbeef")).read_bytes() == b"same-content"
        for i, store in enumerate(stores):
            value, _ = store.get(f"unique{i}")
            assert value == f"{i}".encode()


class TestStats:
    def test_counters(self, tmp_path):
        store = TwoTierStore(maxsize=1, directory=tmp_path)
        a, b = _keys(2)
        store.put(a, b"a")
        store.get(a)  # memory hit
        store.put(b, b"b")  # evicts a
        store.get(a)  # disk hit
        store.get("missing")  # miss
        stats = store.stats()
        assert stats["hits"] == 2
        assert stats["memory_hits"] == 1
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1
        # put(b) evicted a; the disk hit on a repopulated and evicted b
        assert stats["evictions"] == 2
        assert stats["memory_entries"] == 1
        assert stats["maxsize"] == 1

    def test_describe_mentions_tiers(self, tmp_path):
        store = TwoTierStore(maxsize=4, directory=tmp_path)
        text = store.describe("test store")
        assert "test store" in text


def test_memory_entries_respects_maxsize(tmp_path):
    store = TwoTierStore(maxsize=2, directory=tmp_path)
    for key in _keys(5):
        store.put(key, b"x")
    assert store.stats()["memory_entries"] <= 2
    # every entry still served from disk
    for key in _keys(5):
        assert store.get(key) is not None
