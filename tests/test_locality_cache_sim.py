"""Tests for the LRU cache simulator and its agreement with the
Section-6 analytic model."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs
from repro.codegen.builder import apply_tiling, build_unfused
from repro.codegen.loops import Alloc, walk
from repro.locality.cache_sim import LRUCache, simulate_cache
from repro.locality.cost_model import access_cost
from repro.locality.tile_search import optimize_locality


def matmul(n):
    return parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)


class TestLRUCache:
    def test_hit_after_miss(self):
        c = LRUCache(4)
        c.access("A", (0,), False)
        c.access("A", (0,), False)
        assert c.stats.misses == 1
        assert c.stats.hits == 1

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.access("A", (0,), False)
        c.access("A", (1,), False)
        c.access("A", (0,), False)  # refresh 0
        c.access("A", (2,), False)  # evicts 1
        c.access("A", (0,), False)  # still cached
        assert c.stats.hits == 2
        c.access("A", (1,), False)  # was evicted -> miss
        assert c.stats.misses == 4

    def test_distinct_arrays_distinct_keys(self):
        c = LRUCache(4)
        c.access("A", (0,), False)
        c.access("B", (0,), False)
        assert c.stats.misses == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_per_array_misses(self):
        c = LRUCache(4)
        c.access("A", (0,), False)
        c.access("B", (0,), True)
        c.access("B", (1,), True)
        assert c.stats.per_array_misses == {"A": 1, "B": 2}


class TestSimulateCache:
    def test_infinite_cache_compulsory_misses_only(self):
        """With capacity >= footprint, misses = distinct elements."""
        n = 6
        prog = matmul(n)
        block = build_unfused(prog.statements)
        stats = simulate_cache(
            block, random_inputs(prog, seed=0), capacity=10**6
        )
        assert stats.misses == 3 * n * n  # A, B, C once each
        assert stats.evictions == 0

    def test_model_matches_simulation_when_everything_fits(self):
        n = 6
        prog = matmul(n)
        block = build_unfused(prog.statements)
        modeled = access_cost(block, capacity=10**6)
        stats = simulate_cache(
            block, random_inputs(prog, seed=0), capacity=10**6
        )
        assert modeled == stats.misses

    def test_tiny_cache_misses_every_new_element(self):
        n = 4
        prog = matmul(n)
        block = build_unfused(prog.statements)
        stats = simulate_cache(
            block, random_inputs(prog, seed=0), capacity=1
        )
        # with capacity 1, every access except immediate re-reads misses;
        # at minimum the model's worst case 3*n^3 is an upper bound
        assert stats.misses <= 3 * n**3
        assert stats.misses > 3 * n * n

    def test_tiling_reduces_measured_misses(self):
        """The measured LRU misses improve under the blocking chosen by
        the analytic search -- the model's decision is validated by
        measurement."""
        n = 16
        prog = matmul(n)
        block = build_unfused(prog.statements)
        capacity = 64
        inputs = random_inputs(prog, seed=1)
        untiled = simulate_cache(block, inputs, capacity)
        result = optimize_locality(block, capacity)
        assert result.tile_sizes  # blocking chosen
        tiled = simulate_cache(result.structure, inputs, capacity)
        assert tiled.misses < untiled.misses

    def test_model_ranks_candidates_like_measurement(self):
        """Across tile-size candidates, modeled cost and measured misses
        correlate."""
        import scipy.stats

        n = 8
        prog = matmul(n)
        block = build_unfused(prog.statements)
        capacity = 24
        inputs = random_inputs(prog, seed=2)
        keep = [a.array for a in walk(block) if isinstance(a, Alloc)]
        indices = {i.name: i for s in prog.statements
                   for i in list(s.expr.free) + list(s.expr.indices)}
        modeled, measured = [], []
        for bj in (1, 2, 4, 8):
            for bk in (1, 2, 4, 8):
                tiles = {}
                if bj < n:
                    tiles[indices["j"]] = bj
                if bk < n:
                    tiles[indices["k"]] = bk
                structure = (
                    apply_tiling(block, tiles, keep_global=keep)
                    if tiles
                    else block
                )
                modeled.append(access_cost(structure, capacity))
                measured.append(
                    simulate_cache(structure, inputs, capacity).misses
                )
        rho = scipy.stats.spearmanr(modeled, measured).statistic
        assert rho > 0.5

    def test_trace_does_not_change_results(self):
        n = 5
        prog = matmul(n)
        block = build_unfused(prog.statements)
        inputs = random_inputs(prog, seed=3)
        from repro.codegen.interp import execute

        plain = execute(block, inputs)
        cache = LRUCache(16)
        traced = execute(block, inputs, trace=cache.access)
        np.testing.assert_array_equal(plain["C"], traced["C"])
