"""Multi-process SPMD backend: cross-validation against the in-process
lock-step driver.

The acceptance bar is **bit-for-bit** equality -- same result arrays,
same traffic counters, same fault-recovery behaviour -- because the
process backend replays the exact message ordering of the in-process
driver (see :mod:`repro.runtime.process`).
"""

import numpy as np
import pytest

from repro.chem.workloads import ccsd_doubles_program, fig1_formula_sequence
from repro.engine.executor import random_inputs, run_statements
from repro.expr.parser import parse_program
from repro.parallel.grid import ProcessorGrid
from repro.parallel.program_plan import plan_sequence
from repro.parallel.spmd import run_spmd, run_spmd_sequence
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.errors import CommFailure
from repro.robustness.faults import FaultSchedule
from repro.runtime.process import (
    SpmdProcessPool,
    run_spmd_process,
    run_spmd_sequence_process,
)

MATMUL = """
range N = 6;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


def matmul_plan():
    res = synthesize(MATMUL, SynthesisConfig(grid=ProcessorGrid((2, 2))))
    inputs = random_inputs(res.program, None, seed=0)
    return res.partition_plans["C"], inputs, res


def assert_comm_equal(a, b):
    assert a.sent_elements == b.sent_elements
    assert a.received_elements == b.received_elements
    assert a.messages == b.messages
    assert a.dropped == b.dropped
    assert a.retries == b.retries
    assert a.total_traffic == b.total_traffic


class TestBitForBit:
    def test_matmul_matches_local_driver(self):
        plan, inputs, _ = matmul_plan()
        local = run_spmd(plan, inputs)
        proc = run_spmd_process(plan, inputs)
        np.testing.assert_array_equal(local.result, proc.result)
        assert local.supersteps == proc.supersteps
        assert_comm_equal(local.comm, proc.comm)

    def test_fewer_workers_than_ranks(self):
        """Round-robin rank assignment must not change results or
        traffic (1 and 3 workers for a 4-rank grid)."""
        plan, inputs, _ = matmul_plan()
        local = run_spmd(plan, inputs)
        for procs in (1, 3):
            proc = run_spmd_process(plan, inputs, procs=procs)
            np.testing.assert_array_equal(local.result, proc.result)
            assert_comm_equal(local.comm, proc.comm)

    def test_fig1_sequence_matches_local_driver(self):
        prog = fig1_formula_sequence(V=4, O=2)
        grid = ProcessorGrid((2,))
        seq = plan_sequence(prog.statements, grid)
        inputs = random_inputs(prog, seed=1)
        local = run_spmd_sequence(prog.statements, seq, inputs)
        proc = run_spmd_sequence_process(prog.statements, seq, inputs)
        for name in local.arrays:
            np.testing.assert_array_equal(
                local.arrays[name], proc.arrays[name], err_msg=name
            )
        assert local.total_traffic == proc.total_traffic
        assert local.total_supersteps == proc.total_supersteps

    def test_ccsd_doubles_run_parallel_matches_local(self):
        prog = ccsd_doubles_program(V=4, O=3)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        inputs = random_inputs(prog, seed=2)
        local = res.run_parallel(dict(inputs), backend="local")
        proc = res.run_parallel(dict(inputs), backend="process", procs=2)
        for name in local:
            np.testing.assert_array_equal(
                local[name], proc[name], err_msg=name
            )
        want = run_statements(prog.statements, inputs)
        np.testing.assert_allclose(proc["R"], want["R"], rtol=1e-8)


class TestFaultParity:
    def test_message_drops_recovered_identically(self):
        plan, inputs, _ = matmul_plan()
        faults = FaultSchedule(drop_messages=(0, 3), drop_attempts=2)
        local = run_spmd(plan, inputs, faults=faults)
        proc = run_spmd_process(plan, inputs, faults=faults)
        np.testing.assert_array_equal(local.result, proc.result)
        assert proc.comm.dropped == 4
        assert proc.comm.retries == 4
        assert_comm_equal(local.comm, proc.comm)

    def test_rank_crash_restarts_statement(self):
        plan, inputs, _ = matmul_plan()
        local = run_spmd(
            plan, inputs, faults=FaultSchedule(crash_supersteps={2})
        )
        proc = run_spmd_process(
            plan, inputs, faults=FaultSchedule(crash_supersteps={2})
        )
        assert local.restarts == proc.restarts == 1
        np.testing.assert_array_equal(local.result, proc.result)
        assert_comm_equal(local.comm, proc.comm)

    def test_drops_and_crash_together(self):
        plan, inputs, _ = matmul_plan()
        faults = FaultSchedule(drop_messages=(1,), crash_supersteps=(1, 3))
        local = run_spmd(plan, inputs, faults=faults)
        proc = run_spmd_process(plan, inputs, faults=faults)
        assert local.restarts == proc.restarts == 2
        np.testing.assert_array_equal(local.result, proc.result)
        assert_comm_equal(local.comm, proc.comm)

    def test_restart_budget_exhaustion_raises(self):
        plan, inputs, _ = matmul_plan()
        with pytest.raises(CommFailure, match="restarts"):
            run_spmd_process(
                plan,
                inputs,
                faults=FaultSchedule(crash_supersteps={0, 1, 2, 3}),
                max_restarts=2,
            )


class TestPool:
    def test_pool_reused_across_statements(self):
        """One pool serves a whole sequence and repeated runs."""
        plan, inputs, _ = matmul_plan()
        local = run_spmd(plan, inputs)
        with SpmdProcessPool(2) as pool:
            first = run_spmd_process(plan, inputs, pool=pool)
            second = run_spmd_process(plan, inputs, pool=pool)
            np.testing.assert_array_equal(local.result, first.result)
            np.testing.assert_array_equal(local.result, second.result)

    def test_pool_requires_positive_worker_count(self):
        with pytest.raises(ValueError):
            SpmdProcessPool(0)

    def test_worker_failure_surfaces_as_comm_failure(self):
        """A worker-side exception (missing input) must not hang the
        router; it becomes a CommFailure carrying the traceback."""
        plan, inputs, _ = matmul_plan()
        bad = {k: v for k, v in inputs.items() if k != "B"}
        with pytest.raises(CommFailure, match="worker failed"):
            run_spmd_process(plan, bad)

    def test_unknown_backend_rejected(self):
        prog = parse_program(MATMUL)
        grid = ProcessorGrid((2, 2))
        seq = plan_sequence(prog.statements, grid)
        inputs = random_inputs(prog, seed=0)
        with pytest.raises(ValueError, match="backend"):
            run_spmd_sequence(prog.statements, seq, inputs, backend="mpi")
