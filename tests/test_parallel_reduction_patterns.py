"""Tests for linear vs tree reduction patterns (model and simulator)."""

import numpy as np
import pytest

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel, reduction_comm_elements
from repro.parallel.dist import Distribution
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator

N = IndexRange("N", 16)
J, K = Index("j", N), Index("k", N)


class TestModel:
    def test_tree_cheaper_for_large_p(self):
        grid = ProcessorGrid((8,))
        dist = Distribution((K,))
        linear = reduction_comm_elements((J,), dist, K, grid, pattern="linear")
        tree = reduction_comm_elements((J,), dist, K, grid, pattern="tree")
        assert linear == 7 * 16
        assert tree == 3 * 16  # ceil(log2 8) = 3 rounds
        assert tree < linear

    def test_equal_for_two_processors(self):
        grid = ProcessorGrid((2,))
        dist = Distribution((K,))
        linear = reduction_comm_elements((J,), dist, K, grid, pattern="linear")
        tree = reduction_comm_elements((J,), dist, K, grid, pattern="tree")
        assert linear == tree == 16

    def test_bad_pattern_name_rejected(self):
        with pytest.raises(ValueError, match="reduction"):
            CommModel(reduction="star")


def matmul(n=8):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


class TestSimulator:
    @pytest.mark.parametrize("pattern", ["linear", "tree"])
    def test_numerics_identical(self, pattern):
        tree, stmt, prog = matmul()
        grid = ProcessorGrid((8,))
        model = CommModel(reduction=pattern)
        plan = optimize_distribution(tree, grid, model)
        arrays = random_inputs(prog, seed=0)
        want = evaluate_expression(stmt.expr, arrays)
        got, _ = GridSimulator(grid).run(plan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_tree_reduces_max_receive(self):
        """Pin a plan that reduces over a distributed index on 8 ranks
        and compare measured per-event maxima."""
        tree, stmt, prog = matmul()
        grid = ProcessorGrid((8,))
        arrays = random_inputs(prog, seed=1)
        from repro.parallel.dist import Distribution, SINGLE

        i = next(x for x in tree.indices if x.name == "i")
        alpha = Distribution((i,))
        results = {}
        for pattern in ("linear", "tree"):
            model = CommModel(reduction=pattern)
            plan = optimize_distribution(tree, grid, model, result_dist=alpha)
            got, report = GridSimulator(grid).run(plan, arrays)
            reduce_events = [
                (label, total, mx)
                for label, total, mx in report.node_comm
                if label.startswith("reduce")
            ]
            results[pattern] = reduce_events
        # if the chosen gammas both reduce over a distributed k, the tree
        # pattern's per-event max receive must not exceed the linear one
        if results["linear"] and results["tree"]:
            lin_max = max(mx for _, _, mx in results["linear"])
            tree_max = max(mx for _, _, mx in results["tree"])
            assert tree_max <= lin_max

    def test_model_matches_measured_tree_max(self):
        """For a pinned gamma reducing over k on 8 ranks, the measured
        per-event max equals the tree model's prediction."""
        from repro.parallel.commcost import reduction_result_dist

        grid = ProcessorGrid((8,))
        n = 8
        prog = parse_program(f"""
        range N = {n};
        index j, k : N;
        tensor A(k, j);
        S(j) = sum(k) A(k, j);
        """)
        stmt = prog.statements[0]
        ptree = expression_to_ptree(stmt.expr)
        model = CommModel(reduction="tree")
        plan = optimize_distribution(ptree, grid, model)
        gamma = plan.gamma[id(ptree)]
        k = next(x for x in stmt.expr.indices if x.name == "k")
        arrays = random_inputs(prog, seed=2)
        got, report = GridSimulator(grid).run(plan, arrays)
        want = evaluate_expression(stmt.expr, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)
        if gamma.position_of(k) is not None:
            predicted = reduction_comm_elements(
                tuple(ptree.indices), gamma, k, grid, pattern="tree"
            )
            measured = max(
                mx
                for label, _, mx in report.node_comm
                if label.startswith("reduce")
            )
            assert measured == predicted
