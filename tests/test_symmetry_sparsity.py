"""Tests for symmetry-aware storage and sparsity-aware cost estimates --
the declaration information the paper's high-level language carries
"that would be difficult or impossible to extract out of low-level
code"."""

import pytest

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.expr.tensor import Symmetry, Tensor
from repro.opmin.cost import statement_op_count


V = IndexRange("V", 10)
IDX = {n: Index(n, V) for n in "abcd"}


class TestSymmetricStorage:
    def test_symmetric_pair_stores_triangle(self):
        t = Tensor("T", (IDX["a"], IDX["b"]), (Symmetry((0, 1)),))
        assert t.stored_size() == 10 * 11 // 2
        assert t.size() == 100  # dense iteration space unchanged

    def test_antisymmetric_pair_stores_strict_triangle(self):
        t = Tensor(
            "T", (IDX["a"], IDX["b"]), (Symmetry((0, 1), antisymmetric=True),)
        )
        assert t.stored_size() == 10 * 9 // 2

    def test_four_index_symmetric_group(self):
        t = Tensor(
            "T",
            tuple(IDX[n] for n in "abcd"),
            (Symmetry((0, 1, 2, 3)),),
        )
        from math import comb

        assert t.stored_size() == comb(13, 4)

    def test_two_independent_pairs(self):
        t = Tensor(
            "T",
            tuple(IDX[n] for n in "abcd"),
            (Symmetry((0, 1)), Symmetry((2, 3))),
        )
        assert t.stored_size() == (55) * (55)

    def test_mixed_grouped_and_plain(self):
        t = Tensor(
            "T", (IDX["a"], IDX["b"], IDX["c"]), (Symmetry((0, 1)),)
        )
        assert t.stored_size() == 55 * 10

    def test_bindings_respected(self):
        t = Tensor("T", (IDX["a"], IDX["b"]), (Symmetry((0, 1)),))
        assert t.stored_size({"V": 4}) == 10

    def test_symmetry_with_fill(self):
        t = Tensor(
            "T",
            (IDX["a"], IDX["b"]),
            (Symmetry((0, 1)),),
            sparsity="sparse",
            fill=0.5,
        )
        assert t.stored_size() == 27  # int(55 * 0.5)


class TestSparseCost:
    def setup_method(self):
        self.prog = parse_program("""
        range N = 10;
        index a, b, c : N;
        tensor A(a, b) sparse(0.1);
        tensor B(b, c);
        C(a, c) = sum(b) A(a, b) * B(b, c);
        """)

    def test_dense_count_unchanged_by_default(self):
        assert statement_op_count(self.prog.statements[0]) == 2 * 1000

    def test_sparse_aware_scales_by_fill(self):
        got = statement_op_count(self.prog.statements[0], sparse_aware=True)
        assert got == 2 * 100  # 10% of the dense iterations

    def test_two_sparse_factors_multiply(self):
        prog = parse_program("""
        range N = 10;
        index a, b, c : N;
        tensor A(a, b) sparse(0.5);
        tensor B(b, c) sparse(0.5);
        C(a, c) = sum(b) A(a, b) * B(b, c);
        """)
        got = statement_op_count(prog.statements[0], sparse_aware=True)
        assert got == 2 * 250

    def test_dense_tensors_unaffected(self):
        prog = parse_program("""
        range N = 6; index a, b : N;
        tensor A(a, b);
        S(a) = sum(b) A(a, b);
        """)
        dense = statement_op_count(prog.statements[0])
        aware = statement_op_count(prog.statements[0], sparse_aware=True)
        assert dense == aware
