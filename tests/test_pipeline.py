"""End-to-end pipeline tests (paper Fig. 5)."""

import numpy as np
import pytest

from repro import (
    CommModel,
    MachineModel,
    MemoryLevel,
    ProcessorGrid,
    SynthesisConfig,
    synthesize,
)
from repro.engine.counters import Counters
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.expr.parser import parse_program
from repro.chem.a3a import a3a_problem
from repro.chem.workloads import ccsd_like_program, fig1_program

FIG1_SRC = """
range V = 6;
range O = 3;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


@pytest.fixture(scope="module")
def fig1_result():
    return synthesize(FIG1_SRC)


class TestSynthesizeFig1:
    def test_all_stages_reported(self, fig1_result):
        names = [r.name for r in fig1_result.reports]
        assert names == [
            "Algebraic transformations",
            "Memory minimization",
            "Space-time transformation",
            "Data locality optimization",
            "Data distribution and partitioning",
            "Code generation",
        ]

    def test_operation_reduction(self, fig1_result):
        report = fig1_result.reports[0]
        direct = report.details["direct operation count"]
        optimized = report.details["optimized operation count"]
        assert direct == 4 * 6**6 * 3**4  # 4 * V^6 O^4 mixed ranges
        assert optimized < direct

    def test_memory_minimization_applied(self, fig1_result):
        report = fig1_result.reports[1]
        assert report.details["fused temporary memory"] < report.details[
            "unfused temporary memory"
        ]

    def test_executes_correctly(self, fig1_result):
        prog = fig1_result.program
        arrays = random_inputs(prog, seed=21)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        env = fig1_result.execute(arrays)
        np.testing.assert_allclose(env["S"], want, rtol=1e-9)

    def test_compiled_kernel_matches_interpreter(self, fig1_result):
        prog = fig1_result.program
        arrays = random_inputs(prog, seed=22)
        interp_env = fig1_result.execute(arrays)
        kernel = fig1_result.compile()
        compiled_env = kernel(arrays)
        np.testing.assert_allclose(
            compiled_env["S"], interp_env["S"], rtol=1e-12
        )

    def test_source_generated(self, fig1_result):
        assert fig1_result.source.startswith("def kernel(")
        assert "for " in fig1_result.source

    def test_describe_is_text(self, fig1_result):
        text = fig1_result.describe()
        assert "Algebraic transformations" in text
        assert "Code generation" in text


class TestSpaceTimeTrigger:
    def test_tight_memory_invokes_spacetime(self):
        problem = a3a_problem(V=4, O=2, Ci=50)
        machine = MachineModel(
            cache=MemoryLevel("cache", 16, 8.0),
            memory=MemoryLevel("memory", 64, 512.0),  # < 2+2*V^3*O = 258
        )
        config = SynthesisConfig(machine=machine, optimize_cache=False)
        result = synthesize(problem.program, config)
        st = next(
            r for r in result.reports if r.name == "Space-time transformation"
        )
        assert st.details["invoked"] == "yes"
        # still executes correctly
        inputs = random_inputs(problem.program, seed=1)
        want = run_statements(
            problem.statements, inputs, functions=problem.functions
        )["E"]
        env = result.execute(inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(float(want), rel=1e-9)

    def test_loose_memory_skips_spacetime(self):
        problem = a3a_problem(V=4, O=2, Ci=50)
        config = SynthesisConfig(optimize_cache=False)
        result = synthesize(problem.program, config)
        st = next(
            r for r in result.reports if r.name == "Space-time transformation"
        )
        assert "no" in str(st.details["invoked"])

    def test_impossible_budget_raises(self):
        problem = a3a_problem(V=4, O=2, Ci=50)
        machine = MachineModel(
            cache=MemoryLevel("cache", 2, 8.0),
            memory=MemoryLevel("memory", 2, 512.0),
        )
        config = SynthesisConfig(machine=machine, optimize_cache=False)
        with pytest.raises(ValueError):
            synthesize(problem.program, config)


class TestParallelStage:
    def test_grid_produces_plans(self):
        config = SynthesisConfig(
            grid=ProcessorGrid((2, 2)),
            comm=CommModel(),
            optimize_cache=False,
        )
        result = synthesize(FIG1_SRC, config)
        assert result.partition_plans
        report = next(
            r
            for r in result.reports
            if r.name == "Data distribution and partitioning"
        )
        assert report.details["processors"] == 4
        assert report.details["total modeled cost"] > 0

    def test_multiterm_program(self):
        prog = ccsd_like_program(V=5, O=3)
        config = SynthesisConfig(
            grid=ProcessorGrid((2,)), optimize_cache=False
        )
        result = synthesize(prog, config)
        arrays = random_inputs(prog, seed=9)
        want = run_statements(prog.statements, arrays)["R"]
        env = result.execute(arrays)
        np.testing.assert_allclose(env["R"], want, rtol=1e-9)
        # the final multi-term combine is noted, not planned
        report = next(
            r
            for r in result.reports
            if r.name == "Data distribution and partitioning"
        )
        assert any("multi-term" in n for n in report.notes)


class TestLocalityStage:
    def test_cache_blocking_reported(self):
        machine = MachineModel(
            cache=MemoryLevel("cache", 32, 8.0),
        )
        config = SynthesisConfig(machine=machine)
        result = synthesize(FIG1_SRC, config)
        report = next(
            r
            for r in result.reports
            if r.name == "Data locality optimization"
        )
        assert report.details["optimized modeled misses"] <= report.details[
            "baseline modeled misses"
        ]

    def test_locality_preserves_numerics(self):
        machine = MachineModel(cache=MemoryLevel("cache", 32, 8.0))
        result = synthesize(FIG1_SRC, SynthesisConfig(machine=machine))
        prog = result.program
        arrays = random_inputs(prog, seed=30)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        env = result.execute(arrays)
        np.testing.assert_allclose(env["S"], want, rtol=1e-9)


class TestCounters:
    def test_execution_counters_match_codegen_report(self, fig1_result):
        prog = fig1_result.program
        arrays = random_inputs(prog, seed=2)
        counters = Counters()
        fig1_result.execute(arrays, counters=counters)
        codegen = next(
            r for r in fig1_result.reports if r.name == "Code generation"
        )
        assert counters.total_ops == codegen.details["operation count"]


class TestRunParallelNotes:
    """Statements that cannot run distributed are reported, not silent."""

    def test_mixed_sequence_notes_local_statements(self):
        from repro.chem.workloads import ccsd_like_program
        from repro.engine.executor import random_inputs, run_statements

        prog = ccsd_like_program(V=4, O=2)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        # the residual R is a multi-term combine: planned data-local
        assert "R" not in res.partition_plans
        assert res.partition_plans  # ...but the chain contractions ran SPMD
        inputs = random_inputs(prog, seed=0)
        out = res.run_parallel(inputs)
        assert any(
            note.startswith("R: executed locally") for note in res.last_run_notes
        )
        assert "multi-term combine" in " ".join(res.last_run_notes)
        want = run_statements(prog.statements, inputs)
        np.testing.assert_allclose(out["R"], want["R"], rtol=1e-8)

    def test_fully_planned_sequence_has_no_notes(self):
        from repro.engine.executor import random_inputs

        prog = parse_program("""
        range N = 4;
        index i, j, k : N;
        tensor A(i, k); tensor B(k, j);
        C(i, j) = sum(k) A(i, k) * B(k, j);
        """)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        res.run_parallel(random_inputs(prog, seed=0))
        assert res.last_run_notes == []

    def test_unknown_backend_rejected(self):
        from repro.engine.executor import random_inputs

        prog = parse_program("""
        range N = 4;
        index i, j, k : N;
        tensor A(i, k); tensor B(k, j);
        C(i, j) = sum(k) A(i, k) * B(k, j);
        """)
        res = synthesize(prog, SynthesisConfig(grid=ProcessorGrid((2,))))
        with pytest.raises(ValueError, match="backend"):
            res.run_parallel(random_inputs(prog, seed=0), backend="mpi")
