"""End-to-end property tests: every transformation must preserve
semantics on randomized workloads.

These are the repository's strongest correctness guarantees: a random
contraction program is pushed through operation minimization, fusion,
tiling, the full pipeline, and the distribution planner, and every
variant's output is compared element-wise against the reference einsum
evaluation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SynthesisConfig, synthesize
from repro.chem.workloads import random_contraction_program
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.codegen.builder import apply_tiling, build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import Alloc, loop_op_count, walk
from repro.codegen.pygen import compile_loops
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_forest
from repro.opmin.multi_term import optimize_statement
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.program_plan import plan_sequence
from repro.parallel.simulate import GridSimulator


def reference(prog, arrays):
    stmt = prog.statements[0]
    return evaluate_expression(stmt.expr, arrays), stmt


def sorted_result(env, stmt):
    """Result array with axes in sorted-index order (the reference's)."""
    value = env[stmt.result.name]
    order = tuple(
        stmt.result.indices.index(i) for i in sorted(stmt.result.indices)
    )
    return np.transpose(value, order) if order else value


@pytest.mark.parametrize("seed", range(15))
def test_opmin_plus_fusion_preserves_semantics(seed):
    prog = random_contraction_program(seed, n_tensors=4, n_indices=6)
    arrays = random_inputs(prog, seed=seed)
    want, stmt = reference(prog, arrays)

    seq = optimize_statement(stmt)
    forest = build_forest(seq)
    blocks = []
    for root in forest:
        blocks.extend(build_fused(minimize_memory(root)))
    env = execute(tuple(blocks), arrays)
    np.testing.assert_allclose(sorted_result(env, stmt), want, rtol=1e-8)


@pytest.mark.parametrize("seed", range(10))
def test_random_tiling_preserves_semantics(seed):
    """Tile a random subset of indices of the unfused structure (all
    arrays kept global); results must be identical, including uneven
    block sizes."""
    import random

    prog = random_contraction_program(seed + 100, n_tensors=3, n_indices=5)
    arrays = random_inputs(prog, seed=seed)
    want, stmt = reference(prog, arrays)
    seq = optimize_statement(stmt)
    block = build_unfused(seq)
    keep = [a.array for a in walk(block) if isinstance(a, Alloc)]

    rng = random.Random(seed)
    all_indices = sorted(
        set(stmt.expr.free)
        | {i for t in [stmt] for s in seq for i in s.expr.free}
    )
    candidates = sorted({i for s in seq for i in s.expr.free})
    if not candidates:
        return
    chosen = rng.sample(candidates, min(2, len(candidates)))
    tiles = {i: rng.choice([2, 3]) for i in chosen}
    try:
        tiled = apply_tiling(block, tiles, keep_global=keep)
    except ValueError:
        return  # would double-count: correctly rejected
    # semantics preserved even when the hoisted tile loops redundantly
    # re-execute idempotent statements; and the static op count agrees
    # exactly with what the interpreter measures (guards included)
    from repro.engine.counters import Counters

    counters = Counters()
    env = execute(tiled, arrays, counters=counters)
    assert counters.total_ops == loop_op_count(tiled)
    np.testing.assert_allclose(sorted_result(env, stmt), want, rtol=1e-8)


@pytest.mark.parametrize("seed", range(8))
def test_full_pipeline_on_random_programs(seed):
    prog = random_contraction_program(seed + 200, n_tensors=4, n_indices=5)
    arrays = random_inputs(prog, seed=seed)
    want, stmt = reference(prog, arrays)
    result = synthesize(prog, SynthesisConfig(optimize_cache=(seed % 2 == 0)))
    env = result.execute(arrays)
    np.testing.assert_allclose(sorted_result(env, stmt), want, rtol=1e-8)
    # and through the generated-code path
    kernel = result.compile()
    env2 = kernel(arrays)
    np.testing.assert_allclose(
        sorted_result(env2, stmt), want, rtol=1e-8
    )


@pytest.mark.parametrize("seed", range(6))
def test_distribution_plans_on_random_programs(seed):
    prog = random_contraction_program(seed + 300, n_tensors=3, n_indices=4)
    arrays = random_inputs(prog, seed=seed)
    want, stmt = reference(prog, arrays)
    seq = optimize_statement(stmt)
    grid = ProcessorGrid((2, 2))
    plan = plan_sequence(seq, grid)
    sim = GridSimulator(grid)
    env = dict(arrays)
    for name, pplan in plan.plans:
        got, _ = sim.run(pplan, env)
        target = next(s for s in seq if s.result.name == name)
        order = tuple(
            sorted(target.result.indices).index(i)
            for i in target.result.indices
        )
        env[name] = np.transpose(got, order) if order else got
    final = sorted_result(env, seq[-1]) if seq[-1].result.name in env else None
    if final is not None:
        np.testing.assert_allclose(final, want, rtol=1e-8)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_interpreter_equals_generated_code(seed):
    """interp.execute and pygen.compile_loops are two independent
    consumers of the IR; they must agree exactly."""
    prog = random_contraction_program(seed, n_tensors=3, n_indices=5)
    arrays = random_inputs(prog, seed=seed)
    stmt = prog.statements[0]
    seq = optimize_statement(stmt)
    block = build_unfused(seq)
    interp_env = execute(block, arrays)
    kernel = compile_loops(block)
    compiled_env = kernel(arrays)
    for name in interp_env:
        np.testing.assert_allclose(
            compiled_env[name], interp_env[name], rtol=1e-12
        )
