"""Tests for whole-sequence distribution planning."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.opmin.multi_term import optimize_program, optimize_statement
from repro.parallel.commcost import CommModel
from repro.parallel.grid import ProcessorGrid
from repro.parallel.program_plan import (
    inline_sequence,
    plan_sequence,
)
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.expr.canonical import canonical_key

CHAIN_SRC = """
range N = 6;
index i, j, k, l : N;
tensor A(i, k); tensor B(k, l); tensor C(l, j);
D(i, j) = sum(k, l) A(i, k) * B(k, l) * C(l, j);
"""


@pytest.fixture
def chain_seq():
    prog = parse_program(CHAIN_SRC)
    return prog, optimize_statement(prog.statements[0])


class TestInlineSequence:
    def test_inlined_expression_equals_original(self, chain_seq):
        """Inlining the formula sequence recovers an expression
        canonically equal to the original statement."""
        prog, seq = chain_seq
        whole = inline_sequence(seq)
        assert canonical_key(whole) == canonical_key(prog.statements[0].expr)

    def test_inlined_numerics(self, chain_seq):
        prog, seq = chain_seq
        whole = inline_sequence(seq)
        arrays = random_inputs(prog, seed=3)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        got = evaluate_expression(whole, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_shared_temp_rejected(self):
        src = """
        range N = 4;
        index a, b, c : N;
        tensor A(a, b);
        X(a, b) = A(a, b);
        S(a) = sum(b, c) X(a, b) * X(b, c);
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="several consumers"):
            inline_sequence(prog.statements)

    def test_accumulate_rejected(self):
        src = """
        range N = 4; index a : N; tensor A(a);
        S(a) += A(a);
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="accumulating"):
            inline_sequence(prog.statements)

    def test_renamed_temp_reference(self):
        """A temp referenced with renamed indices inlines correctly."""
        src = """
        range N = 5;
        index a, b, c : N;
        tensor A(a, b);
        T(a, b) = A(a, b);
        S(a, c) = T(c, a);
        """
        prog = parse_program(src)
        whole = inline_sequence(prog.statements)
        arrays = random_inputs(prog, seed=4)
        env = run_statements(prog.statements, arrays)
        got = evaluate_expression(whole, arrays)
        # run_statements stores S with axes (a, c); evaluate returns
        # sorted-free order (a, c) as well
        np.testing.assert_allclose(got, env["S"], rtol=1e-12)


class TestPlanSequence:
    def test_tree_sequence_planned_in_one_dp(self, chain_seq):
        prog, seq = chain_seq
        grid = ProcessorGrid((2,))
        plan = plan_sequence(seq, grid)
        assert len(plan.plans) == 1
        assert plan.plans[0][0] == "D"

    def test_whole_tree_plan_at_most_statementwise(self, chain_seq):
        """Planning the full tree can exploit distribution reuse that
        statement-at-a-time planning pays for."""
        from repro.parallel.program_plan import _plan_statementwise

        prog, seq = chain_seq
        grid = ProcessorGrid((2, 2))
        model = CommModel()
        whole = plan_sequence(seq, grid, model)
        piecewise = _plan_statementwise(seq, grid, model, None)
        assert whole.total_cost <= piecewise.total_cost

    def test_shared_temp_falls_back(self):
        src = """
        range N = 4;
        index a, b, c : N;
        tensor A(a, b);
        X(a, b) = A(a, b);
        S(a) = sum(b, c) X(a, b) * X(b, c);
        """
        prog = parse_program(src)
        grid = ProcessorGrid((2,))
        plan = plan_sequence(prog.statements, grid)
        assert len(plan.plans) == 2

    def test_fallback_charges_pinned_leaf_moves(self):
        """In statement-wise planning the produced distribution of a
        temp is charged when the consumer wants it elsewhere."""
        src = """
        range N = 8;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c);
        X(a, b) = A(a, b);
        Y(a, b) = X(a, b);
        S(a) = sum(b, c) Y(a, b) * X(b, c) * B(b, c);
        """
        prog = parse_program(src)
        grid = ProcessorGrid((4,))
        plan = plan_sequence(prog.statements, grid, CommModel(comm_cost=100))
        assert plan.total_cost >= 0
        assert "X" in plan.produced_dist

    def test_describe(self, chain_seq):
        prog, seq = chain_seq
        plan = plan_sequence(seq, ProcessorGrid((2,)))
        text = plan.describe()
        assert "total modeled cost" in text
        assert "D" in text

    def test_sequence_plan_simulates_correctly(self, chain_seq):
        prog, seq = chain_seq
        grid = ProcessorGrid((2, 2))
        plan = plan_sequence(seq, grid)
        arrays = random_inputs(prog, seed=6)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        name, pplan = plan.plans[0]
        got, report = GridSimulator(grid).run(pplan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)


class TestMultiTermFallback:
    def test_add_statement_handled(self):
        src = """
        range N = 5;
        index a, b : N;
        tensor A(a, b); tensor B(a, b);
        S(a) = sum(b) A(a, b) * A(a, b) + sum(b) B(a, b) * B(a, b);
        """
        prog = parse_program(src)
        seq = optimize_program(prog)
        grid = ProcessorGrid((2,))
        plan = plan_sequence(seq, grid)
        # the two term temporaries get plans; the Add combine does not
        planned = {name for name, _ in plan.plans}
        assert len(planned) >= 2
        assert "S" not in planned
