"""Tests for the empirical autotuning subsystem (repro.autotune).

The acceptance properties the subsystem guarantees:

* **determinism** -- two tuning runs with the same seed, fake clock,
  and machine signature produce byte-identical TuningDB files;
* **signature discipline** -- a stored record is never applied under a
  different machine signature or configuration fingerprint;
* **warm hits measure nothing** -- a TuningDB hit re-applies the stored
  decisions with zero measurement runs;
* **budget degradation** -- an exhausted budget degrades to the
  analytical choice with ``degraded=True``, never an exception (even
  under strict budgets).
"""

import json
import os

import numpy as np
import pytest

from repro import AutotuneOptions, SynthesisConfig, TuningDB, synthesize
from repro.autotune.db import machine_signature, tuning_key
from repro.autotune.measure import Measurement, Measurer, median
from repro.engine.executor import random_inputs, run_statements
from repro.engine.machine import MachineModel, MemoryLevel
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded

MATMUL = """
range N = 10;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


def tiny_cache_config(**kwargs):
    """A machine whose cache pressure makes the tile search tile."""
    machine = MachineModel(
        cache=MemoryLevel("cache", 64, 8.0),
        memory=MemoryLevel("memory", 1 << 24, 512.0),
        disk=MemoryLevel("disk", 1 << 31, 100_000.0),
    )
    return SynthesisConfig(machine=machine, **kwargs)


class FakeClock:
    """Deterministic perf_counter_ns stand-in: each call advances by a
    fixed step, so every measured span is identical and the winner is
    decided by stable tie-breaking -- reproducible across runs."""

    def __init__(self, step_ns: int = 1000):
        self.step = step_ns
        self.now = 0

    def __call__(self) -> int:
        self.now += self.step
        return self.now


class TestMedianAndMeasurer:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_measure_counts_runs(self):
        m = Measurer(warmup=2, repeats=3, timer=FakeClock())
        calls = []
        result = m.measure("x", lambda: calls.append(1))
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert m.total_runs == 5
        assert result.runs == 5
        assert result.rejected == 0

    def test_outlier_rejection(self):
        # spans: 100, 100, 1000 -> median 100, 1000 > 3x100 rejected
        ticks = iter([0, 100, 200, 300, 400, 1400])
        m = Measurer(warmup=0, repeats=3, timer=lambda: next(ticks))
        result = m.measure("x", lambda: None)
        assert result.samples_ns == [100, 100, 1000]
        assert result.rejected == 1
        assert result.median_ns == 100.0

    def test_median_always_survives_rejection(self):
        ticks = iter([0, 1, 2, 1002, 2002, 5002])
        m = Measurer(warmup=0, repeats=3, timer=lambda: next(ticks))
        result = m.measure("x", lambda: None)
        assert result.median_ns > 0

    def test_budget_charged_per_run(self):
        tracker = Budget(max_nodes=3).start()
        m = Measurer(warmup=1, repeats=3, timer=FakeClock(), tracker=tracker)
        with pytest.raises(BudgetExceeded):
            m.measure("x", lambda: None)

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError):
            Measurer(warmup=-1)
        with pytest.raises(ValueError):
            Measurer(repeats=0)


class TestMachineSignature:
    def test_fields(self):
        sig = machine_signature()
        assert set(sig) == {
            "cpu_count", "cache_elements", "memory_elements", "numpy",
            "kernel_compiler",
        }
        assert sig["numpy"] == np.__version__
        assert sig["cpu_count"] >= 1
        from repro.kernels import compiler_fingerprint

        assert sig["kernel_compiler"] == compiler_fingerprint()

    def test_compiler_perturbation_misses(self):
        # a record measured under one compiler must not be replayed
        # under another (or under none): the fingerprint is in the key
        from repro.expr.parser import parse_program

        program = parse_program(MATMUL)
        config = tiny_cache_config()
        sig = machine_signature(config.machine)
        base = tuning_key(program, config, sig)
        perturbed = dict(sig, kernel_compiler="other-cc 9.9 [/usr/bin/cc]")
        assert tuning_key(program, config, perturbed) != base

    def test_tracks_machine_model(self):
        small = tiny_cache_config().machine
        assert machine_signature(small)["cache_elements"] == 64
        assert machine_signature()["cache_elements"] != 64

    def test_tuning_key_sensitivity(self):
        from repro.expr.parser import parse_program

        program = parse_program(MATMUL)
        config = tiny_cache_config()
        sig = machine_signature(config.machine)
        base = tuning_key(program, config, sig)
        assert base == tuning_key(program, config, dict(sig))
        perturbed = dict(sig, cpu_count=sig["cpu_count"] + 1)
        assert tuning_key(program, config, perturbed) != base
        other_cfg = tiny_cache_config(optimize_cache=False)
        assert tuning_key(program, other_cfg, sig) != base


class TestTuningDB:
    def _record(self, sig):
        from repro import __version__

        return {
            "version": __version__,
            "signature": sig,
            "decisions": {"kernel": "gemm"},
            "protocol": {"warmup": 1, "trials": 3, "top_k": 4, "seed": 0},
        }

    def test_memory_roundtrip(self):
        db = TuningDB()
        sig = machine_signature()
        db.put("k1", self._record(sig))
        record, tier = db.get("k1", signature=sig)
        assert tier == "memory"
        assert record["decisions"] == {"kernel": "gemm"}
        assert db.get("missing") is None
        assert db.hits == 1 and db.misses == 1

    def test_disk_roundtrip_and_promotion(self, tmp_path):
        sig = machine_signature()
        db1 = TuningDB(directory=str(tmp_path))
        db1.put("k1", self._record(sig))
        db2 = TuningDB(directory=str(tmp_path))
        record, tier = db2.get("k1", signature=sig)
        assert tier == "disk"
        _, tier2 = db2.get("k1", signature=sig)
        assert tier2 == "memory"  # promoted

    def test_never_applied_under_different_signature(self, tmp_path):
        """A record copied between machines must read as a miss."""
        sig = machine_signature()
        db = TuningDB(directory=str(tmp_path))
        db.put("k1", self._record(sig))
        perturbed = dict(sig, cpu_count=sig["cpu_count"] + 7)
        db2 = TuningDB(directory=str(tmp_path))
        assert db2.get("k1", signature=perturbed) is None
        assert db2.stale == 1
        # the stale file is dropped, so even the true signature misses now
        assert db2.get("k1", signature=sig) is None

    def test_version_mismatch_is_stale(self):
        sig = machine_signature()
        db = TuningDB()
        record = self._record(sig)
        record["version"] = "0.0.1"
        db.put("k1", record)
        assert db.get("k1", signature=sig) is None
        assert db.stale == 1

    def test_corrupt_disk_record_dropped(self, tmp_path):
        db = TuningDB(directory=str(tmp_path))
        path = os.path.join(str(tmp_path), "bad.tune.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert db.get("bad") is None
        assert not os.path.exists(path)

    def test_lru_eviction(self):
        sig = machine_signature()
        db = TuningDB(maxsize=2)
        for key in ("a", "b", "c"):
            db.put(key, self._record(sig))
        assert len(db) == 2
        assert db.evictions == 1
        assert db.get("a") is None  # oldest evicted

    def test_canonical_files_are_byte_identical(self, tmp_path):
        sig = machine_signature()
        d1, d2 = tmp_path / "one", tmp_path / "two"
        TuningDB(directory=str(d1)).put("k", self._record(sig))
        TuningDB(directory=str(d2)).put("k", self._record(sig))
        f1 = (d1 / "k" / "k.tune.json").read_bytes()
        assert f1 == (d2 / "k" / "k.tune.json").read_bytes()
        assert f1.endswith(b"\n")
        # canonical JSON: sorted keys survive a parse/re-dump roundtrip
        parsed = json.loads(f1)
        assert (
            json.dumps(parsed, sort_keys=True, indent=2) + "\n"
        ).encode() == f1

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            TuningDB(maxsize=0)


def tune(source=MATMUL, config=None, **options):
    config = config or tiny_cache_config()
    options.setdefault("trials", 3)
    options.setdefault("timer", FakeClock())
    return synthesize(source, config, autotune=AutotuneOptions(**options))


def autotune_report(result):
    return next(r for r in result.reports if r.name == "Autotuning")


class TestAutotuneStage:
    def test_decisions_recorded(self):
        result = tune()
        assert result.tuning is not None
        assert result.tuning.source == "measured"
        assert result.tuning.kernel_mode in ("gemm", "einsum", "native")
        report = autotune_report(result)
        assert report.details["measurement runs"] > 0
        assert "rank disagreements" in report.details

    def test_kernel_dimension_offers_native_when_available(self):
        from repro.autotune.candidates import KernelTuner
        from repro.kernels import native_available

        result = synthesize(MATMUL, tiny_cache_config())
        tuner = KernelTuner(result, None)
        labels = {c.label for c in tuner.candidates()}
        assert {"kernel gemm", "kernel einsum"} <= labels
        if native_available():
            assert "kernel native" in labels
            native = next(
                c for c in tuner.candidates() if c.payload == "native"
            )
            tuner.apply(native)
            assert result.codegen_mode == "native"
            assert result.kernel_plan.mode == "native"
        else:
            assert "kernel native" not in labels

    def test_tuned_result_is_still_correct(self):
        result = tune()
        inputs = random_inputs(result.program, result.config.bindings, seed=1)
        env = result.execute(inputs)
        want = run_statements(
            result.program.statements, inputs, result.config.bindings
        )
        assert np.allclose(env["C"], want["C"])

    def test_without_autotune_no_tuning(self):
        result = synthesize(MATMUL, tiny_cache_config())
        assert result.tuning is None
        assert all(r.name != "Autotuning" for r in result.reports)

    def test_function_tensors_skip_measurement(self):
        src = """
        range N = 4;
        index i, j, k : N;
        tensor A(i, k); function V(k, j) cost 10;
        C(i, j) = sum(k) A(i, k) * V(k, j);
        """
        result = tune(source=src)
        assert result.tuning.source == "analytical"
        assert autotune_report(result).details["measurement runs"] == 0

    def test_warm_hit_measures_nothing(self, tmp_path):
        db = TuningDB(directory=str(tmp_path))
        cold = tune(db=db)
        assert autotune_report(cold).details["measurement runs"] > 0
        warm = tune(db=db)
        report = autotune_report(warm)
        assert report.details["measurement runs"] == 0
        assert warm.tuning.source == "db:memory"
        assert warm.tuning.tiles == cold.tuning.tiles
        assert warm.tuning.kernel_mode == cold.tuning.kernel_mode

    def test_warm_hit_from_disk(self, tmp_path):
        tune(db=TuningDB(directory=str(tmp_path)))
        warm = tune(db=TuningDB(directory=str(tmp_path)))
        assert warm.tuning.source == "db:disk"
        assert autotune_report(warm).details["measurement runs"] == 0

    def test_warm_result_is_still_correct(self, tmp_path):
        db = TuningDB(directory=str(tmp_path))
        tune(db=db)
        warm = tune(db=db)
        inputs = random_inputs(warm.program, warm.config.bindings, seed=2)
        env = warm.execute(inputs)
        want = run_statements(
            warm.program.statements, inputs, warm.config.bindings
        )
        assert np.allclose(env["C"], want["C"])

    def test_determinism_byte_identical_db_files(self, tmp_path):
        """Two runs, same seed and fake clock: identical DB bytes."""
        d1, d2 = tmp_path / "one", tmp_path / "two"
        tune(db=TuningDB(directory=str(d1)), timer=FakeClock(), seed=0)
        tune(db=TuningDB(directory=str(d2)), timer=FakeClock(), seed=0)
        files1 = sorted(p.relative_to(d1) for p in d1.rglob("*.tune.json"))
        files2 = sorted(p.relative_to(d2) for p in d2.rglob("*.tune.json"))
        assert files1 == files2 and len(files1) == 1
        assert (d1 / files1[0]).read_bytes() == (d2 / files2[0]).read_bytes()

    def test_config_fingerprint_separates_entries(self, tmp_path):
        """Same program, different config: distinct TuningDB entries."""
        db = TuningDB(directory=str(tmp_path))
        tune(db=db, config=tiny_cache_config())
        tune(db=db, config=tiny_cache_config(optimize_cache=False))
        assert len(list(tmp_path.rglob("*.tune.json"))) == 2

    def test_exhausted_budget_degrades_not_raises(self):
        result = tune(budget=Budget(max_nodes=0))
        assert result.tuning.degraded is True
        assert result.tuning.tiles is None  # analytical choice stands
        report = autotune_report(result)
        assert report.details["degraded"] == "true"
        assert any("budget exhausted" in n for n in report.notes)

    def test_strict_budget_still_degrades(self):
        """Measurement is advisory: strict budgets must not raise."""
        result = tune(budget=Budget(max_nodes=0, strict=True))
        assert result.tuning.degraded is True

    def test_partial_budget_keeps_measured_dimensions(self):
        """Enough budget for the tile sweep but not the kernel sweep:
        the measured winner stays, the rest degrades."""
        full = autotune_report(tune()).details["measurement runs"]
        result = tune(budget=Budget(max_nodes=full - 1))
        report = autotune_report(result)
        assert result.tuning.degraded is True
        assert report.details["measurement runs"] < full
        assert int(report.details["dimensions measured"]) >= 1

    def test_degraded_run_not_stored(self, tmp_path):
        db = TuningDB(directory=str(tmp_path))
        tune(db=db, budget=Budget(max_nodes=0))
        assert list(tmp_path.rglob("*.tune.json")) == []

    def test_top_k_bounds_tile_candidates(self):
        r2 = autotune_report(tune(top_k=2))
        r4 = autotune_report(tune(top_k=4))
        tiles2 = [k for k in r2.details if k.startswith("tiles: ")]
        tiles4 = [k for k in r4.details if k.startswith("tiles: ")]
        assert len(tiles2) <= len(tiles4)


class TestGridTuning:
    def test_grid_dimension_measured(self):
        result = tune(
            config=tiny_cache_config(processors=4), measure_parallel=False
        )
        report = autotune_report(result)
        grid_rows = [k for k in report.details if k.startswith("grid: ")]
        assert grid_rows  # multiple shapes for 4 processors
        assert result.tuning.grid is not None
        plan = next(iter(result.partition_plans.values()))
        assert tuple(plan.grid.dims) == result.tuning.grid

    def test_grid_choice_still_validates(self):
        result = tune(config=tiny_cache_config(processors=4))
        inputs = random_inputs(result.program, result.config.bindings, seed=3)
        out = result.run_parallel(inputs, backend="local")
        want = run_statements(
            result.program.statements, inputs, result.config.bindings
        )
        assert np.allclose(out["C"], want["C"])

    def test_warm_hit_restores_grid(self, tmp_path):
        db = TuningDB(directory=str(tmp_path))
        cold = tune(config=tiny_cache_config(processors=4), db=db)
        warm = tune(config=tiny_cache_config(processors=4), db=db)
        assert warm.tuning.grid == cold.tuning.grid
        assert autotune_report(warm).details["measurement runs"] == 0


class TestTransportTuning:
    def test_transport_swept_when_opted_in(self):
        result = tune(
            source=MATMUL,
            config=tiny_cache_config(processors=2),
            measure_parallel=True,
            trials=1,
            warmup=0,
        )
        report = autotune_report(result)
        rows = [k for k in report.details if k.startswith("transport: ")]
        assert rows
        assert result.tuning.transport in ("shm", "pipe")
        assert result.tuning.procs >= 1

    def test_transport_skipped_by_default(self):
        result = tune(config=tiny_cache_config(processors=2))
        report = autotune_report(result)
        assert not any(
            k.startswith("transport: ") for k in report.details
        )
        assert result.tuning.transport is None


class TestRemainingMs:
    def test_no_deadline_is_none(self):
        assert Budget(max_nodes=5).start().remaining_ms() is None

    def test_deadline_counts_down(self):
        tracker = Budget(deadline_ms=10_000).start()
        remaining = tracker.remaining_ms()
        assert 0 < remaining <= 10_000
