"""Tests for liveness-aware statement scheduling."""

import itertools

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.schedule import peak_live_memory, schedule_statements


def prog_with_big_early_temp():
    """Two big temporaries whose live ranges needlessly overlap in
    declaration order: [T1, T2, R1, R2] holds both at once; the
    scheduler interleaves producer/consumer pairs."""
    return parse_program("""
    range B = 16;
    index p, q : B;
    tensor A(p, q); tensor C(p, q);
    T1(p, q) = A(p, q);
    T2(p, q) = C(p, q);
    R1() = sum(p, q) T1(p, q) * T1(p, q);
    R2() = sum(p, q) T2(p, q) * T2(p, q);
    """)


class TestPeakLiveMemory:
    def test_single_statement(self):
        prog = parse_program(
            "range N=4; index a:N; tensor A(a); S(a) = A(a);"
        )
        assert peak_live_memory(prog.statements) == 4

    def test_temp_freed_after_last_use(self):
        prog = parse_program("""
        range N = 4; index a, b : N;
        tensor A(a, b);
        T(a) = sum(b) A(a, b);
        S(a) = T(a);
        """)
        # T (4) live while S (4) is produced -> peak 8
        assert peak_live_memory(prog.statements) == 8

    def test_outputs_stay_live(self):
        prog = parse_program("""
        range N = 4; index a, b : N;
        tensor A(a, b);
        X(a) = sum(b) A(a, b);
        Y(a) = sum(b) A(a, b);
        """)
        assert peak_live_memory(prog.statements) == 8

    def test_bindings(self):
        prog = parse_program("""
        range N = 4; index a : N;
        tensor A(a);
        S(a) = A(a);
        """)
        assert peak_live_memory(prog.statements, {"N": 10}) == 10


class TestScheduleStatements:
    def test_never_worse(self):
        prog = prog_with_big_early_temp()
        result = schedule_statements(prog.statements)
        assert result.peak_live <= result.baseline_peak

    def test_interleaves_producer_consumer_pairs(self):
        prog = prog_with_big_early_temp()
        result = schedule_statements(prog.statements)
        # both big temps live at once (512+) vs one at a time (~258)
        assert result.baseline_peak >= 2 * 16 * 16
        assert result.peak_live < result.baseline_peak
        names = [s.result.name for s in result.statements]
        # each consumer directly follows its producer
        assert abs(names.index("R1") - names.index("T1")) == 1
        assert abs(names.index("R2") - names.index("T2")) == 1

    def test_exact_matches_exhaustive(self):
        prog = prog_with_big_early_temp()
        statements = list(prog.statements)
        result = schedule_statements(statements)
        assert result.exact

        # exhaustive over dependence-respecting permutations
        def valid(order):
            produced = set()
            for stmt in order:
                for ref in stmt.expr.refs():
                    name = ref.tensor.name
                    if any(s.result.name == name for s in statements):
                        if name not in produced:
                            return False
                produced.add(stmt.result.name)
            return True

        best = min(
            peak_live_memory(list(order))
            for order in itertools.permutations(statements)
            if valid(list(order))
        )
        assert result.peak_live == best

    def test_dependences_respected_and_numerics_equal(self):
        prog = prog_with_big_early_temp()
        result = schedule_statements(prog.statements)
        arrays = random_inputs(prog, seed=0)
        want = run_statements(prog.statements, arrays)
        got = run_statements(result.statements, arrays)
        for name in ("R1", "R2"):
            np.testing.assert_array_equal(got[name], want[name])

    def test_greedy_path(self):
        """More statements than the exact limit uses the heuristic and
        is still never worse."""
        lines = ["range N = 4;", "index a, b : N;", "tensor A(a, b);"]
        for k in range(12):
            lines.append(f"T{k}(a) = sum(b) A(a, b);")
            lines.append(f"U{k}(a) = T{k}(a);")
        prog = parse_program("\n".join(lines))
        result = schedule_statements(prog.statements)
        assert not result.exact
        assert result.peak_live <= result.baseline_peak

    def test_accumulate_ordering_preserved(self):
        prog = parse_program("""
        range N = 4; index a : N;
        tensor A(a); tensor B(a);
        S(a) = A(a);
        S(a) += B(a);
        """)
        result = schedule_statements(prog.statements)
        names = [
            (s.result.name, s.accumulate) for s in result.statements
        ]
        assert names.index(("S", False)) < names.index(("S", True))

    def test_optimized_sequence_schedulable(self, fig1_statement):
        from repro.opmin.multi_term import optimize_statement

        seq = optimize_statement(fig1_statement)
        result = schedule_statements(seq)
        assert result.peak_live <= result.baseline_peak


class TestScheduleProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_sequences_stay_valid(self, seed):
        """Scheduling any optimized random sequence preserves dependences
        (the reordered sequence still executes) and never raises the
        peak."""
        from repro.chem.workloads import random_contraction_program
        from repro.opmin.multi_term import optimize_statement

        prog = random_contraction_program(seed + 400, n_tensors=5)
        seq = optimize_statement(prog.statements[0])
        result = schedule_statements(seq)
        assert result.peak_live <= result.baseline_peak
        arrays = random_inputs(prog, seed=seed)
        want = run_statements(seq, arrays)
        got = run_statements(result.statements, arrays)
        name = prog.statements[0].result.name
        np.testing.assert_allclose(got[name], want[name], rtol=1e-10)

    def test_bindings_change_the_decision_consistently(self):
        """The schedule is binding-aware: peaks are measured in the
        bound sizes."""
        prog = prog_with_big_early_temp()
        small = schedule_statements(prog.statements, {"B": 2})
        big = schedule_statements(prog.statements, {"B": 64})
        assert small.peak_live <= small.baseline_peak
        assert big.peak_live <= big.baseline_peak
        assert big.peak_live > small.peak_live
