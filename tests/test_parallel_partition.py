"""Tests for the Section-7 DP and the grid simulator."""

import numpy as np
import pytest

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel
from repro.parallel.dist import Distribution, REPLICATED, SINGLE, no_replicate
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import PLeaf, PMul, PSum, expression_to_ptree
from repro.parallel.simulate import GridSimulator


def matmul_ptree(n=8):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


class TestPtree:
    def test_structure(self):
        tree, _, _ = matmul_ptree()
        assert isinstance(tree, PSum)
        assert isinstance(tree.child, PMul)
        assert tree.index.name == "k"
        names = [i.name for i in tree.indices]
        assert names == ["i", "j"]

    def test_internal_count(self):
        tree, _, _ = matmul_ptree()
        assert tree.internal_count() == 2

    def test_multi_sum_chain(self):
        prog = parse_program("""
        range N = 4;
        index a, b, c : N;
        tensor X(a, b, c);
        S(a) = sum(b, c) X(a, b, c);
        """)
        tree = expression_to_ptree(prog.statements[0].expr)
        assert isinstance(tree, PSum) and isinstance(tree.child, PSum)

    def test_add_rejected(self):
        prog = parse_program("""
        range N = 4;
        index a : N;
        tensor X(a); tensor Y(a);
        S(a) = X(a) + Y(a);
        """)
        with pytest.raises(TypeError):
            expression_to_ptree(prog.statements[0].expr)


class TestPartitionDP:
    def test_plan_exists_and_costs_positive(self):
        tree, _, _ = matmul_ptree()
        grid = ProcessorGrid((2, 2))
        plan = optimize_distribution(tree, grid)
        assert plan.total_cost >= 0
        assert id(tree) in plan.dist

    def test_single_processor_grid_has_zero_comm(self):
        tree, _, _ = matmul_ptree()
        grid = ProcessorGrid((1,))
        plan = optimize_distribution(tree, grid)
        # cost is pure computation: n^3 products + n^3 adds
        assert plan.total_cost == 8**3 + 8**3

    def test_parallel_beats_serial_on_compute(self):
        tree, _, _ = matmul_ptree()
        cheap_comm = CommModel(flop_cost=1.0, comm_cost=0.01)
        serial = optimize_distribution(tree, ProcessorGrid((1,)), cheap_comm)
        parallel = optimize_distribution(
            tree, ProcessorGrid((2, 2)), cheap_comm
        )
        assert parallel.total_cost < serial.total_cost

    def test_expensive_comm_prefers_no_redistribution(self):
        """With near-infinite communication cost the DP picks a plan
        with zero communication if one exists."""
        tree, _, _ = matmul_ptree()
        model = CommModel(flop_cost=1.0, comm_cost=1e12)
        plan = optimize_distribution(tree, ProcessorGrid((2,)), model)
        # zero-comm plans exist (e.g. replicate nothing, distribute i)
        assert plan.total_cost < 1e12

    def test_matches_exhaustive_on_tiny_tree(self):
        """DP cost equals brute-force enumeration over all distribution
        assignments on a two-node tree."""
        N = IndexRange("N", 4)
        a, b = Index("a", N), Index("b", N)
        from repro.expr.tensor import Tensor
        from repro.expr.ast import TensorRef

        A = TensorRef(Tensor("A", (a, b)), (a, b))
        B = TensorRef(Tensor("B", (a, b)), (a, b))
        tree = PSum(b, PMul(PLeaf(A), PLeaf(B)))
        grid = ProcessorGrid((2,))
        model = CommModel()
        plan = optimize_distribution(tree, grid, model)

        # brute force: enumerate leaf dists x mul gamma x sum option x root alpha
        from repro.parallel.dist import enumerate_distributions
        from repro.parallel.commcost import (
            calc_mul_elements,
            move_cost_elements,
            partial_sum_elements,
            reduction_comm_elements,
            reduction_result_dist,
        )

        mul = tree.child
        best = None
        for gamma in enumerate_distributions(mul.indices, grid):
            la = gamma.effective((a, b))
            c_leaves = 0.0
            for leaf_dist in (la,):
                pass
            # leaf cost: 0 if no_replicate else cheapest move from plain
            def leaf_cost(dist):
                if no_replicate(dist):
                    return 0.0
                plains = [
                    d
                    for d in enumerate_distributions((a, b), grid)
                    if no_replicate(d)
                ]
                return min(
                    model.comm_cost
                    * move_cost_elements((a, b), p, dist, grid)
                    for p in plains
                )

            base = (
                leaf_cost(gamma.effective((a, b))) * 2
                + model.flop_cost
                * calc_mul_elements(mul.indices, gamma, grid)
            )
            # summation over b
            partial = model.flop_cost * partial_sum_elements(
                mul.indices, gamma, grid
            )
            if gamma.position_of(b) is None:
                options = [(gamma, 0.0)]
            else:
                red = model.comm_cost * reduction_comm_elements(
                    (a,), gamma, b, grid
                )
                options = [
                    (reduction_result_dist(gamma, b, False), red),
                    (reduction_result_dist(gamma, b, True), red),
                ]
            for out_dist, red in options:
                for alpha in enumerate_distributions((a,), grid):
                    mv = (
                        0.0
                        if out_dist == alpha
                        else model.comm_cost
                        * move_cost_elements((a,), out_dist, alpha, grid)
                    )
                    total = base + partial + red + mv
                    if best is None or total < best:
                        best = total
        assert plan.total_cost == pytest.approx(best)

    def test_states_evaluated_reported(self):
        tree, _, _ = matmul_ptree()
        plan = optimize_distribution(tree, ProcessorGrid((2, 2)))
        assert plan.states_evaluated > 0

    def test_describe_mentions_grid(self):
        tree, _, _ = matmul_ptree()
        plan = optimize_distribution(tree, ProcessorGrid((2, 2)))
        text = plan.describe()
        assert "2x2" in text
        assert "sum_k" in text

    def test_pinned_result_distribution(self):
        tree, _, _ = matmul_ptree()
        grid = ProcessorGrid((2,))
        i = next(x for x in tree.indices if x.name == "i")
        pinned = Distribution((SINGLE,))
        plan = optimize_distribution(tree, grid, result_dist=pinned)
        assert plan.dist[id(tree)] == pinned


class TestSimulator:
    @pytest.mark.parametrize("grid_dims", [(1,), (2,), (2, 2), (4,)])
    def test_matmul_numerics(self, grid_dims):
        tree, stmt, prog = matmul_ptree()
        grid = ProcessorGrid(grid_dims)
        plan = optimize_distribution(tree, grid)
        arrays = random_inputs(prog, seed=2)
        want = evaluate_expression(stmt.expr, arrays)
        sim = GridSimulator(grid)
        got, report = sim.run(plan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_single_proc_no_comm(self):
        tree, stmt, prog = matmul_ptree()
        grid = ProcessorGrid((1,))
        plan = optimize_distribution(tree, grid)
        sim = GridSimulator(grid)
        _, report = sim.run(plan, random_inputs(prog, seed=2))
        assert report.total_received == 0
        assert report.messages == 0

    def test_local_ops_balance(self):
        """On a 4-proc grid the chosen plan should spread multiply work."""
        tree, stmt, prog = matmul_ptree()
        grid = ProcessorGrid((4,))
        model = CommModel(comm_cost=0.001)
        plan = optimize_distribution(tree, grid, model)
        sim = GridSimulator(grid)
        _, report = sim.run(plan, random_inputs(prog, seed=2))
        n = 8
        serial_ops = 2 * n**3
        assert report.max_local_ops < serial_ops

    def test_simulated_comm_never_below_model_free_plans(self):
        """A plan the model says is communication-free must measure
        zero received elements."""
        tree, stmt, prog = matmul_ptree()
        grid = ProcessorGrid((2,))
        model = CommModel(comm_cost=1e9)
        plan = optimize_distribution(tree, grid, model)
        sim = GridSimulator(grid)
        _, report = sim.run(plan, random_inputs(prog, seed=0))
        model_comm = plan.total_cost - _model_flops(plan, tree, grid)
        if model_comm < 1.0:
            assert report.total_received == 0

    def test_model_ranks_plans_like_simulator(self):
        """Across several pinned root distributions, model cost ordering
        matches simulated (comm-time + max-ops) ordering on ties-free
        pairs."""
        tree, stmt, prog = matmul_ptree()
        grid = ProcessorGrid((2, 2))
        model = CommModel()
        arrays = random_inputs(prog, seed=5)
        sim = GridSimulator(grid)
        from repro.parallel.dist import enumerate_distributions

        pairs = []
        for alpha in enumerate_distributions(tree.indices, grid)[:8]:
            plan = optimize_distribution(tree, grid, model, result_dist=alpha)
            _, report = sim.run(plan, arrays)
            measured = (
                model.comm_cost * report.event_comm_time
                + model.flop_cost * report.max_local_ops
            )
            pairs.append((plan.total_cost, measured))
        modeled = [p[0] for p in pairs]
        measured = [p[1] for p in pairs]
        # the model is an upper-bound-style estimate; require rank
        # correlation, not equality: order both and compare indices
        import scipy.stats as st

        rho = st.spearmanr(modeled, measured).statistic
        assert rho > 0.5


def _model_flops(plan, tree, grid):
    """Crude lower bound of the plan's compute portion (for the
    zero-comm check)."""
    from repro.parallel.commcost import calc_mul_elements, partial_sum_elements
    from repro.parallel.ptree import PMul, PSum

    total = 0.0
    for node in tree.walk():
        gamma = plan.gamma.get(id(node))
        if gamma is None:
            continue
        if isinstance(node, PMul):
            total += calc_mul_elements(node.indices, gamma, grid)
        elif isinstance(node, PSum):
            total += partial_sum_elements(node.child.indices, gamma, grid)
    return total
