"""Tests for the public cross-validation helper."""

import numpy as np
import pytest

from repro import SynthesisConfig, synthesize
from repro.chem.a3a import a3a_problem
from repro.validate import verify_result

SRC = """
range V = 5;
range O = 3;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


class TestVerifyResult:
    def test_fig1_verifies(self):
        result = synthesize(SRC, SynthesisConfig(optimize_cache=False))
        report = verify_result(result)
        assert report.ok
        assert report.max_error < 1e-8
        assert report.counters.total_ops > 0
        assert "OK" in str(report)

    def test_with_functions(self):
        problem = a3a_problem(V=4, O=2, Ci=50)
        result = synthesize(
            problem.program, SynthesisConfig(optimize_cache=False)
        )
        report = verify_result(result, functions=problem.functions)
        assert report.ok
        assert "E" in report.outputs

    def test_detects_corruption(self):
        """A deliberately corrupted structure must fail verification."""
        result = synthesize(SRC, SynthesisConfig(optimize_cache=False))
        # corrupt: double one Assign's coefficient
        from repro.codegen.loops import Assign, Loop

        def corrupt(block):
            out = []
            for node in block:
                if isinstance(node, Loop):
                    out.append(Loop(node.var, corrupt(node.body)))
                elif isinstance(node, Assign):
                    out.append(
                        Assign(node.target, node.terms, node.accumulate, 2.0)
                    )
                else:
                    out.append(node)
            return tuple(out)

        result.structure = corrupt(result.structure)
        report = verify_result(result)
        assert not report.ok
        assert "MISMATCH" in str(report)

    def test_custom_inputs(self):
        result = synthesize(SRC, SynthesisConfig(optimize_cache=False))
        from repro.engine.executor import random_inputs

        inputs = random_inputs(result.program, seed=99)
        report = verify_result(result, inputs=inputs)
        assert report.ok
