"""Tests for statement/program-level operation minimization with CSE."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program, optimize_statement
from repro.engine.executor import evaluate_expression, random_inputs, run_statements


class TestOptimizeStatement:
    def test_fig1_end_to_end(self, fig1_program):
        stmt = fig1_program.statements[0]
        seq = optimize_statement(stmt)
        # three binary contractions
        assert len(seq) == 3
        assert seq[-1].result.name == "S"
        n_v, n_o = 10, 4
        direct = statement_op_count(stmt)
        optimized = sequence_op_count(seq)
        assert optimized < direct

    def test_numerics_preserved(self, fig1_program):
        stmt = fig1_program.statements[0]
        bindings = {"V": 4, "O": 3}
        arrays = random_inputs(fig1_program, bindings, seed=3)
        want = evaluate_expression(stmt.expr, arrays, bindings)
        seq = optimize_statement(stmt, bindings)
        env = run_statements(seq, arrays, bindings)
        np.testing.assert_allclose(env["S"], want, rtol=1e-9)

    def test_multi_term_produces_final_add(self):
        src = """
        range N = 4;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c); tensor C(a, c);
        S(a) = sum(b, c) A(a,b) * B(b,c) * C(a,c)
             - 2 * sum(b) A(a,b) * A(a,b);
        """
        prog = parse_program(src)
        seq = optimize_statement(prog.statements[0])
        assert seq[-1].result.name == "S"
        from repro.expr.ast import Add

        assert isinstance(seq[-1].expr, Add)
        coefs = sorted(c for c, _ in seq[-1].expr.terms)
        assert coefs == [-2.0, 1.0]

    def test_multi_term_numerics(self):
        src = """
        range N = 4;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c); tensor C(a, c);
        S(a) = sum(b, c) A(a,b) * B(b,c) * C(a,c)
             - 2 * sum(b) A(a,b) * A(a,b);
        """
        prog = parse_program(src)
        stmt = prog.statements[0]
        arrays = random_inputs(prog, seed=11)
        want = evaluate_expression(stmt.expr, arrays)
        env = run_statements(optimize_statement(stmt), arrays)
        np.testing.assert_allclose(env["S"], want, rtol=1e-9)

    def test_cse_shares_identical_terms(self):
        """X appears twice with identical structure; the intermediate is
        materialized once."""
        src = """
        range N = 6;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c); tensor M(a, c); tensor K(a, c);
        S(a, c) = sum(b) A(a,b) * B(b,c) * M(a,c)
                + sum(b) A(a,b) * B(b,c) * K(a,c);
        """
        prog = parse_program(src)
        stmt = prog.statements[0]
        seq = optimize_statement(stmt)
        # AB must be computed only once
        produced = [s.result.name for s in seq]
        assert len(produced) == len(set(produced))
        ab_like = [
            s
            for s in seq
            if {r.tensor.name for r in s.expr.refs()} == {"A", "B"}
        ]
        assert len(ab_like) == 1

    def test_unflattenable_rejected(self):
        # A statement whose identical bound names collide across factors
        src = """
        range N = 3;
        index a, b : N;
        tensor A(a, b);
        S(a) = (sum(b) A(a, b)) * (sum(b) A(a, b));
        """
        prog = parse_program(src)
        with pytest.raises(ValueError, match="sum-of-products"):
            optimize_statement(prog.statements[0])


class TestOptimizeProgram:
    def test_cse_across_statements(self):
        src = """
        range N = 5;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c);
        X(a, c) = sum(b) A(a, b) * B(b, c);
        Y(a) = sum(b, c) A(a, b) * B(b, c) * A(a, c);
        """
        prog = parse_program(src)
        seq = optimize_program(prog)
        # all produced names unique and S-free contractions shared when equal
        produced = [s.result.name for s in seq]
        assert len(produced) == len(set(produced))

    def test_program_numerics(self):
        src = """
        range N = 4;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c);
        X(a, c) = sum(b) A(a, b) * B(b, c);
        Y(a) = sum(c) X(a, c) * X(a, c);
        """
        prog = parse_program(src)
        arrays = random_inputs(prog, seed=5)
        want_env = run_statements(prog.statements, arrays)
        got_env = run_statements(optimize_program(prog), arrays)
        np.testing.assert_allclose(got_env["Y"], want_env["Y"], rtol=1e-9)

    def test_temp_names_avoid_collisions(self):
        src = """
        range N = 3;
        index a, b, c, d : N;
        tensor T1(a, b); tensor B(b, c); tensor C(c, d);
        S(a, d) = sum(b, c) T1(a,b) * B(b,c) * C(c,d);
        """
        prog = parse_program(src)
        seq = optimize_program(prog)
        names = [s.result.name for s in seq]
        # the generated temporary must not reuse the input name T1
        assert names[0] != "T1"


class TestSearchStats:
    def test_pruning_explores_fewer_states(self, fig1_program):
        from repro.expr.canonical import flatten
        from repro.opmin.search import pruning_search

        stmt = fig1_program.statements[0]
        (coef, sums, refs), = flatten(stmt.expr)
        _, pruned_stats = pruning_search(refs, sums, prune=True)
        _, full_stats = pruning_search(refs, sums, prune=False)
        assert pruned_stats.best_cost == full_stats.best_cost
        assert pruned_stats.explored < full_stats.explored
