"""Tests for per-index tile-size refinement (non-uniform blocks)."""

import pytest

from repro.chem.a3a import a3a_problem
from repro.engine.executor import random_inputs, run_statements
from repro.codegen.interp import execute
from repro.spacetime.tiling import (
    refine_tile_sizes,
    search_tile_sizes,
    tiled_structure,
)
from repro.spacetime.tradeoff import tradeoff_search


@pytest.fixture(scope="module")
def problem():
    return a3a_problem(V=8, O=2, Ci=50)


@pytest.fixture(scope="module")
def min_mem_solution(problem):
    return tradeoff_search(problem.tree())[0]


class TestRefine:
    def test_never_worse_than_uniform(self, min_mem_solution):
        for limit in (64, 200, 1000):
            uniform = search_tile_sizes(min_mem_solution, memory_limit=limit)
            refined = refine_tile_sizes(
                min_mem_solution, uniform, memory_limit=limit
            )
            assert refined.ops <= uniform.ops
            assert refined.memory <= limit

    def test_nonuniform_beats_uniform_under_asymmetric_budget(
        self, min_mem_solution
    ):
        """With a budget between two uniform-B working sets, per-index
        blocks can spend the slack where it buys the most reuse."""
        # uniform candidates at V=8: B=1 (mem ~4), B=2 (~40), B=4 (~544)
        limit = 300
        uniform = search_tile_sizes(min_mem_solution, memory_limit=limit)
        refined = refine_tile_sizes(
            min_mem_solution, uniform, memory_limit=limit
        )
        assert refined.ops <= uniform.ops
        # the refinement actually used the slack: memory grew or ops fell
        assert refined.ops < uniform.ops or refined.memory >= uniform.memory

    def test_refined_structure_is_exact(self, problem, min_mem_solution):
        inputs = random_inputs(problem.program, seed=9)
        want = float(
            run_statements(
                problem.statements, inputs, functions=problem.functions
            )["E"]
        )
        uniform = search_tile_sizes(min_mem_solution, memory_limit=300)
        refined = refine_tile_sizes(
            min_mem_solution, uniform, memory_limit=300
        )
        env = execute(
            refined.structure, inputs, functions=problem.functions
        )
        assert float(env["E"]) == pytest.approx(want, rel=1e-9)

    def test_no_recompute_solution_passthrough(self, problem):
        frontier = tradeoff_search(problem.tree())
        no_red = frontier[-1]
        assert not no_red.recomputation_indices()
        start = search_tile_sizes(no_red)
        refined = refine_tile_sizes(no_red, start)
        assert refined is start

    def test_mixed_block_sizes_execute(self, problem, min_mem_solution):
        """Hand-picked non-uniform blocks (including a non-divisor)
        still produce the exact energy."""
        indices = sorted(min_mem_solution.recomputation_indices())
        tiles = {}
        for k, idx in enumerate(indices):
            tiles[idx] = [2, 3, 4, 8][k % 4]
        block = tiled_structure(min_mem_solution, tiles)
        inputs = random_inputs(problem.program, seed=10)
        want = float(
            run_statements(
                problem.statements, inputs, functions=problem.functions
            )["E"]
        )
        env = execute(block, inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(want, rel=1e-9)
