"""Thread-parallel native nests and cross-statement fusion.

The headline contract under test: a parallel nest (OpenMP pragmas or
the portable chunked fallback, fused or unfused) is **bit-identical**
to the sequential nest -- each output element is computed by exactly
one thread in an unchanged inner order, so there is no reassociation
to tolerate, and ``np.array_equal`` is the right assertion.  The
concurrency tests pin the engine's per-key coalescing (one compiler
fork under an 8-thread hammer) and the arena's single-threaded
contract (structured error, never silent corruption).
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.cgen import (
    _check_parallel,
    c_fused_source,
    c_source,
    py_fused_source,
    render_fused_ir,
)
from repro.engine.executor import random_inputs, run_statements
from repro.expr.parser import parse_program
from repro.kernels import (
    ArtifactStore,
    BufferArena,
    FusedSpec,
    KernelRunner,
    NativeEngine,
    compile_kernel_plan,
    native_available,
)
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.errors import ReproError

from tests.test_kernels_native import (
    COMMON,
    _einsum_of,
    _matmul_stmt,
    _spec_of,
    nest_statements,
)

RTOL, ATOL = 1e-12, 1e-12

needs_compiler = pytest.mark.skipif(
    not native_available(),
    reason="no native backend (numba or a C compiler) on this machine",
)

needs_cc = pytest.mark.skipif(
    NativeEngine(backend="cc").backend != "cc",
    reason="no C compiler on this machine",
)


FUSABLE_SRC = """
range V = 7; range O = 4;
index a, b, c : V; index k : O;
tensor A(a, c); tensor B(c, b); tensor C(a, c); tensor D(c, b);
T1(a, b) = sum(c) A(a, c) * B(c, b);
T2(a, b) = sum(c) C(a, c) * D(c, b);
"""

# same pair, closed over a final result so the full pipeline accepts it
PIPE_SRC = """
range V = 7;
index a, b, c : V;
tensor A(a, c); tensor B(c, b); tensor C(a, c); tensor D(c, b);
T1(a, b) = sum(c) A(a, c) * B(c, b);
T2(a, b) = sum(c) C(a, c) * D(c, b);
R(a, b) = T1(a, b) + T2(a, b);
"""

# T2 reads T1 at the identity output point (a, b): legal to fuse, but
# the buffers alias, so ``restrict`` must come off the fused kernel.
ALIASED_SRC = """
range V = 6; range O = 4;
index a, b, c : V; index k : O;
tensor A(a, c); tensor B(c, b); tensor W(k);
T1(a, b) = sum(c) A(a, c) * B(c, b);
T2(a, b) = sum(k) T1(a, b) * W(k);
"""

# T2 reads T1 at a *different* point than it writes: fusing would read
# elements another thread/iteration has not produced yet -- illegal.
PERMUTED_READ_SRC = """
range V = 6;
index a, b, c : V;
tensor A(a, c); tensor B(c, b);
T1(a, b) = sum(c) A(a, c) * B(c, b);
T2(a, b) = sum(c) T1(b, c) * B(c, a);
"""


def _parity_inputs(stmts, seed):
    rng = np.random.default_rng(seed)
    names = {}
    for stmt in stmts:
        for ref in stmt.expr.refs():
            if ref.tensor.name not in names and not ref.tensor.is_function:
                names[ref.tensor.name] = tuple(
                    i.extent() for i in ref.indices
                )
    produced = {s.result.name for s in stmts}
    return {
        name: rng.standard_normal(shape)
        for name, shape in names.items()
        if name not in produced
    }


class TestEmission:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="parallel strategy"):
            _check_parallel("cuda", 2)

    def test_parallel_scalar_output_rejected(self):
        with pytest.raises(ValueError, match="output loop"):
            _check_parallel("omp", 0)

    def test_omp_pragmas_land_on_the_right_loops(self):
        spec = _spec_of(compile_kernel_plan([_matmul_stmt()], mode="native"))
        src = c_source(spec, threads=3, parallel="omp", simd=True)
        assert "#pragma omp parallel num_threads(3)" in src
        lines = src.splitlines()
        for_line = next(
            i for i, l in enumerate(lines) if "#pragma omp for" in l
        )
        # the work-shared loop is the outermost *output* loop
        assert "for (long v0" in lines[for_line + 1]
        assert any("#pragma omp simd" in l for l in lines)
        assert "restrict" in src

    def test_chunk_kernel_gains_bounds_arguments(self):
        spec = _spec_of(compile_kernel_plan([_matmul_stmt()], mode="native"))
        src = c_source(spec, parallel="chunk")
        assert "long lo, long hi" in src
        assert "for (long v0 = lo; v0 < hi;" in src
        assert "#pragma omp" not in src

    def test_sequential_source_is_unchanged_by_the_feature(self):
        spec = _spec_of(compile_kernel_plan([_matmul_stmt()], mode="native"))
        assert c_source(spec) == c_source(spec, threads=1, parallel="none")

    def test_fused_ir_is_deterministic_and_content_bearing(self):
        prog = parse_program(FUSABLE_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True
        )
        assert plan.fused_groups
        fspec = plan.fused_groups[0].spec
        assert isinstance(fspec, FusedSpec)
        ir = render_fused_ir(fspec)
        assert ir == render_fused_ir(fspec)
        assert "fused nout=" in ir
        assert "member0:" in ir and "member1:" in ir
        assert ir != render_fused_ir(
            FusedSpec(
                nout=fspec.nout,
                out_extents=fspec.out_extents,
                members=fspec.members,
                out_slots=fspec.out_slots,
                nslots=fspec.nslots,
                aliased=not fspec.aliased,
            )
        )

    def test_aliased_group_drops_restrict(self):
        prog = parse_program(ALIASED_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True
        )
        assert plan.fused_groups and plan.fused_groups[0].spec.aliased
        src = c_fused_source(plan.fused_groups[0].spec)
        assert "restrict" not in src

    def test_unaliased_group_keeps_restrict(self):
        prog = parse_program(FUSABLE_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True
        )
        assert not plan.fused_groups[0].spec.aliased
        assert "restrict" in c_fused_source(plan.fused_groups[0].spec)

    def test_py_fused_source_matches_statements(self):
        prog = parse_program(ALIASED_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True
        )
        group = plan.fused_groups[0]
        namespace = {}
        exec(py_fused_source(group.spec), namespace)  # noqa: S102
        kern = namespace["kern"]
        stmts = list(prog.statements)
        inputs = _parity_inputs(stmts, seed=3)
        want = run_statements(stmts, dict(inputs))
        fspec = group.spec
        outs = [
            np.zeros(fspec.out_extents, dtype=np.float64)
            for _ in range(fspec.nslots)
        ]
        coefs = []
        ops = []
        by_name = dict(zip(group.outputs, outs))
        for (si, ti) in group.members:
            term = plan.statements[si].terms[ti]
            coefs.append(term.coef)
            for op in term.operands:
                src = by_name.get(op.name, inputs.get(op.name))
                ops.append(np.ascontiguousarray(src).ravel())
        kern(
            np.asarray(coefs, dtype=np.float64),
            *ops,
            *[o.ravel() for o in outs],
        )
        for name, out in zip(group.outputs, outs):
            np.testing.assert_allclose(
                out, want[name], rtol=RTOL, atol=ATOL
            )


class TestFusionLegality:
    def _groups(self, src, **kwargs):
        prog = parse_program(src)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True, **kwargs
        )
        return plan

    def test_independent_same_space_statements_fuse(self):
        plan = self._groups(FUSABLE_SRC)
        assert len(plan.fused_groups) == 1
        group = plan.fused_groups[0]
        assert group.outputs == ("T1", "T2")
        assert plan.fused_statements == 2

    def test_identity_read_of_earlier_member_fuses_as_aliased(self):
        plan = self._groups(ALIASED_SRC)
        assert len(plan.fused_groups) == 1
        assert plan.fused_groups[0].spec.aliased

    def test_permuted_read_of_earlier_member_blocks_fusion(self):
        plan = self._groups(PERMUTED_READ_SRC)
        assert plan.fused_groups == ()

    def test_different_output_spaces_block_fusion(self):
        plan = self._groups(
            """
            range V = 6;
            index a, b, c : V;
            tensor A(a, c); tensor B(c, b);
            T1(a, b) = sum(c) A(a, c) * B(c, b);
            T2(a) = sum(b, c) A(a, c) * B(c, b);
            """
        )
        assert plan.fused_groups == ()

    def test_fuse_flag_off_builds_no_groups(self):
        prog = parse_program(FUSABLE_SRC)
        plan = compile_kernel_plan(list(prog.statements), mode="native")
        assert plan.fused_groups == ()
        assert plan.fused_statements == 0

    def test_non_native_modes_ignore_fuse(self):
        prog = parse_program(FUSABLE_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="gemm", fuse=True
        )
        assert plan.fused_groups == ()

    def test_groups_pickle_with_the_plan(self):
        import pickle

        plan = self._groups(FUSABLE_SRC)
        again = pickle.loads(pickle.dumps(plan))
        assert again.fused_groups[0].outputs == ("T1", "T2")
        assert again.fused_groups[0].spec.ir() == (
            plan.fused_groups[0].spec.ir()
        )


@needs_compiler
class TestParallelParity:
    @settings(max_examples=25, **COMMON)
    @given(
        stmt=nest_statements(),
        threads=st.sampled_from([2, 4]),
        seed=st.integers(0, 2**16),
    )
    def test_threaded_nest_is_bit_identical_to_sequential(
        self, stmt, threads, seed
    ):
        plan = compile_kernel_plan([stmt], mode="native")
        if plan.native_terms == 0:
            return
        spec = _spec_of(plan)
        engine = NativeEngine()
        fn1 = engine.function(spec, np.float64, threads=1)
        fnN = engine.function(spec, np.float64, threads=threads)
        assert fn1 is not None and fnN is not None
        rng = np.random.default_rng(seed)
        ops = [
            np.ascontiguousarray(
                rng.standard_normal(
                    tuple(spec.extents[p] for p in axes)
                )
            )
            for axes in spec.operands
        ]
        a = np.zeros(spec.out_shape)
        b = np.zeros(spec.out_shape)
        fn1(1.5, ops, a)
        fnN(1.5, ops, b)
        assert np.array_equal(a, b)
        np.testing.assert_allclose(
            a, 1.5 * _einsum_of(spec, ops), rtol=RTOL, atol=ATOL
        )

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_runner_parity_across_threads_and_dtypes(self, threads, dtype):
        stmt = _matmul_stmt((9, 8, 70))
        plan = compile_kernel_plan([stmt], mode="native")
        rng = np.random.default_rng(21)
        inputs = {
            "A": rng.standard_normal((9, 70)).astype(dtype),
            "B": rng.standard_normal((70, 8)).astype(dtype),
        }
        runner = KernelRunner(plan, threads=threads)
        got = runner.run(inputs)["S"]
        want = inputs["A"].astype(np.float64) @ inputs["B"].astype(
            np.float64
        )
        rtol = RTOL if dtype is np.float64 else 2e-4
        np.testing.assert_allclose(
            got.astype(np.float64), want, rtol=rtol, atol=rtol
        )

    def test_fused_group_bit_identical_across_threads(self):
        prog = parse_program(ALIASED_SRC)
        stmts = list(prog.statements)
        plan = compile_kernel_plan(stmts, mode="native", fuse=True)
        assert plan.fused_groups
        inputs = _parity_inputs(stmts, seed=5)
        want = run_statements(stmts, dict(inputs))
        runs = {}
        for threads in (1, 2, 4):
            runner = KernelRunner(plan, threads=threads)
            runs[threads] = runner.run(dict(inputs))
            assert runner.notes == []
        for name in plan.outputs:
            np.testing.assert_allclose(
                runs[1][name], want[name], rtol=RTOL, atol=ATOL
            )
            assert np.array_equal(runs[1][name], runs[2][name])
            assert np.array_equal(runs[1][name], runs[4][name])

    def test_fused_matches_unfused_exactly(self):
        prog = parse_program(FUSABLE_SRC)
        stmts = list(prog.statements)
        fused = compile_kernel_plan(stmts, mode="native", fuse=True)
        plain = compile_kernel_plan(stmts, mode="native")
        assert fused.fused_groups and not plain.fused_groups
        inputs = _parity_inputs(stmts, seed=6)
        got_f = KernelRunner(fused).run(dict(inputs))
        got_p = KernelRunner(plain).run(dict(inputs))
        for name in ("T1", "T2"):
            assert np.array_equal(got_f[name], got_p[name])

    def test_thread_count_capped_by_outer_extent(self):
        """Requesting more threads than the outer loop has iterations
        degrades to the extent (and to sequential at extent 1)."""
        stmt = _matmul_stmt((2, 6, 7))
        spec = _spec_of(compile_kernel_plan([stmt], mode="native"))
        engine = NativeEngine()
        fn = engine.function(spec, np.float64, threads=16)
        assert fn is not None
        rng = np.random.default_rng(8)
        ops = [
            np.ascontiguousarray(rng.standard_normal((2, 7))),
            np.ascontiguousarray(rng.standard_normal((7, 6))),
        ]
        out = np.zeros(spec.out_shape)
        fn(1.0, ops, out)
        np.testing.assert_allclose(
            out, _einsum_of(spec, ops), rtol=RTOL, atol=ATOL
        )


@needs_cc
class TestChunkFallback:
    def test_no_openmp_machine_degrades_to_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_OPENMP", "1")
        engine = NativeEngine(backend="cc")
        assert not engine.openmp()
        assert engine.parallel_strategy(2) == "chunk"
        note = engine.parallel_note(2)
        assert note is not None and "chunked outer-loop fallback" in note
        assert "OpenMP disabled" in note

    def test_chunk_results_bit_identical(self, monkeypatch):
        stmt = _matmul_stmt((11, 5, 40))
        spec = _spec_of(compile_kernel_plan([stmt], mode="native"))
        rng = np.random.default_rng(13)
        ops = [
            np.ascontiguousarray(rng.standard_normal((11, 40))),
            np.ascontiguousarray(rng.standard_normal((40, 5))),
        ]
        seq = NativeEngine(backend="cc")
        fn1 = seq.function(spec, np.float64, threads=1)
        a = np.zeros(spec.out_shape)
        fn1(2.0, ops, a)
        monkeypatch.setenv("REPRO_NO_OPENMP", "1")
        chunked = NativeEngine(backend="cc")
        fnN = chunked.function(spec, np.float64, threads=4)
        assert chunked.parallel_strategy(4) == "chunk"
        b = np.zeros(spec.out_shape)
        fnN(2.0, ops, b)
        assert np.array_equal(a, b)

    def test_broken_compiler_probe_reports_structured_reason(
        self, monkeypatch
    ):
        from repro.kernels.native import _openmp_supported

        # the env kill-switch outranks the probe; clear it so the
        # broken-compiler path itself is what produces the reason
        monkeypatch.delenv("REPRO_NO_OPENMP", raising=False)
        ok, reason = _openmp_supported("/bin/false")
        assert not ok
        assert "-fopenmp" in reason

    def test_working_compiler_keeps_omp(self):
        engine = NativeEngine(backend="cc")
        if not engine.openmp():
            pytest.skip("this compiler has no OpenMP")
        assert engine.parallel_strategy(2) == "omp"
        assert engine.parallel_note(2) is None
        assert "-fopenmp" in engine.flags(2)


@needs_compiler
class TestEngineConcurrency:
    def test_hammer_compiles_once(self, tmp_path):
        """8 threads demanding the same threaded nest fork the compiler
        exactly once; everyone else waits on the in-flight event."""
        stmt = _matmul_stmt((8, 8, 8))
        spec = _spec_of(compile_kernel_plan([stmt], mode="native"))
        engine = NativeEngine(store=ArtifactStore(directory=str(tmp_path)))
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(slot):
            barrier.wait()
            results[slot] = engine.function(spec, np.float64, threads=2)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(fn is not None for fn in results)
        assert len({id(fn) for fn in results}) == 1
        assert engine.compile_invocations == 1

    def test_distinct_thread_counts_are_distinct_artifacts(self, tmp_path):
        stmt = _matmul_stmt((8, 8, 8))
        spec = _spec_of(compile_kernel_plan([stmt], mode="native"))
        engine = NativeEngine(store=ArtifactStore(directory=str(tmp_path)))
        keys = {engine.key(spec, np.float64, threads=t) for t in (1, 2, 4)}
        assert len(keys) == 3

    def test_warm_store_loads_threaded_and_fused_keys(self, tmp_path):
        prog = parse_program(FUSABLE_SRC)
        stmts = list(prog.statements)
        plan = compile_kernel_plan(stmts, mode="native", fuse=True)
        fspec = plan.fused_groups[0].spec
        specs = [t.native for sp in plan.statements for t in sp.terms
                 if t.native is not None]
        cold = NativeEngine(store=ArtifactStore(directory=str(tmp_path)))
        if cold.backend != "cc":
            pytest.skip("warm .so loading is the cc backend's property")
        for spec in specs:
            assert cold.function(spec, np.float64, threads=2) is not None
        assert cold.function(fspec, np.float64, threads=2) is not None
        warm = NativeEngine(store=ArtifactStore(directory=str(tmp_path)))
        for spec in specs:
            assert warm.function(spec, np.float64, threads=2) is not None
        assert warm.function(fspec, np.float64, threads=2) is not None
        assert warm.compile_invocations == 0
        assert warm.store_loads >= 1

    def test_stats_count_parallel_and_fused_builds(self, tmp_path):
        prog = parse_program(FUSABLE_SRC)
        plan = compile_kernel_plan(
            list(prog.statements), mode="native", fuse=True
        )
        engine = NativeEngine(store=ArtifactStore(directory=str(tmp_path)))
        engine.function(plan.fused_groups[0].spec, np.float64, threads=2)
        stats = engine.stats()
        assert stats["fused_functions"] == 1
        assert stats["parallel_functions"] == 1
        assert "openmp" in stats and "threads" in stats


class TestArenaOwnership:
    def test_cross_thread_take_with_outstanding_raises(self):
        arena = BufferArena()
        arena.take((4,))
        caught = []

        def other():
            try:
                arena.take((4,))
            except ReproError as exc:
                caught.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(caught) == 1
        assert "single-threaded" in str(caught[0])
        assert caught[0].context["outstanding"] == 1

    def test_cross_thread_release_raises(self):
        arena = BufferArena()
        buf = arena.take((4,))
        caught = []

        def other():
            try:
                arena.release(buf)
            except ReproError as exc:
                caught.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(caught) == 1

    def test_quiescent_arena_rebinds_to_a_new_thread(self):
        """A runner built on one thread and driven from another (the
        server's executor pattern) keeps working."""
        arena = BufferArena()
        arena.release(arena.take((4,)))
        ok = []

        def other():
            buf = arena.take((4,))
            arena.release(buf)
            ok.append(True)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert ok == [True]

    @needs_compiler
    def test_runner_rejects_concurrent_drives_structurally(self):
        stmt = _matmul_stmt((6, 6, 6))
        plan = compile_kernel_plan([stmt], mode="native")
        runner = KernelRunner(plan)
        rng = np.random.default_rng(2)
        inputs = {
            "A": rng.standard_normal((6, 6)),
            "B": rng.standard_normal((6, 6)),
        }
        runner.run(inputs)  # bind the arena to this thread
        runner.arena.take((1,))  # simulate an in-flight statement
        err = []

        def other():
            try:
                runner.arena.take((2,))
            except ReproError as exc:
                err.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(err) == 1 and "single-threaded" in str(err[0])


@needs_compiler
class TestSpmdPinning:
    def test_runner_pins_threads_inside_spmd_workers(self, monkeypatch):
        import repro.runtime.process as process

        monkeypatch.setattr(process, "IS_SPMD_WORKER", True)
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        runner = KernelRunner(plan, threads=4)
        assert runner.threads == 1
        assert any("pinned to 1" in n for n in runner.notes)

    def test_no_pin_outside_workers(self):
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        runner = KernelRunner(plan, threads=4)
        assert runner.threads == 4

    def test_run_parallel_records_the_pin(self):
        src = (
            "range N = 4;\n"
            "index i, j, k : N;\n"
            "tensor A(i, k); tensor B(k, j);\n"
            "C(i, j) = sum(k) A(i, k) * B(k, j);"
        )
        result = synthesize(
            src,
            SynthesisConfig(
                processors=2, codegen="native", kernel_threads=2
            ),
        )
        inputs = random_inputs(result.program, None, seed=3)
        result.run_parallel(inputs, backend="process", procs=1)
        assert any(
            "pinned to 1" in note for note in result.last_run_notes
        )


@needs_compiler
class TestPipelineParallel:
    def test_threads_and_fusion_reach_the_report(self):
        prog = parse_program(PIPE_SRC)
        result = synthesize(
            prog,
            SynthesisConfig(
                codegen="native", kernel_threads=2, fuse_statements=True
            ),
        )
        report = next(
            r for r in result.reports if r.name == "Code generation"
        )
        assert report.details["kernel threads"] == 2
        assert report.details["parallel strategy"] in ("omp", "chunk")
        runner = result.kernel_runner()
        assert runner.threads == 2

    def test_invalid_kernel_threads_rejected(self):
        with pytest.raises(ValueError, match="kernel_threads"):
            synthesize(
                PIPE_SRC,
                SynthesisConfig(codegen="native", kernel_threads=0),
            )

    def test_no_openmp_pipeline_records_degradation(self, monkeypatch):
        """Satellite: threads on a no-OpenMP machine degrade to the
        chunked fallback with a structured note -- never an exception."""
        import repro.kernels.native as native_mod

        engine = NativeEngine(backend="cc")
        if engine.backend != "cc":
            pytest.skip("degradation note is the cc backend's property")
        monkeypatch.setenv("REPRO_NO_OPENMP", "1")
        monkeypatch.setattr(
            native_mod, "_default_engine", NativeEngine(backend="cc")
        )
        result = synthesize(
            PIPE_SRC,
            SynthesisConfig(codegen="native", kernel_threads=2),
        )
        report = next(
            r for r in result.reports if r.name == "Code generation"
        )
        assert report.details["parallel strategy"] == "chunk"
        assert any(
            "chunked outer-loop fallback" in n for n in report.notes
        )
        assert any(
            "chunked outer-loop fallback" in n
            for n in result.last_run_notes
        )
        inputs = _parity_inputs(list(result.statements), seed=4)
        got = result.kernel_runner().run(inputs)
        want = run_statements(result.statements, dict(inputs))
        for name in got:
            if name in want:
                np.testing.assert_allclose(
                    got[name], want[name], rtol=RTOL, atol=ATOL
                )

    def test_fused_pipeline_zero_recompiles_when_warm(self, tmp_path):
        from repro.kernels import configure_default_engine, default_engine
        import repro.kernels.native as native_mod

        saved = native_mod._default_engine
        try:
            configure_default_engine(directory=str(tmp_path))
            cfg = SynthesisConfig(
                codegen="native", kernel_threads=2, fuse_statements=True
            )
            synthesize(PIPE_SRC, cfg)
            configure_default_engine(directory=str(tmp_path))
            if default_engine().backend != "cc":
                pytest.skip("warm loading is the cc backend's property")
            warm = synthesize(PIPE_SRC, cfg)
            report = next(
                r for r in warm.reports if r.name == "Code generation"
            )
            compiles = report.details[
                "artifact store (compiles/warm loads)"
            ]
            assert compiles.startswith("0/")
        finally:
            native_mod._default_engine = saved

    def test_threads_dimension_persists_in_tuning_db(
        self, tmp_path, monkeypatch
    ):
        """The autotuner's threads pick lands in TuningDecisions and in
        the persisted DB payload, and replays on a warm hit."""
        from repro.autotune import AutotuneOptions, TuningDB

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        cfg = SynthesisConfig(codegen="native")
        opts = AutotuneOptions(
            trials=1, warmup=0, db=TuningDB(directory=str(tmp_path))
        )
        cold = synthesize(PIPE_SRC, cfg, autotune=opts)
        assert cold.tuning.threads in (1, 2)
        warm = synthesize(
            PIPE_SRC,
            cfg,
            autotune=AutotuneOptions(
                trials=1, warmup=0, db=TuningDB(directory=str(tmp_path))
            ),
        )
        report = next(
            r for r in warm.reports if r.name == "Autotuning"
        )
        assert report.details["measurement runs"] == 0
        assert warm.tuning.threads == cold.tuning.threads
