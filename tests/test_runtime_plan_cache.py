"""Content-addressed plan cache: keys, tiers, and cached-result fidelity."""

import os
import pickle

import numpy as np
import pytest

from repro.engine.executor import random_inputs
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.expr.parser import parse_program
from repro.pipeline import SynthesisConfig, synthesize
from repro.runtime.plan_cache import PlanCache, config_fingerprint, plan_key

MATMUL = """
range N = 6;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


class TestPlanKey:
    def test_formatting_does_not_split_the_cache(self):
        """Two sources parsing to the same program share a key."""
        spaced = MATMUL.replace("sum(k)", "sum( k )").replace(";", " ;")
        a = parse_program(MATMUL)
        b = parse_program(spaced)
        cfg = SynthesisConfig()
        assert plan_key(a, cfg) == plan_key(b, cfg)

    def test_any_config_field_changes_the_key(self):
        prog = parse_program(MATMUL)
        base = plan_key(prog, SynthesisConfig())
        assert plan_key(
            prog, SynthesisConfig(grid=ProcessorGrid((2, 2)))
        ) != base
        assert plan_key(
            prog, SynthesisConfig(optimize_cache=False)
        ) != base
        assert plan_key(
            prog, SynthesisConfig(bindings={"N": 7})
        ) != base

    def test_binding_order_is_normalized(self):
        cfg_a = SynthesisConfig(bindings={"N": 6, "M": 4})
        cfg_b = SynthesisConfig(bindings={"M": 4, "N": 6})
        assert config_fingerprint(cfg_a) == config_fingerprint(cfg_b)


class TestSynthesizeWithCache:
    def test_cold_then_warm_hit(self):
        cache = PlanCache()
        cfg = SynthesisConfig(grid=ProcessorGrid((2, 2)))
        cold = synthesize(MATMUL, cfg, cache=cache)
        warm = synthesize(MATMUL, cfg, cache=cache)
        assert cache.misses == 1 and cache.memory_hits == 1
        assert cold.reports[-1].name == "Plan cache"
        assert "miss" in cold.reports[-1].details["hit"]
        assert warm.reports[-1].details["hit"] == "memory"
        assert warm is not cold  # hits are private copies
        assert warm.source == cold.source
        assert [r.name for r in warm.reports[:-1]] == [
            r.name for r in cold.reports[:-1]
        ]

    def test_config_change_is_a_miss(self):
        cache = PlanCache()
        synthesize(MATMUL, SynthesisConfig(), cache=cache)
        synthesize(
            MATMUL, SynthesisConfig(optimize_cache=False), cache=cache
        )
        assert cache.misses == 2 and cache.hits == 0

    def test_disk_round_trip(self, tmp_path):
        cfg = SynthesisConfig(grid=ProcessorGrid((2, 2)))
        synthesize(MATMUL, cfg, cache=PlanCache(directory=str(tmp_path)))
        fresh = PlanCache(directory=str(tmp_path))  # new process, same dir
        warm = synthesize(MATMUL, cfg, cache=fresh)
        assert fresh.disk_hits == 1 and fresh.misses == 0
        assert warm.reports[-1].details["hit"] == "disk"
        # the disk hit is promoted into memory
        res = synthesize(MATMUL, cfg, cache=fresh)
        assert fresh.memory_hits == 1
        assert res.reports[-1].details["hit"] == "memory"

    def test_cached_result_still_executes(self, tmp_path):
        """A result revived from disk must be fully usable: execute,
        partition plans, run_parallel."""
        cfg = SynthesisConfig(grid=ProcessorGrid((2, 2)))
        synthesize(MATMUL, cfg, cache=PlanCache(directory=str(tmp_path)))
        warm = synthesize(
            MATMUL, cfg, cache=PlanCache(directory=str(tmp_path))
        )
        inputs = random_inputs(warm.program, None, seed=0)
        env = warm.execute(inputs)
        np.testing.assert_allclose(
            env["C"], inputs["A"] @ inputs["B"], rtol=1e-10
        )
        out = warm.run_parallel(inputs)
        np.testing.assert_allclose(
            out["C"], inputs["A"] @ inputs["B"], rtol=1e-10
        )

    def test_pre_bump_result_is_a_stale_miss(self, tmp_path):
        """A result pickled by a release before the result_version stamp
        (<= 1.1.0) must read as a clean miss -- never as a revived
        object missing the newer attributes."""
        cfg = SynthesisConfig()
        cache = PlanCache(directory=str(tmp_path))
        result = synthesize(MATMUL, cfg)
        old = pickle.loads(pickle.dumps(result))
        # what an old pickle looks like: no result_version in __dict__
        # (the class-level dataclass default must not mask its absence)
        del old.__dict__["result_version"]
        key = plan_key(result.program, cfg)
        cache.put(key, old)
        assert cache.get(key) is None
        assert cache.stats()["stale"] == 1
        # the stale entry was dropped from both tiers: a re-synthesis
        # stores a fresh, current-schema result that then hits
        fresh = synthesize(MATMUL, cfg, cache=cache)
        assert fresh.reports[-1].details["hit"].startswith("miss")
        warm = synthesize(MATMUL, cfg, cache=cache)
        assert warm.reports[-1].details["hit"] == "memory"
        assert warm.result_version == result.result_version

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cfg = SynthesisConfig()
        cache = PlanCache(directory=str(tmp_path))
        synthesize(MATMUL, cfg, cache=cache)
        (entry,) = list(tmp_path.rglob("*.plan.pkl"))
        entry.write_bytes(b"not a pickle")
        fresh = PlanCache(directory=str(tmp_path))
        result = synthesize(MATMUL, cfg, cache=fresh)
        assert fresh.misses == 1 and fresh.hits == 0
        assert "miss" in result.reports[-1].details["hit"]
        assert not entry.read_bytes() == b"not a pickle"


class TestLru:
    def test_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (1, "memory")  # refresh a
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == (1, "memory")
        assert cache.get("c") == (3, "memory")
        assert cache.evictions == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_clear(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") == (1, "disk")  # disk tier survived
        cache.clear(disk=True)
        cache._memory.clear()
        assert cache.get("a") is None

    def test_describe_mentions_both_tiers(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        assert "memory[" in cache.describe()
        assert str(tmp_path) in cache.describe()


class TestPartitionPlanPickling:
    def test_id_keyed_tables_survive_round_trip(self):
        """PartitionPlan keys its DP tables by node identity; pickling
        re-keys them against the revived tree."""
        prog = parse_program(MATMUL)
        tree = expression_to_ptree(prog.statements[0].expr)
        plan = optimize_distribution(tree, ProcessorGrid((2, 2)))
        revived = pickle.loads(pickle.dumps(plan))
        nodes = list(plan.root.walk())
        revived_nodes = list(revived.root.walk())
        assert len(nodes) == len(revived_nodes)
        for node, twin in zip(nodes, revived_nodes):
            assert plan.dist[id(node)] == revived.dist[id(twin)]
            assert plan.gamma[id(node)] == revived.gamma[id(twin)]
        assert plan.sum_option.values() is not None
        assert list(plan.sum_option.values()) == list(
            revived.sum_option.values()
        )
        # the revived plan drives execution
        from repro.engine.executor import random_inputs
        from repro.parallel.spmd import run_spmd

        inputs = random_inputs(prog, seed=3)
        np.testing.assert_array_equal(
            run_spmd(plan, inputs).result,
            run_spmd(revived, inputs).result,
        )
