"""Tests for SPMD code generation and the lock-step driver."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel
from repro.parallel.dist import enumerate_distributions
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.parallel.spmd import (
    LocalComm,
    compile_schedule,
    generate_spmd_source,
    run_spmd,
)
from repro.parallel import spmd_runtime as rt


def matmul(n=8):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


class TestRuntimeHelpers:
    def test_box_difference_disjoint(self):
        a = ((0, 4), (0, 4))
        b = ((10, 12), (0, 4))
        assert rt.box_difference(a, b) == [a]

    def test_box_difference_contained(self):
        a = ((0, 4), (0, 4))
        assert rt.box_difference(a, a) == []

    def test_box_difference_partial(self):
        a = ((0, 4), (0, 4))
        b = ((2, 6), (1, 3))
        pieces = rt.box_difference(a, b)
        total = sum(rt.box_volume(p) for p in pieces)
        assert total == 16 - rt.box_volume(rt.box_intersect(a, b))
        # pieces are disjoint
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert rt.box_empty(rt.box_intersect(pieces[i], pieces[j]))

    def test_paste_extract_roundtrip(self):
        block = np.arange(12.0).reshape(3, 4)
        box = ((2, 5), (1, 5))
        piece_box = ((3, 5), (2, 4))
        piece = rt.extract(block, box, piece_box)
        target = np.zeros((3, 4))
        rt.paste(target, box, piece_box, piece)
        np.testing.assert_array_equal(
            target[1:3, 1:3], block[1:3, 1:3]
        )

    def test_broadcast_to_axes(self):
        blk = np.arange(6.0).reshape(2, 3)
        out = rt.broadcast_to_axes(blk, (0, 2), 3)
        assert out.shape == (2, 1, 3)


class TestSchedule:
    def test_schedule_ends_with_result(self):
        tree, _, _ = matmul()
        plan = optimize_distribution(tree, ProcessorGrid((2,)))
        steps = compile_schedule(plan)
        assert steps[-1].kind == "result"
        kinds = {s.kind for s in steps}
        assert "slice" in kinds and "mul" in kinds and "partial" in kinds

    def test_replicate_option_adds_bcast(self):
        tree, _, _ = matmul()
        grid = ProcessorGrid((2,))
        # pin a replicated result to force the replicate option's path
        from repro.parallel.dist import Distribution, REPLICATED

        alpha = Distribution((REPLICATED,))
        plan = optimize_distribution(tree, grid, result_dist=alpha)
        steps = compile_schedule(plan)
        if plan.sum_option[id(tree)] == "replicate":
            assert any(s.kind == "bcast" for s in steps)


class TestGeneratedProgram:
    @pytest.mark.parametrize("dims", [(1,), (2,), (4,), (2, 2)])
    def test_numerics(self, dims):
        tree, stmt, prog = matmul()
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid)
        arrays = random_inputs(prog, seed=1)
        want = evaluate_expression(stmt.expr, arrays)
        run = run_spmd(plan, arrays)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)

    def test_source_is_readable_python(self):
        tree, _, _ = matmul()
        plan = optimize_distribution(tree, ProcessorGrid((2, 2)))
        src = generate_spmd_source(plan)
        compile(src, "<test>", "exec")
        assert "def rank_program(rank, comm, arrays, state):" in src
        assert "yield" in src
        assert "comm.send" in src or "redistribute" not in src

    def test_single_rank_no_traffic(self):
        tree, stmt, prog = matmul()
        plan = optimize_distribution(tree, ProcessorGrid((1,)))
        run = run_spmd(plan, random_inputs(prog, seed=2))
        assert run.comm.total_traffic == 0

    def test_traffic_matches_simulator(self):
        """The generated program's transferred volume equals the
        simulator's received-element count (same model, two
        implementations)."""
        tree, stmt, prog = matmul()
        grid = ProcessorGrid((2, 2))
        arrays = random_inputs(prog, seed=3)
        for alpha in enumerate_distributions(tree.indices, grid)[:6]:
            plan = optimize_distribution(
                tree, grid, CommModel(), result_dist=alpha
            )
            run = run_spmd(plan, arrays)
            _, report = GridSimulator(grid).run(plan, arrays)
            assert run.comm.total_traffic == report.total_received, str(alpha)

    def test_supersteps_bounded(self):
        tree, _, prog = matmul()
        plan = optimize_distribution(tree, ProcessorGrid((2,)))
        run = run_spmd(plan, random_inputs(prog, seed=4))
        steps = compile_schedule(plan)
        # every step yields at most twice, plus the final StopIteration round
        assert run.supersteps <= 2 * len(steps) + 1

    def test_three_factor_chain(self):
        prog = parse_program("""
        range N = 6;
        index i, j, k, l : N;
        tensor A(i, k); tensor B(k, l); tensor C(l, j);
        D(i, j) = sum(k, l) A(i, k) * B(k, l) * C(l, j);
        """)
        stmt = prog.statements[0]
        tree = expression_to_ptree(stmt.expr)
        grid = ProcessorGrid((2, 2))
        plan = optimize_distribution(tree, grid)
        arrays = random_inputs(prog, seed=5)
        want = evaluate_expression(stmt.expr, arrays)
        run = run_spmd(plan, arrays)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)

    def test_uneven_extents(self):
        """Extents not divisible by the grid exercise unbalanced blocks
        and boundary boxes."""
        prog = parse_program("""
        range P = 7; range Q = 5; range R = 9;
        index p : P; index q : Q; index r : R;
        tensor A(p, q); tensor B(q, r);
        C(p, r) = sum(q) A(p, q) * B(q, r);
        """)
        stmt = prog.statements[0]
        tree = expression_to_ptree(stmt.expr)
        for dims in [(2,), (3,), (2, 2)]:
            plan = optimize_distribution(tree, ProcessorGrid(dims))
            arrays = random_inputs(prog, seed=6)
            want = evaluate_expression(stmt.expr, arrays)
            run = run_spmd(plan, arrays)
            np.testing.assert_allclose(run.result, want, rtol=1e-10)


class TestLocalComm:
    def test_counters(self):
        grid = ProcessorGrid((2,))
        comm = LocalComm(grid)
        comm.send((0,), (1,), "t", (((0, 2),), np.ones(2)))
        assert comm.sent_elements[(0,)] == 2
        assert comm.received_elements[(1,)] == 2
        assert comm.messages == 1
        got = comm.recv_all((1,), "t")
        assert len(got) == 1

    def test_local_handoff_free(self):
        grid = ProcessorGrid((2,))
        comm = LocalComm(grid)
        comm.send((0,), (0,), "t", (((0, 2),), np.ones(2)))
        assert comm.total_traffic == 0
