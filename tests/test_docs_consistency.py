"""Documentation consistency guards: the repo's own docs must track its
artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestReadme:
    def test_mentions_every_example(self):
        readme = read("README.md")
        for path in sorted((ROOT / "examples").glob("*")):
            if path.suffix in (".py", ".tce"):
                assert path.name in readme, path.name

    def test_quickstart_source_parses(self):
        """The README quickstart program snippet must stay valid."""
        readme = read("README.md")
        match = re.search(r'synthesize\("""(.*?)"""', readme, re.DOTALL)
        assert match, "quickstart snippet not found"
        from repro.expr.parser import parse_program

        parse_program(match.group(1))

    def test_install_commands_present(self):
        readme = read("README.md")
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme


class TestDesign:
    def test_lists_every_source_package(self):
        design = read("DESIGN.md")
        for pkg in sorted((ROOT / "src" / "repro").iterdir()):
            if pkg.is_dir() and (pkg / "__init__.py").exists():
                assert pkg.name in design, pkg.name

    def test_experiment_ids_have_bench_files(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), (
                match.group(1)
            )

    def test_paper_identity_check_recorded(self):
        design = read("DESIGN.md")
        assert "identity check" in design.lower()
        assert "No mismatch" in design


class TestExperiments:
    def test_every_bench_module_is_referenced(self):
        experiments = read("EXPERIMENTS.md")
        for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert path.name in experiments, (
                f"{path.name} not recorded in EXPERIMENTS.md"
            )

    def test_experiment_ids_sequential(self):
        experiments = read("EXPERIMENTS.md")
        for k in range(1, 14):
            assert f"## E{k} " in experiments, f"E{k} missing"

    def test_deviations_section_present(self):
        assert "Known deviations" in read("EXPERIMENTS.md")


class TestDocsDir:
    def test_api_reference_fresh_enough(self):
        """docs/api.md must mention every subpackage (regenerated via
        scripts/gen_api_docs.py)."""
        api = read("docs/api.md")
        for pkg in sorted((ROOT / "src" / "repro").iterdir()):
            if pkg.is_dir() and (pkg / "__init__.py").exists():
                assert f"repro.{pkg.name}" in api, pkg.name

    def test_language_doc_grammar_matches_parser(self):
        """Key grammar productions documented in docs/language.md exist
        in the parser's docstring too."""
        lang = read("docs/language.md")
        parser_doc = read("src/repro/expr/parser.py")
        for token in ('"range"', '"index"', '"tensor"', '"function"'):
            assert token in lang
            assert token in parser_doc
