"""Property-based tests for the distribution layer: the closed-form
interval arithmetic must agree with element-exact ownership masks for
arbitrary distributions, arrays, and grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.indices import Index, IndexRange
from repro.parallel.commcost import (
    move_cost_elements,
    received_elements,
    reduction_comm_elements,
    reduction_result_dist,
)
from repro.parallel.dist import (
    Distribution,
    REPLICATED,
    SINGLE,
    enumerate_distributions,
)
from repro.parallel.grid import ProcessorGrid, myrange

R1 = IndexRange("R1", 7)
R2 = IndexRange("R2", 5)
J = Index("j", R1)
T = Index("t", R2)
INDICES = (J, T)


@st.composite
def grid_and_dists(draw):
    ndims = draw(st.integers(min_value=1, max_value=3))
    dims = tuple(
        draw(st.sampled_from([1, 2, 3, 4])) for _ in range(ndims)
    )
    grid = ProcessorGrid(dims)
    alphabet = [J, T, REPLICATED, SINGLE]

    def dist():
        while True:
            entries = tuple(
                draw(st.sampled_from(alphabet)) for _ in range(ndims)
            )
            idx = [e for e in entries if isinstance(e, Index)]
            if len(idx) == len(set(idx)):
                return Distribution(entries)

    return grid, dist(), dist()


class TestIntervalVsMasks:
    @given(grid_and_dists())
    @settings(max_examples=60, deadline=None)
    def test_received_elements_matches_masks(self, case):
        grid, src, dst = case
        for rank in grid.ranks():
            src_mask = src.ownership_mask(INDICES, rank, grid)
            dst_mask = dst.ownership_mask(INDICES, rank, grid)
            exact = int((dst_mask & ~src_mask).sum())
            assert exact == received_elements(
                INDICES, src, dst, rank, grid
            )

    @given(grid_and_dists())
    @settings(max_examples=40, deadline=None)
    def test_local_size_matches_mask(self, case):
        grid, src, _ = case
        for rank in grid.ranks():
            mask = src.ownership_mask(INDICES, rank, grid)
            assert int(mask.sum()) == src.local_size(INDICES, rank, grid)

    @given(grid_and_dists())
    @settings(max_examples=40, deadline=None)
    def test_holders_cover_every_element(self, case):
        """Union over ranks of ownership masks covers the whole array
        (every element lives somewhere)."""
        grid, src, _ = case
        total = np.zeros((7, 5), dtype=bool)
        for rank in grid.ranks():
            total |= src.ownership_mask(INDICES, rank, grid)
        assert total.all()

    @given(grid_and_dists())
    @settings(max_examples=40, deadline=None)
    def test_move_cost_zero_iff_no_rank_needs_data(self, case):
        grid, src, dst = case
        cost = move_cost_elements(INDICES, src, dst, grid)
        needs = any(
            received_elements(INDICES, src, dst, rank, grid) > 0
            for rank in grid.ranks()
        )
        assert (cost > 0) == needs

    @given(grid_and_dists())
    @settings(max_examples=40, deadline=None)
    def test_self_move_free(self, case):
        grid, src, _ = case
        assert move_cost_elements(INDICES, src, src, grid) == 0


class TestMyrangeProperties:
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=16),
    )
    def test_blocks_partition_range(self, n, p):
        covered = []
        for z in range(p):
            lo, hi = myrange(z, n, p)
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=16),
    )
    def test_blocks_balanced(self, n, p):
        sizes = [myrange(z, n, p)[1] - myrange(z, n, p)[0] for z in range(p)]
        assert max(sizes) - min(sizes) <= 1


class TestReductionProperties:
    def test_reduction_dist_loses_index(self):
        grid = ProcessorGrid((2, 3))
        for dist in enumerate_distributions(INDICES, grid):
            if dist.position_of(T) is None:
                continue
            for rep in (False, True):
                out = reduction_result_dist(dist, T, rep)
                assert out.position_of(T) is None

    def test_reduction_comm_scales_with_p(self):
        dist = Distribution((J, T))
        costs = []
        for p in (1, 2, 4, 8):
            grid = ProcessorGrid((2, p))
            costs.append(reduction_comm_elements((J,), dist, T, grid))
        assert costs[0] == 0
        assert costs == sorted(costs)
