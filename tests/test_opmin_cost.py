"""Unit tests for the operation-count cost model."""

import pytest

from repro.expr.parser import parse_program
from repro.opmin.cost import (
    sequence_op_count,
    statement_op_count,
)


class TestDirectOpCount:
    def test_fig1_direct_is_4_N10(self):
        """Paper Section 2: the direct ten-loop translation of
        S = sum A*B*C*D costs 4 x N^10 when every index has range N."""
        src = """
        range N = 7;
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(a, c, i, k); tensor B(b, e, f, l);
        tensor C(d, f, j, k); tensor D(c, d, e, l);
        S(a, b, i, j) = sum(c, d, e, f, k, l)
            A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
        """
        prog = parse_program(src)
        n = 7
        assert statement_op_count(prog.statements[0]) == 4 * n**10

    def test_fig1_formula_sequence_is_6_N6(self):
        """Paper Section 2: the BDCA formula sequence costs 6 x N^6."""
        src = """
        range N = 7;
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(a, c, i, k); tensor B(b, e, f, l);
        tensor C(d, f, j, k); tensor D(c, d, e, l);
        T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
        T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
        S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
        """
        prog = parse_program(src)
        n = 7
        assert sequence_op_count(prog.statements) == 6 * n**6

    def test_bindings_override(self):
        src = """
        range N = 7;
        index a, b : N;
        tensor A(a, b);
        S(a) = sum(b) A(a, b);
        """
        prog = parse_program(src)
        # pure reduction: 1 add per point of the a,b space
        assert statement_op_count(prog.statements[0]) == 7 * 7
        assert statement_op_count(prog.statements[0], {"N": 3}) == 9

    def test_copy_is_free(self):
        src = "range N=5; index a:N; tensor A(a); S(a) = A(a);"
        prog = parse_program(src)
        assert statement_op_count(prog.statements[0]) == 0

    def test_function_materialization_charges_compute_cost(self):
        src = """
        range N = 4;
        index a, b : N;
        function f(a, b) cost 100;
        T(a, b) = f(a, b);
        """
        prog = parse_program(src)
        assert statement_op_count(prog.statements[0]) == 100 * 16

    def test_multi_term_adds_per_term(self):
        src = """
        range N = 3;
        index a, b : N;
        tensor A(a, b); tensor B(a, b);
        S(a) = sum(b) A(a, b) + sum(b) B(a, b);
        """
        prog = parse_program(src)
        # each term: 1 add over 9 points
        assert statement_op_count(prog.statements[0]) == 18

    def test_contraction_in_product_with_function(self):
        src = """
        range N = 3;
        index a, b : N;
        tensor A(a, b);
        function f(a, b) cost 10;
        S(a) = sum(b) A(a, b) * f(a, b);
        """
        prog = parse_program(src)
        # per (a,b) point: 1 mul + 1 add + 10 function ops
        assert statement_op_count(prog.statements[0]) == 12 * 9
