"""The public import surface must stay stable and usable end to end."""

import numpy as np
import pytest


class TestTopLevelImports:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_subpackage_alls(self):
        import repro.expr
        import repro.opmin
        import repro.fusion
        import repro.spacetime
        import repro.locality
        import repro.parallel
        import repro.codegen
        import repro.engine
        import repro.chem

        for mod in (
            repro.expr,
            repro.opmin,
            repro.fusion,
            repro.spacetime,
            repro.locality,
            repro.parallel,
            repro.codegen,
            repro.engine,
            repro.chem,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"


class TestReadmeQuickstart:
    def test_readme_snippet_runs(self):
        """The README quickstart must work verbatim."""
        from repro import synthesize, SynthesisConfig, ProcessorGrid

        result = synthesize(
            """
            range V = 8;  range O = 4;
            index a, b, c, d, e, f : V;
            index i, j, k, l : O;
            tensor A(a, c, i, k); tensor B(b, e, f, l);
            tensor C(d, f, j, k); tensor D(c, d, e, l);
            S(a, b, i, j) = sum(c, d, e, f, k, l)
                A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
            """,
            SynthesisConfig(grid=ProcessorGrid((2, 2)), optimize_cache=False),
        )
        assert result.describe()
        assert result.render_structure()
        kernel = result.compile()
        from repro import random_inputs

        arrays = random_inputs(result.program, seed=0)
        out = kernel(arrays)["S"]
        assert out.shape == (8, 8, 4, 4)

    def test_library_workflow_without_pipeline(self):
        """Using the pieces directly, as the architecture doc shows."""
        from repro import (
            optimize_statement,
            parse_program,
            program_to_source,
            run_statements,
            random_inputs,
            schedule_statements,
        )

        prog = parse_program(
            "range N = 6; index a, b, c : N;"
            "tensor A(a, b); tensor B(b, c);"
            "C(a, c) = sum(b) A(a, b) * B(b, c);"
        )
        seq = optimize_statement(prog.statements[0])
        seq = schedule_statements(seq).statements
        text = program_to_source(prog, seq)
        assert "C(" in text
        arrays = random_inputs(prog, seed=0)
        env = run_statements(seq, arrays)
        want = arrays["A"] @ arrays["B"]
        np.testing.assert_allclose(env["C"], want, rtol=1e-10)
