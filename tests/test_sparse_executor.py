"""Sparse reference executor vs the dense einsum oracle.

The acceptance bar: on >= 20 randomized contraction programs the sparse
executor's results must ``allclose`` the dense oracle's.  Coverage also
includes ``sum``, ``+=`` accumulation, function tensors, multi-term
sums-of-products, and diagonal (repeated-index) references.
"""

import random

import numpy as np
import pytest

from repro.chem.workloads import fig1_program, random_contraction_program
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.engine.executor import run_statements as dense_run
from repro.expr.parser import parse_program
from repro.sparse.executor import random_sparse_inputs
from repro.sparse.executor import run_statements as sparse_run
from repro.sparse.formats import COOTensor


def default_impls(program):
    """A deterministic implementation for every function tensor."""
    return {
        t.name: (lambda *grids: np.cos(sum((k + 1.0) * g for k, g in enumerate(grids, 1))))
        for t in program.tensors()
        if t.is_function
    }


def assert_matches_oracle(program, seed=0, functions=None, bindings=None):
    if functions is None:
        functions = default_impls(program)
    arrays = random_inputs(program, bindings, seed=seed)
    want = dense_run(program.statements, arrays, bindings, functions)
    got = sparse_run(program.statements, arrays, bindings, functions)
    for stmt in program.statements:
        name = stmt.result.name
        np.testing.assert_allclose(
            got[name], want[name], rtol=1e-10, atol=1e-12
        )


def random_sparse_program(seed: int):
    """Randomized programs exercising the whole statement surface:
    sparse operand fills, ``sum``, multi-term, ``+=``, functions."""
    rng = random.Random(seed)
    names = [f"x{k}" for k in range(rng.randint(3, 5))]
    lines = []
    for k, name in enumerate(names):
        lines.append(f"range R{k} = {rng.choice([3, 4, 5, 6])};")
        lines.append(f"index {name} : R{k};")
    refs = []
    used = set()
    for t in range(rng.randint(2, 4)):
        dims = rng.sample(names, rng.randint(1, min(3, len(names))))
        used.update(dims)
        ann = ""
        if rng.random() < 0.7:
            ann = f" sparse({rng.choice([0.5, 0.25, 0.1])})"
        lines.append(f"tensor T{t}({','.join(dims)}){ann};")
        refs.append(f"T{t}({','.join(dims)})")
    if rng.random() < 0.4:  # a function tensor factor
        dims = rng.sample(names, rng.randint(1, 2))
        used.update(dims)
        lines.append(f"function f({','.join(dims)}) cost 3;")
        refs.append(f"f({','.join(dims)})")
    used = sorted(used)
    out = rng.sample(used, rng.randint(1, len(used)))
    sums = [n for n in used if n not in out]

    def term(sub):
        rhs = " * ".join(sub)
        live = sums and any(
            i in r for r in sub for i in sums
        )
        return f"sum({','.join(sums)}) {rhs}" if live else rhs

    if len(refs) >= 3 and rng.random() < 0.5:  # multi-term Add
        cut = rng.randint(1, len(refs) - 1)
        # both terms must cover every summation *and* free index, so
        # simply reuse the full factor list when a split would change
        # the free set; coefficients still exercise the Add path
        coef = rng.choice(["2 *", "-", "0.5 *"])
        rhs = f"{term(refs)} + {coef} {term(refs)}"
    else:
        rhs = term(refs)
    lines.append(f"S({','.join(out)}) = {rhs};")
    if rng.random() < 0.4:  # accumulate on top
        lines.append(f"S({','.join(out)}) += {rhs};")
    return parse_program("\n".join(lines))


class TestOracleEquivalence:
    @pytest.mark.parametrize("seed", range(24))
    def test_randomized_programs(self, seed):
        program = random_sparse_program(seed)
        assert_matches_oracle(program, seed=seed)

    @pytest.mark.parametrize("seed", range(8))
    def test_dense_generator_programs(self, seed):
        """Also the repo's stock generator (always-dense operands)."""
        program = random_contraction_program(seed + 3100)
        assert_matches_oracle(program, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_sparse_coo_inputs(self, seed):
        """Inputs given as COOTensor at their declared fills."""
        program = parse_program("""
        range V = 6; range O = 4;
        index a, b : V; index i, j : O;
        tensor A(a, b) sparse(0.1);
        tensor B(b, i) sparse(0.3);
        T(a, i) = sum(b) A(a, b) * B(b, i);
        S(a) = sum(i) T(a, i) * T(a, i);
        """)
        inputs = random_sparse_inputs(program, seed=seed)
        assert inputs["A"].nnz == max(1, round(0.1 * 36))
        dense_inputs = {k: v.to_dense() for k, v in inputs.items()}
        want = dense_run(program.statements, dense_inputs)
        got = sparse_run(program.statements, inputs)
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-10)

    def test_fig1_contraction(self):
        program = fig1_program(V=5, O=3)
        assert_matches_oracle(program, seed=11)

    def test_function_tensors(self):
        program = parse_program("""
        range N = 5;
        index a, b, c : N;
        tensor A(a, b) sparse(0.25);
        function f(b, c) cost 2;
        S(a, c) = sum(b) A(a, b) * f(b, c);
        """)
        functions = {"f": lambda b, c: np.sin(b + 2.0 * c)}
        assert_matches_oracle(program, seed=5, functions=functions)

    def test_diagonal_reference(self):
        """Repeated index within one reference selects the diagonal."""
        program = parse_program("""
        range N = 6;
        index a, b : N;
        tensor A(a, a);
        tensor B(a, b) sparse(0.3);
        S(b) = sum(a) A(a, a) * B(a, b);
        """)
        assert_matches_oracle(program, seed=3)

    def test_full_reduction_to_scalar(self):
        program = parse_program("""
        range N = 5;
        index a, b : N;
        tensor A(a, b) sparse(0.2);
        E() = sum(a, b) A(a, b) * A(a, b);
        """)
        assert_matches_oracle(program, seed=9)

    def test_bindings_override(self):
        program = fig1_program(V=40, O=20)
        assert_matches_oracle(
            program, seed=2, bindings={"V": 4, "O": 2}
        )


class TestCounters:
    def test_flops_track_matches_not_dense_space(self):
        """At fill p the join visits ~p^2 of the dense multiply space."""
        program = parse_program("""
        range N = 32;
        index a, b, c : N;
        tensor A(a, b) sparse(0.05);
        tensor B(b, c) sparse(0.05);
        S(a, c) = sum(b) A(a, b) * B(b, c);
        """)
        inputs = random_sparse_inputs(program, seed=1)
        counters = Counters()
        sparse_run(program.statements, inputs, counters=counters)
        dense_muls = 32**3
        assert 0 < counters.flops < dense_muls * 0.05

    def test_func_evals_counted(self):
        program = parse_program("""
        range N = 4;
        index a, b : N;
        function f(a, b) cost 7;
        S(a) = sum(b) f(a, b);
        """)
        counters = Counters()
        sparse_run(
            program.statements,
            {},
            functions={"f": lambda a, b: a + b + 1.0},
            counters=counters,
        )
        assert counters.func_evals == 16
        assert counters.func_ops == 16 * 7
