"""Unit tests for the loop IR and its static analyses."""

import pytest

from repro.expr.indices import Index, IndexRange
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Loop,
    LoopVar,
    ZeroArr,
    array_sizes,
    distinct_accesses,
    loop_op_count,
    peak_memory,
    render,
    total_memory,
    validate,
)

V = IndexRange("V", 8)
A, B, C = Index("a", V), Index("b", V), Index("c", V)


def lv(i):
    return LoopVar(i)


class TestLoopVar:
    def test_full_extent(self):
        assert lv(A).extent() == 8
        assert lv(A).extent({"V": 3}) == 3

    def test_tile_extent_ceil(self):
        assert LoopVar(A, "tile", 3).extent() == 3  # ceil(8/3)
        assert LoopVar(A, "tile", 4).extent() == 2

    def test_intra_extent(self):
        assert LoopVar(A, "intra", 3).extent() == 3
        assert LoopVar(A, "intra", 16).extent() == 8  # capped at N

    def test_role_validation(self):
        with pytest.raises(ValueError):
            LoopVar(A, "weird")
        with pytest.raises(ValueError):
            LoopVar(A, "tile")  # missing block
        with pytest.raises(ValueError):
            LoopVar(A, "full", 4)  # spurious block

    def test_names(self):
        assert lv(A).name == "a"
        assert LoopVar(A, "tile", 2).name == "a_t"
        assert LoopVar(A, "intra", 2).name == "a_i"


def simple_block():
    """T[a,b] = 0; for a: for b: for c: T[a,b] += X[a,c]*Y[c,b]"""
    t = Access("T", ((lv(A),), (lv(B),)))
    x = Access("X", ((lv(A),), (lv(C),)))
    y = Access("Y", ((lv(C),), (lv(B),)))
    inner = Assign(t, (x, y), accumulate=True)
    return (
        Alloc("T", ((lv(A),), (lv(B),))),
        ZeroArr("T"),
        Loop(lv(A), (Loop(lv(B), (Loop(lv(C), (inner,)),)),)),
    )


class TestAnalyses:
    def test_op_count(self):
        # 2 ops (1 mul + 1 add) per (a,b,c) point
        assert loop_op_count(simple_block()) == 2 * 8**3
        assert loop_op_count(simple_block(), {"V": 2}) == 16

    def test_array_sizes(self):
        assert array_sizes(simple_block()) == {"T": 64}

    def test_total_and_peak_memory(self):
        blk = simple_block()
        assert total_memory(blk) == 64
        assert peak_memory(blk) == 64

    def test_peak_scoped_allocs(self):
        """An alloc inside a loop is one reusable buffer."""
        inner_alloc = Alloc("S", ((lv(B),),))
        blk = (
            Alloc("T", ((lv(A),),)),
            Loop(lv(A), (inner_alloc,)),
        )
        assert total_memory(blk) == 8 + 8
        assert peak_memory(blk) == 16

    def test_double_alloc_rejected(self):
        blk = (Alloc("T", ()), Alloc("T", ()))
        with pytest.raises(ValueError, match="twice"):
            array_sizes(blk)

    def test_validate_unbound_var(self):
        t = Access("T", ((lv(A),),))
        blk = (Assign(t, (t,), accumulate=False),)
        with pytest.raises(ValueError, match="unbound"):
            validate(blk)

    def test_validate_shadowing(self):
        blk = (Loop(lv(A), (Loop(lv(A), ()),)),)
        with pytest.raises(ValueError, match="shadows"):
            validate(blk)

    def test_render_contains_structure(self):
        text = render(simple_block())
        assert "for a:" in text
        assert "T[a,b] += X[a,c] * Y[c,b]" in text


class TestDistinctAccesses:
    def test_innermost_loop(self):
        blk = simple_block()
        loop_a = blk[2]
        loop_b = loop_a.body[0]
        loop_c = loop_b.body[0]
        # within loop c (a, b fixed): T[a,b] 1 elem, X[a,c] 8, Y[c,b] 8
        assert distinct_accesses(loop_c) == 1 + 8 + 8
        # within loop b: T 8, X 8, Y 64
        assert distinct_accesses(loop_b) == 8 + 8 + 64
        # full: 64 + 64 + 64
        assert distinct_accesses(loop_a) == 192

    def test_bindings(self):
        blk = simple_block()
        loop_a = blk[2]
        assert distinct_accesses(loop_a, {"V": 2}) == 12


class TestAssignOps:
    def test_ops_per_iteration(self):
        t = Access("T", ((lv(A),),))
        x = Access("X", ((lv(A),),))
        assert Assign(t, (x,), accumulate=True).ops_per_iteration() == 1
        assert Assign(t, (x, x), accumulate=True).ops_per_iteration() == 2
        assert Assign(t, (x,), accumulate=False).ops_per_iteration() == 0
        assert Assign(t, (x, x), False, coef=2.0).ops_per_iteration() == 2
