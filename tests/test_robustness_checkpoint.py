"""Checkpoint/restart property tests: an execution interrupted at any
top-level unit boundary and resumed from its checkpoint is
*bit-identical* to an uninterrupted run -- results, paging counters,
and pool state included."""

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.builder import build_unfused
from repro.codegen.interp import execute
from repro.engine.outofcore import simulate_out_of_core
from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs
from repro.robustness.checkpoint import (
    CHECKPOINT_NAME,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.errors import CheckpointError, InjectedFault

SRC = """
range N = 6;
index i, j, k, l : N;
tensor A(i, k); tensor B(k, j); tensor C(j, l);
T(i, j) = sum(k) A(i, k) * B(k, j);
S(i, l) = sum(j) T(i, j) * C(j, l);
"""


def _program():
    prog = parse_program(SRC)
    block = build_unfused(prog.statements)
    inputs = random_inputs(prog, seed=7)
    return block, inputs


class TestCheckpointPrimitives:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "c.pkl")
        payload = {"unit": 3, "arrays": {"X": np.arange(4.0)}}
        save_checkpoint(path, payload)
        loaded = load_checkpoint(path)
        assert loaded["unit"] == 3
        np.testing.assert_array_equal(loaded["arrays"]["X"], np.arange(4.0))

    def test_load_missing_returns_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.pkl")) is None

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "c.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))


class TestInterpCheckpoint:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        block, inputs = _program()
        clean = execute(block, dict(inputs))
        ckpt = str(tmp_path)
        with pytest.raises(InjectedFault):
            execute(block, dict(inputs), checkpoint=ckpt, interrupt_after=2)
        assert os.path.exists(os.path.join(ckpt, CHECKPOINT_NAME))
        env = execute(block, dict(inputs), checkpoint=ckpt)
        for name in ("T", "S"):
            np.testing.assert_array_equal(env[name], clean[name])
        # checkpoint cleared on successful completion
        assert not os.path.exists(os.path.join(ckpt, CHECKPOINT_NAME))

    def test_counters_resume_exactly(self, tmp_path):
        from repro.engine.counters import Counters

        block, inputs = _program()
        base = Counters()
        execute(block, dict(inputs), counters=base)
        ckpt = str(tmp_path)
        resumed = Counters()
        with pytest.raises(InjectedFault):
            execute(
                block, dict(inputs), counters=resumed,
                checkpoint=ckpt, interrupt_after=1,
            )
        execute(block, dict(inputs), counters=resumed, checkpoint=ckpt)
        assert resumed.flops == base.flops
        assert resumed.elements_allocated == base.elements_allocated


class TestOutOfCoreCheckpointProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        cut=st.integers(min_value=1, max_value=40),
        budget=st.sampled_from([64, 96, 160]),
    )
    def test_interrupt_anywhere_resume_identical(self, cut, budget):
        """Interrupt after ``cut`` top-level units (or never, when the
        run has fewer), resume, and compare everything measurable."""
        block, inputs = _program()
        clean = simulate_out_of_core(block, inputs, budget_elements=budget)
        workdir = tempfile.mkdtemp(prefix="ckpt-prop-")
        try:
            try:
                simulate_out_of_core(
                    block, inputs, budget_elements=budget,
                    checkpoint_dir=workdir, interrupt_after=cut,
                )
                interrupted = False
            except InjectedFault:
                interrupted = True
            resumed = simulate_out_of_core(
                block, inputs, budget_elements=budget,
                checkpoint_dir=workdir,
            )
            assert resumed.total_io == clean.total_io
            assert resumed.accesses == clean.accesses
            assert resumed.evictions == clean.evictions
            assert resumed.per_array_reads == clean.per_array_reads
            for name, array in clean.arrays.items():
                np.testing.assert_array_equal(resumed.arrays[name], array)
            if interrupted:
                # the resumed run really did start from the checkpoint
                assert not os.path.exists(
                    os.path.join(workdir, CHECKPOINT_NAME)
                )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_double_interrupt_then_resume(self):
        """Two successive interruptions still land on the same answer."""
        block, inputs = _program()
        clean = simulate_out_of_core(block, inputs, budget_elements=96)
        workdir = tempfile.mkdtemp(prefix="ckpt-two-")
        try:
            with pytest.raises(InjectedFault):
                simulate_out_of_core(
                    block, inputs, budget_elements=96,
                    checkpoint_dir=workdir, interrupt_after=1,
                )
            with pytest.raises(InjectedFault):
                simulate_out_of_core(
                    block, inputs, budget_elements=96,
                    checkpoint_dir=workdir, interrupt_after=1,
                )
            resumed = simulate_out_of_core(
                block, inputs, budget_elements=96, checkpoint_dir=workdir
            )
            assert resumed.total_io == clean.total_io
            assert resumed.accesses == clean.accesses
            for name, array in clean.arrays.items():
                np.testing.assert_array_equal(resumed.arrays[name], array)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
