"""Unit tests for repro.expr.ast."""

import pytest

from repro.expr.ast import Add, Mul, Statement, Sum, TensorRef
from repro.expr.tensor import Tensor


def ref(name, idx, *index_names):
    indices = tuple(idx[n] for n in index_names)
    return TensorRef(Tensor(name, indices), indices)


class TestTensorRef:
    def test_free_indices(self, idx):
        r = ref("A", idx, "a", "i")
        assert r.free == {idx["a"], idx["i"]}

    def test_arity_mismatch(self, idx):
        t = Tensor("A", (idx["a"], idx["i"]))
        with pytest.raises(ValueError, match="referenced with"):
            TensorRef(t, (idx["a"],))

    def test_range_mismatch(self, idx):
        t = Tensor("A", (idx["a"], idx["i"]))
        with pytest.raises(ValueError, match="range"):
            TensorRef(t, (idx["i"], idx["a"]))

    def test_renamed_reference_ok(self, idx):
        t = Tensor("A", (idx["a"], idx["i"]))
        r = TensorRef(t, (idx["b"], idx["j"]))
        assert r.free == {idx["b"], idx["j"]}

    def test_str(self, idx):
        assert str(ref("A", idx, "a", "i")) == "A(a,i)"


class TestMul:
    def test_free_union(self, idx):
        m = Mul((ref("A", idx, "a", "b"), ref("B", idx, "b", "c")))
        assert m.free == {idx["a"], idx["b"], idx["c"]}

    def test_needs_two_factors(self, idx):
        with pytest.raises(ValueError):
            Mul((ref("A", idx, "a"),))

    def test_refs_iterates_all(self, idx):
        m = Mul((ref("A", idx, "a"), ref("B", idx, "b"), ref("C", idx, "c")))
        assert [r.tensor.name for r in m.refs()] == ["A", "B", "C"]


class TestSum:
    def test_free_subtracts_summed(self, idx):
        body = Mul((ref("A", idx, "a", "b"), ref("B", idx, "b", "c")))
        s = Sum((idx["b"],), body)
        assert s.free == {idx["a"], idx["c"]}

    def test_sum_index_must_be_free_in_body(self, idx):
        body = ref("A", idx, "a")
        with pytest.raises(ValueError, match="not free"):
            Sum((idx["b"],), body)

    def test_duplicate_sum_indices_rejected(self, idx):
        body = ref("A", idx, "a")
        with pytest.raises(ValueError, match="[Dd]uplicate"):
            Sum((idx["a"], idx["a"]), body)

    def test_indices_normalized_sorted(self, idx):
        body = Mul((ref("A", idx, "a", "b"), ref("B", idx, "b", "a")))
        s1 = Sum((idx["b"], idx["a"]), body)
        s2 = Sum((idx["a"], idx["b"]), body)
        assert s1 == s2

    def test_empty_rejected(self, idx):
        with pytest.raises(ValueError):
            Sum((), ref("A", idx, "a"))


class TestAdd:
    def test_terms_must_agree_on_free(self, idx):
        with pytest.raises(ValueError, match="disagree"):
            Add(((1.0, ref("A", idx, "a")), (1.0, ref("B", idx, "b"))))

    def test_free(self, idx):
        a = Add(((1.0, ref("A", idx, "a")), (-1.0, ref("B", idx, "a"))))
        assert a.free == {idx["a"]}

    def test_str_has_signs(self, idx):
        a = Add(((1.0, ref("A", idx, "a")), (-1.0, ref("B", idx, "a"))))
        assert "-" in str(a)


class TestStatement:
    def test_lhs_rhs_match(self, idx):
        body = Mul((ref("A", idx, "a", "b"), ref("B", idx, "b", "c")))
        expr = Sum((idx["b"],), body)
        result = Tensor("S", (idx["a"], idx["c"]))
        stmt = Statement(result, expr)
        assert not stmt.accumulate

    def test_lhs_rhs_mismatch_rejected(self, idx):
        expr = ref("A", idx, "a", "b")
        result = Tensor("S", (idx["a"],))
        with pytest.raises(ValueError, match="do not match"):
            Statement(result, expr)


class TestProgram:
    def test_inputs_excludes_produced(self, fig1_program):
        names = {t.name for t in fig1_program.inputs()}
        assert names == {"A", "B", "C", "D"}

    def test_tensors_includes_result(self, fig1_program):
        names = {t.name for t in fig1_program.tensors()}
        assert names == {"A", "B", "C", "D", "S"}
