"""Native codegen backend: lowering, emitted nests, artifact store.

Parity discipline: the compiled nests must agree with the einsum
oracle -- float64 to the documented 1e-12 reassociation tolerance,
float32 to single-precision accumulation tolerance.  The store tests
assert the headline cache property: a warm process loads shared
objects with **zero** compiler invocations.  The degradation tests
assert the headline robustness property: a machine without any
compiler completes every plan through the embedded GEMM/einsum
fallback and says so in notes, never via an exception.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chem.workloads import random_contraction_program
from repro.codegen.cgen import c_source, py_source, render_nest_ir
from repro.engine.executor import random_inputs, run_statements
from repro.expr.ast import Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor
from repro.kernels import (
    ArtifactStore,
    KernelRunner,
    NativeEngine,
    artifact_key,
    compile_kernel_plan,
    native_available,
)
from repro.pipeline import SynthesisConfig, synthesize

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

RTOL, ATOL = 1e-12, 1e-12

needs_compiler = pytest.mark.skipif(
    not native_available(),
    reason="no native backend (numba or a C compiler) on this machine",
)


def _indices(extents):
    return [
        Index(f"i{k}", IndexRange(f"R{k}", e)) for k, e in enumerate(extents)
    ]


def _matmul_stmt(extents=(5, 6, 7)):
    i, j, k = _indices(extents)
    A = Tensor("A", (i, k))
    B = Tensor("B", (k, j))
    S = Tensor("S", (i, j))
    return Statement(
        S, Sum((k,), Mul((TensorRef(A, (i, k)), TensorRef(B, (k, j)))))
    )


def _spec_of(plan):
    """The first native nest spec in a compiled plan."""
    for sp in plan.statements:
        for term in sp.terms:
            if term.native is not None:
                return term.native
    raise AssertionError("plan lowered no native nests")


def _einsum_of(spec, ops):
    """The einsum oracle for a nest spec (handles diagonals)."""
    letters = [chr(ord("a") + p) for p in range(len(spec.extents))]
    sub = ",".join(
        "".join(letters[p] for p in axes) for axes in spec.operands
    )
    out = "".join(letters[: spec.nout])
    return np.einsum(f"{sub}->{out}", *ops, optimize=True)


@st.composite
def nest_statements(draw):
    """A random 2-3 operand contraction Statement (diagonals allowed)."""
    n = draw(st.integers(min_value=1, max_value=5))
    extents = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n)]
    idx = _indices(extents)
    nops = draw(st.integers(min_value=2, max_value=3))
    refs = []
    used = set()
    for k in range(nops):
        arity = draw(st.integers(min_value=1, max_value=min(3, n)))
        axes = draw(
            st.lists(
                st.sampled_from(idx), min_size=arity, max_size=arity
            )
        )
        used.update(axes)
        refs.append((f"X{k}", tuple(axes)))
    used = sorted(used, key=lambda i: i.name)
    kept = [i for i in used if draw(st.booleans())]
    out = tuple(draw(st.permutations(kept))) if kept else ()
    sums = tuple(i for i in used if i not in out)
    tensors = [Tensor(name, axes) for name, axes in refs]
    S = Tensor("S", out)
    product = Mul(
        tuple(
            TensorRef(t, axes) for t, (_, axes) in zip(tensors, refs)
        )
    )
    expr = Sum(sums, product) if sums else product
    return Statement(S, expr)


class TestLowering:
    def test_every_non_copy_term_lowers(self):
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        assert plan.mode == "native"
        assert plan.native_terms == 1
        spec = _spec_of(plan)
        assert spec.extents == (5, 6, 7)
        assert spec.nout == 2
        assert spec.out_shape == (5, 6)

    def test_gemm_fallback_is_embedded(self):
        """Native terms keep their GEMM lowering: the fallback is in
        the plan itself, so a no-compiler machine needs nothing new."""
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        term = plan.statements[0].terms[0]
        assert term.native is not None
        assert term.kind == "gemm" and term.gemm is not None

    def test_repeated_output_index_does_not_lower(self):
        i, = _indices([4])
        A = Tensor("A", (i,))
        S = Tensor("S", (i, i))
        stmt = Statement(S, TensorRef(A, (i,)))
        plan = compile_kernel_plan([stmt], mode="native")
        assert plan.native_terms == 0  # falls back, never miscompiles

    def test_ir_is_deterministic_and_content_bearing(self):
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        spec = _spec_of(plan)
        assert spec.ir() == render_nest_ir(spec)
        other = _spec_of(
            compile_kernel_plan([_matmul_stmt((5, 6, 8))], mode="native")
        )
        assert spec.ir() != other.ir()

    def test_specs_are_pickle_safe(self):
        plan = compile_kernel_plan([_matmul_stmt()], mode="native")
        revived = pickle.loads(pickle.dumps(plan))
        assert revived.native_terms == 1
        assert _spec_of(revived) == _spec_of(plan)


class TestEmission:
    def test_c_source_shape(self):
        spec = _spec_of(
            compile_kernel_plan([_matmul_stmt((3, 4, 100))], mode="native")
        )
        src = c_source(spec, "double", tile=64)
        assert "void kern(double coef," in src
        assert "restrict" in src
        assert "+= (double)coef * acc" in src
        assert "t2 += 64" in src  # the 100-extent sum loop is blocked

    def test_py_source_matches_einsum(self):
        spec = _spec_of(
            compile_kernel_plan([_matmul_stmt((3, 4, 70))], mode="native")
        )
        ns = {}
        exec(py_source(spec, tile=16), ns)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 70))
        b = rng.standard_normal((70, 4))
        out = np.zeros(12)
        ns["kern"](2.5, a.ravel(), b.ravel(), out)
        want = 2.5 * _einsum_of(spec, [a, b])
        np.testing.assert_allclose(
            out.reshape(3, 4), want, rtol=RTOL, atol=ATOL
        )


@needs_compiler
class TestCompiledParity:
    @settings(max_examples=60, **COMMON)
    @given(stmt=nest_statements(), seed=st.integers(0, 2**16))
    def test_native_plan_matches_einsum_oracle(self, stmt, seed):
        plan = compile_kernel_plan([stmt], mode="native")
        rng = np.random.default_rng(seed)
        inputs = {
            ref.tensor.name: rng.standard_normal(
                tuple(i.extent() for i in ref.indices)
            )
            for ref in stmt.expr.refs()
        }
        want = run_statements([stmt], inputs)[stmt.result.name]
        got = KernelRunner(plan).run(inputs)[stmt.result.name]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    @settings(max_examples=30, **COMMON)
    @given(stmt=nest_statements(), seed=st.integers(0, 2**16))
    def test_compiled_nest_both_dtypes(self, stmt, seed):
        """The engine-level kernels agree with einsum in float64 and
        float32 (single-precision accumulation tolerance)."""
        plan = compile_kernel_plan([stmt], mode="native")
        if plan.native_terms == 0:
            return  # repeated-output draw: nothing to compile
        spec = _spec_of(plan)
        engine = NativeEngine()
        rng = np.random.default_rng(seed)
        base = [
            rng.standard_normal(
                tuple(spec.extents[p] for p in axes)
            )
            for axes in spec.operands
        ]
        for dtype, rtol in ((np.float64, RTOL), (np.float32, 2e-4)):
            fn = engine.function(spec, dtype)
            assert fn is not None, engine.failure(spec, dtype)
            ops = [np.ascontiguousarray(a, dtype=dtype) for a in base]
            out = np.zeros(spec.out_shape, dtype=dtype)
            fn(1.0, ops, out)
            want = _einsum_of(spec, [o.astype(np.float64) for o in ops])
            np.testing.assert_allclose(
                out.astype(np.float64), want, rtol=rtol, atol=rtol
            )

    def test_tiled_summation_matches(self):
        """Extents beyond the tile size take the blocked loops; the
        partial sums must compose exactly (caller-zeroed += contract)."""
        stmt = _matmul_stmt((4, 3, 3 * 64 + 17))
        plan = compile_kernel_plan([stmt], mode="native")
        rng = np.random.default_rng(7)
        inputs = {
            "A": rng.standard_normal((4, 3 * 64 + 17)),
            "B": rng.standard_normal((3 * 64 + 17, 3)),
        }
        want = run_statements([stmt], inputs)["S"]
        got = KernelRunner(plan).run(inputs)["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_multi_statement_workload(self):
        program = random_contraction_program(seed=11)
        result = synthesize(program, SynthesisConfig(codegen="native"))
        inputs = random_inputs(result.program, None, seed=11)
        runner = result.kernel_runner()
        got = runner.run(inputs)
        want = run_statements(result.statements, inputs)
        for name in result.kernel_plan.outputs:
            np.testing.assert_allclose(
                got[name], want[name], rtol=1e-11, atol=1e-11
            )


@needs_compiler
class TestArtifactStore:
    def test_warm_hit_compiles_nothing(self, tmp_path):
        """The headline property: a second engine over the same store
        directory loads the shared object with zero compiler forks."""
        store = ArtifactStore(directory=str(tmp_path))
        stmt = _matmul_stmt((3, 4, 90))
        plan = compile_kernel_plan([stmt], mode="native")
        rng = np.random.default_rng(1)
        inputs = {
            "A": rng.standard_normal((3, 90)),
            "B": rng.standard_normal((90, 4)),
        }
        want = run_statements([stmt], inputs)["S"]

        cold = NativeEngine(store=store)
        got = KernelRunner(plan, engine=cold).run(inputs)["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)
        assert cold.stats()["compile_invocations"] >= 1

        warm = NativeEngine(store=store)
        got = KernelRunner(plan, engine=warm).run(inputs)["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)
        stats = warm.stats()
        assert stats["compile_invocations"] == 0
        assert stats["store_loads"] >= 1

    def test_memory_tier_revival_spills_and_loads(self):
        """A directory-less store still serves warm loads (bytes are
        spilled to engine scratch for the dynamic loader)."""
        store = ArtifactStore()
        spec = _spec_of(compile_kernel_plan([_matmul_stmt()], mode="native"))
        cold = NativeEngine(store=store)
        assert cold.function(spec) is not None
        warm = NativeEngine(store=store)
        assert warm.function(spec) is not None
        assert warm.stats()["compile_invocations"] == 0
        assert warm.stats()["store_loads"] == 1

    def test_key_includes_everything_the_bytes_depend_on(self):
        base = dict(
            nest_ir="nest-ir v1\nnames=a,b\nextents=2,3\nnout=1\nop0=0,1",
            dtype="<f8",
            backend="cc",
            compiler="cc 12.2.0 [/usr/bin/cc]",
            flags=("-O3",),
        )
        key = artifact_key(**base)
        assert key == artifact_key(**base)  # deterministic
        for field, other in [
            ("dtype", "<f4"),
            ("compiler", "cc 13.1.0 [/usr/bin/cc]"),
            ("backend", "numba"),
            ("flags", ("-O2",)),
            ("nest_ir", base["nest_ir"].replace("2,3", "2,4")),
        ]:
            assert artifact_key(**{**base, field: other}) != key, field

    def test_engine_key_tracks_dtype_and_tile(self):
        spec = _spec_of(compile_kernel_plan([_matmul_stmt()], mode="native"))
        engine = NativeEngine()
        assert engine.key(spec, np.float64) != engine.key(spec, np.float32)
        other = NativeEngine(tile=32)
        assert other.key(spec, np.float64) != engine.key(spec, np.float64)


class TestDegradation:
    def test_forced_off_engine_runs_on_fallback(self):
        stmt = _matmul_stmt()
        plan = compile_kernel_plan([stmt], mode="native")
        rng = np.random.default_rng(4)
        inputs = {
            "A": rng.standard_normal((5, 7)),
            "B": rng.standard_normal((7, 6)),
        }
        want = run_statements([stmt], inputs)["S"]
        engine = NativeEngine(backend="none")
        assert not engine.available()
        runner = KernelRunner(plan, engine=engine)
        got = runner.run(inputs)["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)
        assert any("unavailable" in note for note in runner.notes)

    def test_pipeline_degrades_native_to_gemm_with_note(self, monkeypatch):
        """codegen='native' on a compiler-less machine completes via
        the gemm path and records why -- never raises."""
        import repro.kernels.native as native_mod

        monkeypatch.setattr(
            native_mod, "_default_engine", NativeEngine(backend="none")
        )
        src = (
            "range N = 5; index i, j, k : N;\n"
            "tensor A(i, k); tensor B(k, j);\n"
            "C(i, j) = sum(k) A(i, k) * B(k, j);"
        )
        result = synthesize(src, SynthesisConfig(codegen="native"))
        assert result.codegen_mode == "gemm"
        assert result.native_artifacts == []
        assert result.kernel_plan.mode == "gemm"
        assert any(
            "native codegen requested" in n for n in result.last_run_notes
        )
        inputs = random_inputs(result.program, None, seed=2)
        got = result.kernel_runner().run(inputs)["C"]
        np.testing.assert_allclose(
            got, inputs["A"] @ inputs["B"], rtol=1e-10
        )

    @needs_compiler
    def test_broken_compiler_degrades_per_term(self):
        """A compiler that exists but fails still yields correct runs:
        the failure is remembered and the term uses its fallback."""
        stmt = _matmul_stmt()
        plan = compile_kernel_plan([stmt], mode="native")
        engine = NativeEngine(backend="cc")
        if engine.backend != "cc":
            pytest.skip("cc backend not available")
        engine._cc = "/bin/false"
        spec = _spec_of(plan)
        assert engine.function(spec) is None
        assert engine.failure(spec) is not None
        rng = np.random.default_rng(5)
        inputs = {
            "A": rng.standard_normal((5, 7)),
            "B": rng.standard_normal((7, 6)),
        }
        want = run_statements([stmt], inputs)["S"]
        runner = KernelRunner(plan, engine=engine)
        got = runner.run(inputs)["S"]
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)
        assert engine.stats()["failures"] == 1
        # the failure is remembered: no second compiler fork
        before = engine.stats()["compile_invocations"]
        assert engine.function(spec) is None
        assert engine.stats()["compile_invocations"] == before


@needs_compiler
class TestPipelineIntegration:
    SRC = (
        "range V = 10; range O = 5;\n"
        "index a, b : V; index i, j, k : O;\n"
        "tensor A(a, i); tensor B(i, j, k); tensor C(k, b);\n"
        "S(a, b, j) = sum(i, k) A(a,i) * B(i,j,k) * C(k,b);"
    )

    def test_native_mode_precompiles_and_reports(self):
        result = synthesize(self.SRC, SynthesisConfig(codegen="native"))
        assert result.codegen_mode == "native"
        assert result.kernel_plan.mode == "native"
        assert result.kernel_plan.native_terms >= 1
        assert len(result.native_artifacts) >= 1
        report = next(
            r for r in result.reports if r.name == "Code generation"
        )
        assert report.details["codegen mode"] == "native"
        assert "native backend" in report.details

    def test_auto_mode_stays_gemm(self):
        result = synthesize(self.SRC, SynthesisConfig(codegen="auto"))
        assert result.codegen_mode == "gemm"
        assert result.native_artifacts == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            synthesize(self.SRC, SynthesisConfig(codegen="fortran"))

    def test_native_result_survives_the_plan_cache(self, tmp_path):
        from repro.runtime.plan_cache import PlanCache

        cfg = SynthesisConfig(codegen="native")
        cache = PlanCache(directory=str(tmp_path))
        cold = synthesize(self.SRC, cfg, cache=cache)
        warm = synthesize(
            self.SRC, cfg, cache=PlanCache(directory=str(tmp_path))
        )
        assert warm.codegen_mode == "native"
        assert warm.native_artifacts == cold.native_artifacts
        inputs = random_inputs(warm.program, None, seed=9)
        np.testing.assert_allclose(
            warm.kernel_runner().run(inputs)["S"],
            cold.kernel_runner().run(inputs)["S"],
            rtol=RTOL,
            atol=ATOL,
        )
