"""Tests for the out-of-core paging simulator."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs
from repro.engine.outofcore import (
    PagedBufferPool,
    array_shapes,
    simulate_out_of_core,
)
from repro.codegen.builder import build_unfused
from repro.locality.tile_search import optimize_locality


def matmul(n=16):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    return prog, build_unfused(prog.statements)


class TestPagedBufferPool:
    def test_page_hit_no_read(self):
        pool = PagedBufferPool(64, 4, {"A": (8, 8)})
        pool.access("A", (0, 0), False)
        pool.access("A", (0, 1), False)  # same page
        assert pool.stats.disk_reads == 4

    def test_eviction_writes_back_dirty(self):
        pool = PagedBufferPool(4, 4, {"A": (8, 8)})  # single-page pool
        pool.access("A", (0, 0), True)  # dirty page
        pool.access("A", (4, 0), False)  # different page -> evict dirty
        assert pool.stats.disk_writes == 4
        assert pool.stats.evictions == 1

    def test_flush_writes_dirty(self):
        pool = PagedBufferPool(64, 4, {"A": (8, 8)})
        pool.access("A", (0, 0), True)
        pool.access("A", (4, 0), False)
        pool.flush()
        assert pool.stats.disk_writes == 4  # only the dirty page

    def test_unknown_array_ignored(self):
        pool = PagedBufferPool(16, 4, {})
        pool.access("E", (), True)
        assert pool.stats.disk_reads == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            PagedBufferPool(2, 4, {})
        with pytest.raises(ValueError):
            PagedBufferPool(16, 0, {})


class TestArrayShapes:
    def test_includes_inputs_and_allocs(self):
        prog, block = matmul(4)
        arrays = random_inputs(prog, seed=0)
        shapes = array_shapes(block, arrays)
        assert shapes["A"] == (4, 4)
        assert shapes["C"] == (4, 4)


class TestSimulateOutOfCore:
    def test_large_budget_cold_pages_only(self):
        n = 8
        prog, block = matmul(n)
        arrays = random_inputs(prog, seed=0)
        stats = simulate_out_of_core(
            block, arrays, budget_elements=10**6, page_elements=4
        )
        # 3 arrays x n^2 elements, each page read exactly once
        assert stats.disk_reads == 3 * n * n
        assert stats.evictions == 0
        # C's pages are dirty and flushed once
        assert stats.disk_writes == n * n

    def test_tight_budget_causes_paging(self):
        prog, block = matmul(16)
        arrays = random_inputs(prog, seed=0)
        loose = simulate_out_of_core(block, arrays, 10**6, 4)
        tight = simulate_out_of_core(block, arrays, 64, 4)
        assert tight.disk_reads > loose.disk_reads
        assert tight.evictions > 0

    def test_blocking_reduces_io(self):
        """The disk-level tile search's choice reduces measured I/O."""
        prog, block = matmul(16)
        arrays = random_inputs(prog, seed=1)
        budget = 96
        untiled = simulate_out_of_core(block, arrays, budget, 4)
        result = optimize_locality(block, capacity=budget)
        if result.tile_sizes:
            tiled = simulate_out_of_core(
                result.structure, arrays, budget, 4
            )
            assert tiled.total_io < untiled.total_io

    def test_io_monotone_in_budget(self):
        prog, block = matmul(12)
        arrays = random_inputs(prog, seed=2)
        ios = [
            simulate_out_of_core(block, arrays, budget, 4).total_io
            for budget in (16, 64, 256, 4096)
        ]
        assert ios == sorted(ios, reverse=True)

    def test_functions_do_not_page(self):
        from repro.chem.a3a import a3a_problem, fig3_structure

        problem = a3a_problem(V=3, O=2, Ci=10)
        block = fig3_structure(problem)
        arrays = random_inputs(problem.program, seed=3)
        stats = simulate_out_of_core(
            block, arrays, 10**6, 4, functions=problem.functions
        )
        # scalars dominate; only the amplitude input T pages in
        assert "f1" not in stats.per_array_reads
        assert "T" in stats.per_array_reads
