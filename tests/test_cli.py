"""Tests for the command-line interface."""

import re
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import build_parser, main

SRC = """
range V = 4;
range O = 2;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "input.tce"
    path.write_text(SRC)
    return str(path)


class TestParser:
    def test_grid_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["x.tce", "--grid", "2x2x2"])
        assert args.grid.dims == (2, 2, 2)

    def test_grid_single(self):
        args = build_parser().parse_args(["x.tce", "--grid", "4"])
        assert args.grid.dims == (4,)

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.tce", "--grid", "two"])


class TestMain:
    def test_basic_run(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Algebraic transformations" in out
        assert "Code generation" in out

    def test_show_structure(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt", "--show-structure"])
        assert rc == 0
        assert "for " in capsys.readouterr().out

    def test_show_code(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt", "--show-code"])
        assert rc == 0
        assert "def kernel(" in capsys.readouterr().out

    def test_grid_plans(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt", "--grid", "2", "--show-plans"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distribution plans" in out

    def test_missing_file(self, capsys):
        rc = main(["/nonexistent/path.tce"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.tce"
        bad.write_text("range V = ;")
        rc = main([str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_emit_kernel_is_importable(self, src_file, tmp_path, capsys):
        out_py = tmp_path / "kernel.py"
        rc = main([src_file, "--no-cache-opt", "--emit", str(out_py)])
        assert rc == 0
        namespace = {}
        exec(out_py.read_text(), namespace)
        kernel = namespace["kernel"]
        rng = np.random.default_rng(0)
        arrays = {
            "A": rng.standard_normal((4, 4, 2, 2)),
            "B": rng.standard_normal((4, 4, 4, 2)),
            "C": rng.standard_normal((4, 4, 2, 2)),
            "D": rng.standard_normal((4, 4, 4, 2)),
        }
        env = kernel(dict(arrays), {})
        assert env["S"].shape == (4, 4, 2, 2)

    def test_module_invocation(self, src_file):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", src_file, "--no-cache-opt"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "Algebraic transformations" in proc.stdout


class TestEmitSpmd:
    def test_emit_spmd_with_grid(self, src_file, tmp_path, capsys):
        out_py = tmp_path / "spmd.py"
        rc = main([
            src_file, "--no-cache-opt", "--grid", "2",
            "--emit-spmd", str(out_py),
        ])
        assert rc == 0
        text = out_py.read_text()
        assert "def rank_program_" in text
        assert "yield" in text
        compile(text, str(out_py), "exec")

    def test_emit_spmd_without_grid_fails(self, src_file, tmp_path, capsys):
        out_py = tmp_path / "spmd.py"
        rc = main([src_file, "--no-cache-opt", "--emit-spmd", str(out_py)])
        assert rc == 2
        assert "requires --grid" in capsys.readouterr().err

    def test_processors_flag(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt", "--processors", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chose grid" in out


SMALL_SRC = """
range N = 4;
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


@pytest.fixture
def small_file(tmp_path):
    path = tmp_path / "small.tce"
    path.write_text(SMALL_SRC)
    return str(path)


class TestExitCodes:
    """The documented exit-code contract: 2 spec, 3 budget, 4 execution."""

    def test_strict_budget_exhaustion_is_exit_3(self, src_file, capsys):
        rc = main([
            src_file, "--no-cache-opt",
            "--budget-nodes", "0", "--budget-strict",
        ])
        assert rc == 3
        err = capsys.readouterr().err
        assert "BudgetExceeded" in err

    def test_lenient_budget_degrades_to_success(self, src_file, capsys):
        rc = main([src_file, "--no-cache-opt", "--budget-nodes", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degraded" in out

    def test_bad_fault_spec_is_exit_2(self, small_file, capsys):
        rc = main([
            small_file, "--no-cache-opt", "--run",
            "--inject-fault", "explode:9",
        ])
        assert rc == 2
        assert "fault spec" in capsys.readouterr().err

    def test_inject_fault_requires_run(self, small_file, capsys):
        rc = main([small_file, "--no-cache-opt", "--inject-fault", "drop:0"])
        assert rc == 2
        assert "requires --run" in capsys.readouterr().err

    def test_unrecoverable_fault_is_exit_4(self, small_file, capsys):
        rc = main([
            small_file, "--no-cache-opt", "--grid", "2", "--run",
            "--inject-fault", "crash:0;crash:1;crash:2;crash:3;crash:4",
        ])
        assert rc == 4
        assert "restart" in capsys.readouterr().err


class TestRun:
    def test_run_validates_against_reference(self, small_file, capsys):
        rc = main([small_file, "--no-cache-opt", "--run"])
        assert rc == 0
        assert "match the reference executor" in capsys.readouterr().out

    def test_run_parallel_with_recovered_faults(self, small_file, capsys):
        rc = main([
            small_file, "--no-cache-opt", "--grid", "2", "--run",
            "--inject-fault", "drop:0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel outputs match" in out

    def test_run_with_checkpoint_dir(self, small_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        rc = main([
            small_file, "--no-cache-opt", "--run",
            "--checkpoint-dir", str(ckpt),
        ])
        assert rc == 0
        assert "match the reference executor" in capsys.readouterr().out
        # checkpoint is cleared after a successful run
        assert not (ckpt / "checkpoint.pkl").exists()


class TestProcessBackend:
    def test_run_with_process_backend(self, small_file, capsys):
        rc = main([
            small_file, "--no-cache-opt", "--grid", "2", "--run",
            "--backend", "process", "--procs", "2",
        ])
        assert rc == 0
        assert "parallel outputs match" in capsys.readouterr().out

    def test_process_backend_recovers_faults(self, small_file, capsys):
        rc = main([
            small_file, "--no-cache-opt", "--grid", "2", "--run",
            "--backend", "process", "--inject-fault", "drop:0;crash:1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "injected faults recovered" in out

    def test_local_fallback_warning_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "mixed.tce"
        path.write_text("""
        range N = 4;
        index a, b, c : N;
        tensor A(a, b); tensor B(b, c); tensor G(a, c);
        R(a, c) = sum(b) A(a, b) * B(b, c) + G(a, c);
        """)
        rc = main([str(path), "--no-cache-opt", "--grid", "2", "--run"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "executed locally" in err


class TestPlanCacheFlag:
    def test_cold_then_warm(self, small_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "plans")
        rc = main([small_file, "--no-cache-opt", "--plan-cache", cache_dir])
        assert rc == 0
        assert "miss" in capsys.readouterr().out
        rc = main([small_file, "--no-cache-opt", "--plan-cache", cache_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Plan cache" in out and "disk" in out

    def test_cached_plan_still_runs(self, small_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "plans")
        args = [
            small_file, "--no-cache-opt", "--grid", "2",
            "--plan-cache", cache_dir, "--run",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # warm: revived result must execute
        out = capsys.readouterr().out
        assert "disk" in out
        assert "parallel outputs match" in out


class TestArgumentValidation:
    """Out-of-range values argparse accepts must fail fast with one
    structured diagnostic line and the spec exit code (2)."""

    def _assert_spec_error(self, capsys, rc, fragment):
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert fragment in err

    def test_procs_zero_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--backend", "process", "--procs", "0"])
        self._assert_spec_error(capsys, rc, "--procs")

    def test_procs_negative_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--backend", "process", "--procs", "-2"])
        self._assert_spec_error(capsys, rc, "--procs")

    def test_processors_zero_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--processors", "0"])
        self._assert_spec_error(capsys, rc, "--processors")

    def test_negative_budget_ms_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--budget-ms", "-5"])
        self._assert_spec_error(capsys, rc, "--budget-ms")

    def test_negative_budget_nodes_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--budget-nodes", "-3"])
        self._assert_spec_error(capsys, rc, "--budget-nodes")

    def test_tune_trials_zero_is_exit_2(self, small_file, capsys):
        rc = main([small_file, "--autotune", "--tune-trials", "0"])
        self._assert_spec_error(capsys, rc, "--tune-trials")

    def test_tuning_db_requires_autotune(self, small_file, tmp_path, capsys):
        rc = main([small_file, "--tuning-db", str(tmp_path / "db")])
        self._assert_spec_error(capsys, rc, "--autotune")

    def test_validation_precedes_file_access(self, capsys):
        """Bad flag values are diagnosed before the input is opened."""
        rc = main(["/nonexistent/input.tce", "--procs", "0"])
        self._assert_spec_error(capsys, rc, "--procs")


class TestAutotuneFlag:
    def test_autotune_reports_stage(self, small_file, capsys):
        rc = main([small_file, "--autotune", "--tune-trials", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Autotuning" in out
        assert "measurement runs" in out

    def test_tuning_db_cold_then_warm(self, small_file, tmp_path, capsys):
        db_dir = str(tmp_path / "tune")
        args = [
            small_file, "--autotune", "--tune-trials", "2",
            "--tuning-db", db_dir,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "miss (measured and stored)" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "hit" in out and "disk" in out
        assert re.search(r"measurement runs\s*: 0\b", out)

    def test_autotuned_result_still_validates(self, small_file, capsys):
        rc = main([small_file, "--autotune", "--tune-trials", "2", "--run"])
        assert rc == 0
        assert "match the reference executor" in capsys.readouterr().out
