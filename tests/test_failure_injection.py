"""Failure-injection tests: corrupted inputs, broken plans, dropped
messages, and crashed ranks must fail loudly (with typed, named-tensor
errors) or recover exactly -- never silently corrupt results."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.codegen.builder import build_unfused
from repro.codegen.interp import execute
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.parallel.spmd import LocalComm, run_spmd
from repro.robustness import (
    CommFailure,
    FaultSchedule,
    PlanError,
    ReproError,
    ShapeError,
    SpecError,
)


def matmul(n=4):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    return prog


class TestBadInputs:
    def test_wrong_shape_array_fails(self):
        prog = matmul()
        block = build_unfused(prog.statements)
        bad = {
            "A": np.zeros((4, 4)),
            "B": np.zeros((2, 2)),  # wrong shape
        }
        with pytest.raises(ShapeError, match="tensor 'B'") as info:
            execute(block, bad)
        assert info.value.tensor == "B"
        # ShapeError is a ValueError: pre-taxonomy callers still catch it
        assert isinstance(info.value, ValueError)

    def test_wrong_shape_in_dense_oracle(self):
        prog = matmul()
        arrays = random_inputs(prog, seed=0)
        arrays["A"] = np.zeros((3, 5))
        with pytest.raises(ShapeError, match="tensor 'A'"):
            evaluate_expression(prog.statements[0].expr, arrays)

    def test_missing_input_named(self):
        prog = matmul()
        expr = prog.statements[0].expr
        with pytest.raises(SpecError, match="no array provided for tensor 'B'"):
            evaluate_expression(expr, {"A": np.zeros((4, 4))})

    def test_missing_input_in_simulator(self):
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        plan = optimize_distribution(tree, grid)
        with pytest.raises(SpecError, match="tensor 'B'") as info:
            GridSimulator(grid).run(plan, {"A": np.zeros((4, 4))})
        # SpecError is a KeyError: pre-taxonomy callers still catch it
        assert isinstance(info.value, KeyError)

    def test_non_numeric_dtype_rejected(self):
        prog = matmul()
        block = build_unfused(prog.statements)
        bad = {
            "A": np.zeros((4, 4)),
            "B": np.array([["x"] * 4] * 4, dtype=object),
        }
        with pytest.raises(ShapeError, match="tensor 'B'"):
            execute(block, bad)

    def test_nan_propagates_not_hidden(self):
        """NaNs in inputs surface in outputs (no silent masking) --
        finite-checking is opt-in, not a default."""
        prog = matmul()
        block = build_unfused(prog.statements)
        arrays = random_inputs(prog, seed=0)
        arrays["A"] = arrays["A"].copy()
        arrays["A"][0, 0] = np.nan
        env = execute(block, arrays)
        assert np.isnan(env["C"][0]).any()

    def test_nan_rejected_when_check_finite(self):
        prog = matmul()
        block = build_unfused(prog.statements)
        arrays = random_inputs(prog, seed=0)
        arrays["A"] = arrays["A"].copy()
        arrays["A"][0, 0] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            execute(block, arrays, check_finite=True)


class TestBrokenPlans:
    def test_mismatched_plan_and_tree(self):
        """A plan from one tree applied to a different tree's simulator
        run fails with a PlanError (no cross-wired silent success)."""
        prog = matmul()
        tree1 = expression_to_ptree(prog.statements[0].expr)
        tree2 = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        plan = optimize_distribution(tree1, grid)
        # tree2 has different node ids -> lookups must fail
        plan.root = tree2
        with pytest.raises(PlanError) as info:
            GridSimulator(grid).run(plan, random_inputs(prog, seed=0))
        # PlanError is a KeyError: the original contract still holds
        assert isinstance(info.value, KeyError)
        assert isinstance(info.value, ReproError)


class TestCommFailures:
    def test_recv_without_send_in_generated_pattern(self):
        """LocalComm.recv_all on an empty mailbox returns nothing; the
        generated program tolerates ranks with no incoming pieces (it
        zero-fills only regions it owns), so results stay exact even on
        grids where some ranks receive nothing."""
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((4,))
        plan = optimize_distribution(tree, grid)
        arrays = random_inputs(prog, seed=1)
        run = run_spmd(plan, arrays)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)

    def test_dropped_message_detected(self):
        """Dropping one message corrupts the gathered result -- the
        validation harness (not silence) is what catches it."""
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        from repro.parallel.dist import Distribution, SINGLE

        pinned = Distribution((SINGLE,))
        plan = optimize_distribution(tree, grid, result_dist=pinned)
        arrays = random_inputs(prog, seed=2)
        want = evaluate_expression(prog.statements[0].expr, arrays)

        # sabotage: a comm that drops every second cross-rank message
        class LossyComm(LocalComm):
            def __init__(self, grid):
                super().__init__(grid)
                self._count = 0

            def send(self, source, dest, tag, payload):
                self._count += 1
                if source != dest and self._count % 2 == 0:
                    return  # dropped on the floor
                super().send(source, dest, tag, payload)

        from repro.parallel.spmd import generate_spmd_source

        source_code = generate_spmd_source(plan)
        namespace = {}
        exec(compile(source_code, "<spmd>", "exec"), namespace)
        program = namespace["rank_program"]
        comm = LossyComm(grid)
        states = {r: {} for r in grid.ranks()}
        gens = {r: program(r, comm, arrays, states[r]) for r in grid.ranks()}
        live = dict(gens)
        while live:
            done = []
            for rank, gen in live.items():
                try:
                    next(gen)
                except StopIteration:
                    done.append(rank)
            for rank in done:
                del live[rank]
        # assemble and verify the corruption is visible
        from repro.parallel.spmd_runtime import paste

        out = np.zeros((4, 4))
        touched = False
        for rank, state in states.items():
            box, blk = state.get("__result__", (None, None))
            if box is not None:
                paste(out, ((0, 4), (0, 4)), box, blk)
                touched = True
        if comm._count >= 2 and touched:
            assert not np.allclose(out, want)


class TestFaultTolerantSpmd:
    """Injected faults recovered by the runtime: results stay exact."""

    def _plan_and_inputs(self, seed=3):
        from repro.parallel.dist import Distribution, SINGLE
        from repro.parallel.partition import canonical_plan

        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        # canonical (unsearched) plan: every node block-distributed, so
        # the program genuinely communicates (the searched optimum on
        # this tiny workload is communication-free)
        plan = canonical_plan(
            tree, grid, result_dist=Distribution((SINGLE,))
        )
        arrays = random_inputs(prog, seed=seed)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        return plan, arrays, want

    def test_dropped_messages_recovered_by_retry(self):
        """Messages dropped within the retry limit are retransmitted;
        the run is bit-identical to a fault-free run."""
        plan, arrays, want = self._plan_and_inputs()
        clean = run_spmd(plan, arrays)
        faults = FaultSchedule(drop_messages=(0, 2), drop_attempts=1)
        run = run_spmd(plan, arrays, faults=faults)
        assert run.comm.dropped == 2
        assert run.comm.retries == 2
        assert np.array_equal(run.result, clean.result)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)
        # retransmissions are charged: the lossy run sends strictly more
        assert run.comm.total_traffic > clean.comm.total_traffic

    def test_drop_beyond_retry_limit_raises(self):
        plan, arrays, _ = self._plan_and_inputs()
        faults = FaultSchedule(drop_messages=(0,), drop_attempts=10)
        with pytest.raises(CommFailure, match="retries"):
            run_spmd(plan, arrays, faults=faults, max_retries=2)

    def test_rank_crash_restart_bit_identical(self):
        """A crashed superstep triggers a statement restart; the final
        result is bit-identical to a fault-free run."""
        plan, arrays, want = self._plan_and_inputs(seed=4)
        clean = run_spmd(plan, arrays)
        faults = FaultSchedule(crash_supersteps=(1,))
        run = run_spmd(plan, arrays, faults=faults)
        assert run.restarts == 1
        assert np.array_equal(run.result, clean.result)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)

    def test_crash_beyond_restart_limit_raises(self):
        plan, arrays, _ = self._plan_and_inputs()
        faults = FaultSchedule(crash_supersteps=(0, 1, 2, 3, 4, 5))
        with pytest.raises(CommFailure, match="restart"):
            run_spmd(plan, arrays, faults=faults, max_restarts=2)


class TestRetryBackoff:
    """The communicator's backoff delay is injectable, so schedules can
    be asserted without wall-clock sleeping."""

    def test_backoff_sequence_recorded(self):
        from repro.parallel.dist import Distribution, SINGLE
        from repro.parallel.partition import canonical_plan

        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        plan = canonical_plan(
            tree, ProcessorGrid((2,)), result_dist=Distribution((SINGLE,))
        )
        arrays = random_inputs(prog, seed=0)
        delays = []
        faults = FaultSchedule(drop_messages=(0,), drop_attempts=2)
        run = run_spmd(
            plan, arrays, faults=faults,
            retry_backoff=0.5, sleep=delays.append,
        )
        # message 0 dropped twice: retry 1 sleeps 0.5s, retry 2 sleeps 1.0s
        assert delays == [0.5, 1.0]
        assert run.comm.retries == 2

    def test_zero_backoff_never_sleeps(self):
        from repro.parallel.dist import Distribution, SINGLE
        from repro.parallel.partition import canonical_plan

        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        plan = canonical_plan(
            tree, ProcessorGrid((2,)), result_dist=Distribution((SINGLE,))
        )
        arrays = random_inputs(prog, seed=0)
        delays = []
        faults = FaultSchedule(drop_messages=(0,), drop_attempts=1)
        run_spmd(plan, arrays, faults=faults, sleep=delays.append)
        assert delays == []
