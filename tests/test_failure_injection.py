"""Failure-injection tests: corrupted inputs, broken plans, and
inconsistent structures must fail loudly, never silently."""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.codegen.builder import build_unfused
from repro.codegen.interp import execute
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.parallel.spmd import LocalComm, run_spmd


def matmul(n=4):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    return prog


class TestBadInputs:
    def test_wrong_shape_array_fails(self):
        prog = matmul()
        block = build_unfused(prog.statements)
        bad = {
            "A": np.zeros((4, 4)),
            "B": np.zeros((2, 2)),  # wrong shape
        }
        with pytest.raises(IndexError):
            execute(block, bad)

    def test_missing_input_in_simulator(self):
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        plan = optimize_distribution(tree, grid)
        with pytest.raises(KeyError, match="no input array"):
            GridSimulator(grid).run(plan, {"A": np.zeros((4, 4))})

    def test_nan_propagates_not_hidden(self):
        """NaNs in inputs surface in outputs (no silent masking)."""
        prog = matmul()
        block = build_unfused(prog.statements)
        arrays = random_inputs(prog, seed=0)
        arrays["A"] = arrays["A"].copy()
        arrays["A"][0, 0] = np.nan
        env = execute(block, arrays)
        assert np.isnan(env["C"][0]).any()


class TestBrokenPlans:
    def test_mismatched_plan_and_tree(self):
        """A plan from one tree applied to a different tree's simulator
        run fails (no cross-wired silent success)."""
        prog = matmul()
        tree1 = expression_to_ptree(prog.statements[0].expr)
        tree2 = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        plan = optimize_distribution(tree1, grid)
        # tree2 has different node ids -> lookups must fail
        plan.root = tree2
        with pytest.raises(KeyError):
            GridSimulator(grid).run(plan, random_inputs(prog, seed=0))


class TestCommFailures:
    def test_recv_without_send_in_generated_pattern(self):
        """LocalComm.recv_all on an empty mailbox returns nothing; the
        generated program tolerates ranks with no incoming pieces (it
        zero-fills only regions it owns), so results stay exact even on
        grids where some ranks receive nothing."""
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((4,))
        plan = optimize_distribution(tree, grid)
        arrays = random_inputs(prog, seed=1)
        run = run_spmd(plan, arrays)
        want = evaluate_expression(prog.statements[0].expr, arrays)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)

    def test_dropped_message_detected(self):
        """Dropping one message corrupts the gathered result -- the
        validation harness (not silence) is what catches it."""
        prog = matmul()
        tree = expression_to_ptree(prog.statements[0].expr)
        grid = ProcessorGrid((2,))
        from repro.parallel.dist import Distribution, SINGLE

        pinned = Distribution((SINGLE,))
        plan = optimize_distribution(tree, grid, result_dist=pinned)
        arrays = random_inputs(prog, seed=2)
        want = evaluate_expression(prog.statements[0].expr, arrays)

        # sabotage: a comm that drops every second cross-rank message
        class LossyComm(LocalComm):
            def __init__(self, grid):
                super().__init__(grid)
                self._count = 0

            def send(self, source, dest, tag, payload):
                self._count += 1
                if source != dest and self._count % 2 == 0:
                    return  # dropped on the floor
                super().send(source, dest, tag, payload)

        from repro.parallel.spmd import generate_spmd_source

        source_code = generate_spmd_source(plan)
        namespace = {}
        exec(compile(source_code, "<spmd>", "exec"), namespace)
        program = namespace["rank_program"]
        comm = LossyComm(grid)
        states = {r: {} for r in grid.ranks()}
        gens = {r: program(r, comm, arrays, states[r]) for r in grid.ranks()}
        live = dict(gens)
        while live:
            done = []
            for rank, gen in live.items():
                try:
                    next(gen)
                except StopIteration:
                    done.append(rank)
            for rank in done:
                del live[rank]
        # assemble and verify the corruption is visible
        from repro.parallel.spmd_runtime import paste

        out = np.zeros((4, 4))
        touched = False
        for rank, state in states.items():
            box, blk = state.get("__result__", (None, None))
            if box is not None:
                paste(out, ((0, 4), (0, 4)), box, blk)
                touched = True
        if comm._count >= 2 and touched:
            assert not np.allclose(out, want)
