"""The HTTP compilation service: endpoints, coalescing, tenants.

Every test boots a real :class:`~repro.server.app.ReproServer` on an
OS-assigned port and speaks actual HTTP through the stdlib client --
the suite covers the wire format, the error taxonomy mapping, request
coalescing (N identical concurrent requests -> exactly one synthesis),
and multi-tenant admission (an exhausted tenant degrades, a healthy
one keeps full fidelity; never a 5xx either way).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.pipeline import synthesize
from repro.robustness.budget import Budget
from repro.server.app import ReproServer, ServerConfig
from repro.server.client import arequest
from repro.server.tenants import TenantPolicy, TenantRegistry
from repro.server.wire import config_from_options
from repro.robustness.errors import SpecError

MATMUL = """
range N = 8;
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""

#: a three-operand contraction: operation minimization has real work
#: to do, so a budget tracker accumulates search nodes
CHAIN = """
range N = 6;
index i, j, k, l : N;
tensor A(i, j);
tensor B(j, k);
tensor C(k, l);
D(i, l) = sum(j, k) A(i, j) * B(j, k) * C(k, l);
"""


def serve(test, config=None):
    """Run async ``test(app, host, port)`` against a live server."""

    async def wrapper():
        app = ReproServer(config or ServerConfig(port=0))
        await app.start()
        try:
            return await test(app, app.host, app.port)
        finally:
            await app.stop()

    return asyncio.run(wrapper())


class TestHttpSurface:
    def test_index_lists_endpoints(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/")
            assert status == 200
            assert "POST /v1/synthesize" in body["endpoints"]

        serve(check)

    def test_unknown_path_is_404_with_endpoints(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/nope")
            assert status == 404
            assert body["error"] == "not_found"
            assert any("synthesize" in e for e in body["endpoints"])

        serve(check)

    def test_wrong_method_is_405(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/v1/synthesize")
            assert status == 405
            assert body["error"] == "method_not_allowed"

        serve(check)

    def test_bad_json_is_400(self):
        async def check(app, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            blob = b"not json"
            writer.write(
                b"POST /v1/synthesize HTTP/1.1\r\n"
                b"Content-Length: " + str(len(blob)).encode() + b"\r\n"
                b"\r\n" + blob
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            assert b"bad_json" in raw

        serve(check)

    def test_missing_program_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize", {}
            )
            assert status == 400
            assert body["error"] == "SpecError"
            assert "program" in body["detail"]

        serve(check)

    def test_unknown_field_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "prgram": "typo"},
            )
            assert status == 400
            assert "prgram" in body["detail"]

        serve(check)

    def test_parse_error_is_400_not_500(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": "range N = ;;;"},
            )
            assert status == 400
            assert body["error"] == "ParseError"

        serve(check)


class TestSynthesize:
    def test_miss_then_memory_hit(self):
        async def check(app, host, port):
            payload = {"program": MATMUL, "options": {"grid": "2x2"}}
            status, first = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 200
            assert first["cached"] == "miss"
            assert first["partition_plans"] == ["C"]
            status, second = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 200
            assert second["cached"] == "memory"
            assert second["key"] == first["key"]
            assert second["source_sha256"] == first["source_sha256"]

        serve(check)

    def test_distinct_options_distinct_keys(self):
        async def check(app, host, port):
            _, a = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            _, b = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "options": {"grid": "2x2"}},
            )
            assert a["key"] != b["key"]

        serve(check)

    def test_plan_persists_on_disk_across_servers(self, tmp_path):
        config = ServerConfig(port=0, plan_cache_dir=str(tmp_path))

        async def first(app, host, port):
            _, body = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            assert body["cached"] == "miss"

        serve(first, config)
        config2 = ServerConfig(port=0, plan_cache_dir=str(tmp_path))

        async def second(app, host, port):
            _, body = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            assert body["cached"] == "disk"

        serve(second, config2)


class TestCoalescing:
    def test_concurrent_identical_requests_one_synthesis(self):
        """N identical cold requests -> exactly 1 synthesis (the plan
        cache records one miss), and every response carries the same
        plan (bit-identical generated source)."""
        n = 5
        release = threading.Event()

        def gated_synthesize(program, config, cache=None):
            release.wait(timeout=30)
            return synthesize(program, config, cache=cache)

        config = ServerConfig(
            port=0, workers=2, synthesize_fn=gated_synthesize
        )

        async def check(app, host, port):
            payload = {"program": MATMUL, "options": {"grid": "2x2"}}
            requests = [
                asyncio.create_task(
                    arequest(host, port, "POST", "/v1/synthesize", payload)
                )
                for _ in range(n)
            ]
            # wait until the followers have piled onto the leader's
            # in-flight future, then let the one synthesis proceed
            for _ in range(1000):
                if app.coalescer.coalesced >= n - 1:
                    break
                await asyncio.sleep(0.01)
            assert app.coalescer.coalesced == n - 1
            assert app.coalescer.inflight == 1
            release.set()
            responses = await asyncio.gather(*requests)
            assert all(status == 200 for status, _ in responses)
            bodies = [body for _, body in responses]
            assert app.plan_cache.misses == 1, "exactly one synthesis"
            assert app.coalescer.leaders == 1
            assert sorted(b["coalesced"] for b in bodies) == [
                False, True, True, True, True,
            ]
            hashes = {b["source_sha256"] for b in bodies}
            assert len(hashes) == 1, "all plans bit-identical"
            keys = {b["key"] for b in bodies}
            assert len(keys) == 1
            assert app.plan_cache.stats()["coalesced"] == n - 1

        serve(check, config)

    def test_coalesced_failure_propagates_to_all_without_leak(self):
        n = 3
        release = threading.Event()

        def failing_synthesize(program, config, cache=None):
            release.wait(timeout=30)
            raise SpecError("synthetic failure", stage="test")

        config = ServerConfig(
            port=0, workers=2, synthesize_fn=failing_synthesize
        )

        async def check(app, host, port):
            payload = {"program": MATMUL}
            requests = [
                asyncio.create_task(
                    arequest(host, port, "POST", "/v1/synthesize", payload)
                )
                for _ in range(n)
            ]
            for _ in range(1000):
                if app.coalescer.coalesced >= n - 1:
                    break
                await asyncio.sleep(0.01)
            release.set()
            responses = await asyncio.gather(*requests)
            assert [status for status, _ in responses] == [400] * n
            assert app.coalescer.inflight == 0, "key cleared for retries"

        serve(check, config)


class TestTenants:
    def _registry(self):
        return TenantRegistry(
            policies={
                "metered": TenantPolicy(
                    name="metered",
                    budget=Budget(max_nodes=10_000_000),
                    allowance_nodes=1,
                ),
            },
        )

    def test_exhausted_tenant_degrades_other_tenant_full_fidelity(self):
        config = ServerConfig(port=0, tenants=self._registry())

        async def check(app, host, port):
            # the metered tenant's first request runs a real search and
            # burns its 1-node allowance
            status, first = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "metered",
                 "result": "checksum"},
            )
            assert status == 200
            assert first["degraded"] == []
            assert first["admission"]["nodes_charged"] > 0
            # now exhausted: stages degrade, response stays 200 and says so
            status, second = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "metered",
                 "result": "checksum"},
            )
            assert status == 200
            assert second["admission"]["exhausted"] is True
            assert second["admission"]["budget"]["max_nodes"] == 0
            assert second["degraded"] != []
            # an unmetered tenant is untouched by the noisy neighbour
            status, other = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "other", "result": "checksum"},
            )
            assert status == 200
            assert other["degraded"] == []
            assert other["admission"]["exhausted"] is False
            # degraded or not, the mathematics is identical
            assert second["outputs"]["D"]["sum"] == pytest.approx(
                other["outputs"]["D"]["sum"], rel=1e-9
            )
            stats = app.tenants.stats()
            assert stats["metered"]["exhausted"] is True
            assert stats["metered"]["degraded_requests"] == 1
            assert stats["other"]["degraded_requests"] == 0

        serve(check, config)

    def test_tenants_file_round_trip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"default": {"budget_ms": 2000},'
            ' "tenants": {"team-a": {"budget_nodes": 50,'
            ' "allowance_nodes": 100}}}'
        )
        registry = TenantRegistry.from_file(str(path))
        account = registry.account("team-a")
        assert account.policy.budget.max_nodes == 50
        assert account.policy.allowance_nodes == 100
        unknown = registry.account("walk-in")
        assert unknown.policy.budget.deadline_ms == 2000

    def test_tenants_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": {"a": {"budget_mss": 1}}}')
        with pytest.raises(SpecError, match="budget_mss"):
            TenantRegistry.from_file(str(path))


class TestExecute:
    def test_process_and_interp_agree(self):
        async def check(app, host, port):
            _, dist = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": "2x2"},
                 "result": "checksum", "seed": 7},
            )
            _, local = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "result": "checksum", "seed": 7},
            )
            assert dist["backend"] == "process"
            assert local["backend"] == "interp"
            assert dist["outputs"]["C"]["shape"] == [8, 8]
            assert dist["outputs"]["C"]["sum"] == pytest.approx(
                local["outputs"]["C"]["sum"], rel=1e-9
            )

        serve(check)

    def test_explicit_inputs_arrays_mode(self):
        async def check(app, host, port):
            eye = [[1.0 if r == c else 0.0 for c in range(8)]
                   for r in range(8)]
            ones = [[1.0] * 8 for _ in range(8)]
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "inputs": {"A": eye, "B": ones}},
            )
            assert status == 200
            assert body["outputs"]["C"] == ones

        serve(check)

    def test_process_backend_without_grid_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "backend": "process"},
            )
            assert status == 400
            assert "partition plans" in body["detail"]

        serve(check)

    def test_faults_through_server_recover(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": 2},
                 "faults": "drop:0;crash:1", "result": "checksum",
                 "seed": 3},
            )
            assert status == 200
            _, clean = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": 2},
                 "result": "checksum", "seed": 3},
            )
            assert body["outputs"]["C"]["sum"] == pytest.approx(
                clean["outputs"]["C"]["sum"], rel=1e-9
            )

        serve(check)


class TestHealthz:
    def test_counters_surface(self):
        async def check(app, host, port):
            payload = {"program": MATMUL}
            await arequest(host, port, "POST", "/v1/synthesize", payload)
            await arequest(host, port, "POST", "/v1/synthesize", payload)
            status, body = await arequest(host, port, "GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["requests"]["POST /v1/synthesize"] == 2
            assert body["plan_cache"]["misses"] == 1
            assert body["plan_cache"]["memory_hits"] == 1
            assert "coalesced" in body["plan_cache"]
            assert body["tenants"]["anonymous"]["requests"] == 2
            stats_status, stats = await arequest(host, port, "GET", "/stats")
            assert stats_status == 200
            assert stats["plan_cache"]["misses"] == 1

        serve(check)


class TestWireValidation:
    def test_grid_and_processors_conflict(self):
        with pytest.raises(SpecError, match="not both"):
            config_from_options({"grid": 2, "processors": 2})

    def test_unknown_option_named(self):
        with pytest.raises(SpecError, match="grdi"):
            config_from_options({"grdi": 2})

    def test_bad_binding_rejected(self):
        with pytest.raises(SpecError, match="positive integer"):
            config_from_options({"bindings": {"N": -4}})

    def test_grid_string_parses(self):
        config = config_from_options({"grid": "2x2"})
        assert config.grid.dims == (2, 2)
