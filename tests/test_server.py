"""The HTTP compilation service: endpoints, coalescing, tenants.

Every test boots a real :class:`~repro.server.app.ReproServer` on an
OS-assigned port and speaks actual HTTP through the stdlib client --
the suite covers the wire format, the error taxonomy mapping, request
coalescing (N identical concurrent requests -> exactly one synthesis),
and multi-tenant admission (an exhausted tenant degrades, a healthy
one keeps full fidelity; never a 5xx either way).
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.pipeline import synthesize
from repro.robustness.budget import Budget
from repro.server.app import ReproServer, ServerConfig
from repro.server.client import arequest
from repro.server.tenants import TenantPolicy, TenantRegistry
from repro.server.wire import config_from_options
from repro.robustness.errors import SpecError

MATMUL = """
range N = 8;
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""

#: a three-operand contraction: operation minimization has real work
#: to do, so a budget tracker accumulates search nodes
CHAIN = """
range N = 6;
index i, j, k, l : N;
tensor A(i, j);
tensor B(j, k);
tensor C(k, l);
D(i, l) = sum(j, k) A(i, j) * B(j, k) * C(k, l);
"""


def serve(test, config=None):
    """Run async ``test(app, host, port)`` against a live server."""

    async def wrapper():
        app = ReproServer(config or ServerConfig(port=0))
        await app.start()
        try:
            return await test(app, app.host, app.port)
        finally:
            await app.stop()

    return asyncio.run(wrapper())


class TestHttpSurface:
    def test_index_lists_endpoints(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/")
            assert status == 200
            assert "POST /v1/synthesize" in body["endpoints"]

        serve(check)

    def test_unknown_path_is_404_with_endpoints(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/nope")
            assert status == 404
            assert body["error"] == "not_found"
            assert any("synthesize" in e for e in body["endpoints"])

        serve(check)

    def test_wrong_method_is_405(self):
        async def check(app, host, port):
            status, body = await arequest(host, port, "GET", "/v1/synthesize")
            assert status == 405
            assert body["error"] == "method_not_allowed"

        serve(check)

    def test_bad_json_is_400(self):
        async def check(app, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            blob = b"not json"
            writer.write(
                b"POST /v1/synthesize HTTP/1.1\r\n"
                b"Content-Length: " + str(len(blob)).encode() + b"\r\n"
                b"\r\n" + blob
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            assert b"bad_json" in raw

        serve(check)

    def test_missing_program_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize", {}
            )
            assert status == 400
            assert body["error"] == "SpecError"
            assert "program" in body["detail"]

        serve(check)

    def test_unknown_field_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "prgram": "typo"},
            )
            assert status == 400
            assert "prgram" in body["detail"]

        serve(check)

    def test_parse_error_is_400_not_500(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": "range N = ;;;"},
            )
            assert status == 400
            assert body["error"] == "ParseError"

        serve(check)


class TestSynthesize:
    def test_miss_then_memory_hit(self):
        async def check(app, host, port):
            payload = {"program": MATMUL, "options": {"grid": "2x2"}}
            status, first = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 200
            assert first["cached"] == "miss"
            assert first["partition_plans"] == ["C"]
            status, second = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 200
            assert second["cached"] == "memory"
            assert second["key"] == first["key"]
            assert second["source_sha256"] == first["source_sha256"]

        serve(check)

    def test_distinct_options_distinct_keys(self):
        async def check(app, host, port):
            _, a = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            _, b = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "options": {"grid": "2x2"}},
            )
            assert a["key"] != b["key"]

        serve(check)

    def test_plan_persists_on_disk_across_servers(self, tmp_path):
        config = ServerConfig(port=0, plan_cache_dir=str(tmp_path))

        async def first(app, host, port):
            _, body = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            assert body["cached"] == "miss"

        serve(first, config)
        config2 = ServerConfig(port=0, plan_cache_dir=str(tmp_path))

        async def second(app, host, port):
            _, body = await arequest(
                host, port, "POST", "/v1/synthesize", {"program": MATMUL}
            )
            assert body["cached"] == "disk"

        serve(second, config2)


class TestCoalescing:
    def test_concurrent_identical_requests_one_synthesis(self):
        """N identical cold requests -> exactly 1 synthesis (the plan
        cache records one miss), and every response carries the same
        plan (bit-identical generated source)."""
        n = 5
        release = threading.Event()

        def gated_synthesize(program, config, cache=None):
            release.wait(timeout=30)
            return synthesize(program, config, cache=cache)

        config = ServerConfig(
            port=0, workers=2, synthesize_fn=gated_synthesize
        )

        async def check(app, host, port):
            payload = {"program": MATMUL, "options": {"grid": "2x2"}}
            requests = [
                asyncio.create_task(
                    arequest(host, port, "POST", "/v1/synthesize", payload)
                )
                for _ in range(n)
            ]
            # wait until the followers have piled onto the leader's
            # in-flight future, then let the one synthesis proceed
            for _ in range(1000):
                if app.coalescer.coalesced >= n - 1:
                    break
                await asyncio.sleep(0.01)
            assert app.coalescer.coalesced == n - 1
            assert app.coalescer.inflight == 1
            release.set()
            responses = await asyncio.gather(*requests)
            assert all(status == 200 for status, _ in responses)
            bodies = [body for _, body in responses]
            assert app.plan_cache.misses == 1, "exactly one synthesis"
            assert app.coalescer.leaders == 1
            assert sorted(b["coalesced"] for b in bodies) == [
                False, True, True, True, True,
            ]
            hashes = {b["source_sha256"] for b in bodies}
            assert len(hashes) == 1, "all plans bit-identical"
            keys = {b["key"] for b in bodies}
            assert len(keys) == 1
            assert app.plan_cache.stats()["coalesced"] == n - 1

        serve(check, config)

    def test_coalesced_failure_propagates_to_all_without_leak(self):
        n = 3
        release = threading.Event()

        def failing_synthesize(program, config, cache=None):
            release.wait(timeout=30)
            raise SpecError("synthetic failure", stage="test")

        config = ServerConfig(
            port=0, workers=2, synthesize_fn=failing_synthesize
        )

        async def check(app, host, port):
            payload = {"program": MATMUL}
            requests = [
                asyncio.create_task(
                    arequest(host, port, "POST", "/v1/synthesize", payload)
                )
                for _ in range(n)
            ]
            for _ in range(1000):
                if app.coalescer.coalesced >= n - 1:
                    break
                await asyncio.sleep(0.01)
            release.set()
            responses = await asyncio.gather(*requests)
            assert [status for status, _ in responses] == [400] * n
            assert app.coalescer.inflight == 0, "key cleared for retries"

        serve(check, config)


class TestTenants:
    def _registry(self):
        return TenantRegistry(
            policies={
                "metered": TenantPolicy(
                    name="metered",
                    budget=Budget(max_nodes=10_000_000),
                    allowance_nodes=1,
                ),
            },
        )

    def test_exhausted_tenant_degrades_other_tenant_full_fidelity(self):
        config = ServerConfig(port=0, tenants=self._registry())

        async def check(app, host, port):
            # the metered tenant's first request runs a real search and
            # burns its 1-node allowance
            status, first = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "metered",
                 "result": "checksum"},
            )
            assert status == 200
            assert first["degraded"] == []
            assert first["admission"]["nodes_charged"] > 0
            # now exhausted: stages degrade, response stays 200 and says so
            status, second = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "metered",
                 "result": "checksum"},
            )
            assert status == 200
            assert second["admission"]["exhausted"] is True
            assert second["admission"]["budget"]["max_nodes"] == 0
            assert second["degraded"] != []
            # an unmetered tenant is untouched by the noisy neighbour
            status, other = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": CHAIN, "tenant": "other", "result": "checksum"},
            )
            assert status == 200
            assert other["degraded"] == []
            assert other["admission"]["exhausted"] is False
            # degraded or not, the mathematics is identical
            assert second["outputs"]["D"]["sum"] == pytest.approx(
                other["outputs"]["D"]["sum"], rel=1e-9
            )
            stats = app.tenants.stats()
            assert stats["metered"]["exhausted"] is True
            assert stats["metered"]["degraded_requests"] == 1
            assert stats["other"]["degraded_requests"] == 0

        serve(check, config)

    def test_tenants_file_round_trip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"default": {"budget_ms": 2000},'
            ' "tenants": {"team-a": {"budget_nodes": 50,'
            ' "allowance_nodes": 100}}}'
        )
        registry = TenantRegistry.from_file(str(path))
        account = registry.account("team-a")
        assert account.policy.budget.max_nodes == 50
        assert account.policy.allowance_nodes == 100
        unknown = registry.account("walk-in")
        assert unknown.policy.budget.deadline_ms == 2000

    def test_tenants_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": {"a": {"budget_mss": 1}}}')
        with pytest.raises(SpecError, match="budget_mss"):
            TenantRegistry.from_file(str(path))


class TestExecute:
    def test_process_and_interp_agree(self):
        async def check(app, host, port):
            _, dist = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": "2x2"},
                 "result": "checksum", "seed": 7},
            )
            _, local = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "result": "checksum", "seed": 7},
            )
            assert dist["backend"] == "process"
            assert local["backend"] == "interp"
            assert dist["outputs"]["C"]["shape"] == [8, 8]
            assert dist["outputs"]["C"]["sum"] == pytest.approx(
                local["outputs"]["C"]["sum"], rel=1e-9
            )

        serve(check)

    def test_explicit_inputs_arrays_mode(self):
        async def check(app, host, port):
            eye = [[1.0 if r == c else 0.0 for c in range(8)]
                   for r in range(8)]
            ones = [[1.0] * 8 for _ in range(8)]
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "inputs": {"A": eye, "B": ones}},
            )
            assert status == 200
            assert body["outputs"]["C"] == ones

        serve(check)

    def test_process_backend_without_grid_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "backend": "process"},
            )
            assert status == 400
            assert "partition plans" in body["detail"]

        serve(check)

    def test_faults_through_server_recover(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": 2},
                 "faults": "drop:0;crash:1", "result": "checksum",
                 "seed": 3},
            )
            assert status == 200
            _, clean = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "options": {"grid": 2},
                 "result": "checksum", "seed": 3},
            )
            assert body["outputs"]["C"]["sum"] == pytest.approx(
                clean["outputs"]["C"]["sum"], rel=1e-9
            )

        serve(check)


class TestHealthz:
    def test_counters_surface(self):
        async def check(app, host, port):
            payload = {"program": MATMUL}
            await arequest(host, port, "POST", "/v1/synthesize", payload)
            await arequest(host, port, "POST", "/v1/synthesize", payload)
            status, body = await arequest(host, port, "GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["requests"]["POST /v1/synthesize"] == 2
            assert body["plan_cache"]["misses"] == 1
            assert body["plan_cache"]["memory_hits"] == 1
            assert "coalesced" in body["plan_cache"]
            assert body["tenants"]["anonymous"]["requests"] == 2
            stats_status, stats = await arequest(host, port, "GET", "/stats")
            assert stats_status == 200
            assert stats["plan_cache"]["misses"] == 1

        serve(check)


class TestWireValidation:
    def test_grid_and_processors_conflict(self):
        with pytest.raises(SpecError, match="not both"):
            config_from_options({"grid": 2, "processors": 2})

    def test_unknown_option_named(self):
        with pytest.raises(SpecError, match="grdi"):
            config_from_options({"grdi": 2})

    def test_bad_binding_rejected(self):
        with pytest.raises(SpecError, match="positive integer"):
            config_from_options({"bindings": {"N": -4}})

    def test_grid_string_parses(self):
        config = config_from_options({"grid": "2x2"})
        assert config.grid.dims == (2, 2)


class TestDeadlines:
    def test_expired_deadline_is_structured_504(self):
        """A deadline the request cannot possibly meet surfaces as a
        structured 504, never a hung connection or a raw traceback."""

        def slow_synthesize(program, config, cache=None):
            import time as _time

            _time.sleep(0.05)  # guarantee the 1ms deadline is blown
            return synthesize(program, config, cache=cache)

        config = ServerConfig(port=0, synthesize_fn=slow_synthesize)

        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {
                    "program": MATMUL,
                    "options": {"grid": "2x2"},
                    "backend": "process",
                    "deadline_ms": 1,
                    "result": "checksum",
                },
            )
            assert status == 504
            assert body["error"] == "DeadlineExceeded"
            assert "deadline" in body["detail"].lower()

        serve(check, config)

    def test_server_default_deadline_applies(self):
        def slow_synthesize(program, config, cache=None):
            import time as _time

            _time.sleep(0.05)
            return synthesize(program, config, cache=cache)

        config = ServerConfig(
            port=0, deadline_ms=1, synthesize_fn=slow_synthesize
        )

        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {
                    "program": MATMUL,
                    "options": {"grid": "2x2"},
                    "backend": "process",
                    "result": "checksum",
                },
            )
            assert status == 504
            assert body["error"] == "DeadlineExceeded"

        serve(check, config)

    def test_generous_deadline_succeeds(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {
                    "program": MATMUL,
                    "options": {"grid": "2x2"},
                    "backend": "process",
                    "deadline_ms": 120_000,
                    "result": "checksum",
                },
            )
            assert status == 200
            assert body["outputs"]["C"]["shape"] == [8, 8]

        serve(check)

    def test_bad_deadline_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "deadline_ms": 0},
            )
            assert status == 400
            assert "deadline_ms" in body["detail"]

        serve(check)


class TestAdmissionControl:
    def test_overload_sheds_with_429_and_retry_after(self):
        """With max_inflight=1 and a gated synthesis, a second request
        gets a structured 429 + Retry-After while /healthz (ungated)
        keeps answering."""
        release = threading.Event()

        def gated_synthesize(program, config, cache=None):
            release.wait(timeout=30)
            return synthesize(program, config, cache=cache)

        config = ServerConfig(
            port=0, workers=2, max_inflight=1,
            synthesize_fn=gated_synthesize,
        )

        async def check(app, host, port):
            leader = asyncio.create_task(arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL, "options": {"grid": "2x2"}},
            ))
            for _ in range(1000):
                if app.gated_inflight >= 1:
                    break
                await asyncio.sleep(0.01)
            assert app.gated_inflight == 1
            # raw connection: the 429 must carry Retry-After
            reader, writer = await asyncio.open_connection(host, port)
            blob = json.dumps({"program": MATMUL}).encode()
            writer.write(
                b"POST /v1/execute HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(blob)).encode() + b"\r\n"
                b"\r\n" + blob
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head = raw.split(b"\r\n\r\n", 1)[0]
            assert b"429" in head.split(b"\r\n", 1)[0]
            assert b"retry-after" in head.lower()
            assert b"overloaded" in raw
            # the health probe is never shed
            status, hz = await arequest(host, port, "GET", "/healthz")
            assert status == 200
            assert hz["admission"]["shed"] == 1
            assert hz["admission"]["inflight"] == 1
            release.set()
            status, _ = await leader
            assert status == 200

        serve(check, config)

    def test_zero_disables_the_gate(self):
        config = ServerConfig(port=0, max_inflight=0)

        async def check(app, host, port):
            status, _ = await arequest(
                host, port, "POST", "/v1/synthesize",
                {"program": MATMUL},
            )
            assert status == 200
            assert app.shed == 0

        serve(check, config)


class TestCircuitBreaker:
    def test_opens_after_failures_halfopens_on_probe(self):
        """Repeated 500s trip the route's breaker (503 + Retry-After);
        after the cool-down one probe is admitted and its success
        closes the breaker.  The sibling route is untouched."""
        clock = [0.0]
        fail = [True]

        def flaky_synthesize(program, config, cache=None):
            if fail[0]:
                raise RuntimeError("boom")
            return synthesize(program, config, cache=cache)

        config = ServerConfig(
            port=0,
            breaker_threshold=2,
            breaker_reset_s=10.0,
            breaker_clock=lambda: clock[0],
            synthesize_fn=flaky_synthesize,
        )

        async def check(app, host, port):
            payload = {"program": MATMUL}
            for _ in range(2):
                status, _ = await arequest(
                    host, port, "POST", "/v1/synthesize", payload
                )
                assert status == 500
            # breaker open: rejected without touching the pipeline
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 503
            assert body["error"] == "circuit_open"
            # the sibling route has its own breaker, still closed
            assert (
                app.breakers["/v1/execute"].state == "closed"
            )
            _, hz = await arequest(host, port, "GET", "/healthz")
            assert hz["breakers"]["/v1/synthesize"]["state"] == "open"
            # cool-down elapses -> half-open -> healthy probe closes it
            clock[0] += 11.0
            fail[0] = False
            status, body = await arequest(
                host, port, "POST", "/v1/synthesize", payload
            )
            assert status == 200
            assert app.breakers["/v1/synthesize"].state == "closed"

        serve(check, config)

    def test_client_errors_do_not_trip_breaker(self):
        config = ServerConfig(port=0, breaker_threshold=2)

        async def check(app, host, port):
            for _ in range(4):
                status, _ = await arequest(
                    host, port, "POST", "/v1/synthesize",
                    {"program": "range N = ;;;"},
                )
                assert status == 400
            assert app.breakers["/v1/synthesize"].state == "closed"

        serve(check)

    def test_probe_failure_reopens(self):
        from repro.server.breaker import CircuitBreaker

        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] += 6.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # no second concurrent probe
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.retry_after_s() == pytest.approx(5.0)
        clock[0] += 6.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"


class TestChaosOverHttp:
    def test_hung_worker_recovers_while_healthz_answers(self):
        """The ISSUE acceptance scenario: a worker hung mid-request is
        caught by the recv watchdog within its timeout, the statement
        retries on a fresh pool, and the server stays responsive the
        whole time (concurrent /healthz probes)."""
        config = ServerConfig(port=0, watchdog_timeout_s=1.0)

        async def check(app, host, port):
            execute = asyncio.create_task(arequest(
                host, port, "POST", "/v1/execute",
                {
                    "program": MATMUL,
                    "options": {"grid": "2x2"},
                    "backend": "process",
                    "seed": 3,
                    "chaos": "hang_worker@0",
                    "result": "checksum",
                },
            ))
            probes = 0
            while not execute.done():
                status, _ = await asyncio.wait_for(
                    arequest(host, port, "GET", "/healthz"), timeout=5
                )
                assert status == 200, "server went dark during the hang"
                probes += 1
                await asyncio.sleep(0.05)
            assert probes >= 1
            status, body = await execute
            assert status == 200
            assert body["pool"]["respawns"] >= 1
            assert any("watchdog" in n for n in body["notes"])
            # recovered result equals the clean run bit for bit
            status, clean = await arequest(
                host, port, "POST", "/v1/execute",
                {
                    "program": MATMUL,
                    "options": {"grid": "2x2"},
                    "backend": "process",
                    "seed": 3,
                    "result": "checksum",
                },
            )
            assert clean["outputs"] == body["outputs"]

        serve(check, config)

    def test_killed_worker_recovers_bit_identically(self):
        async def check(app, host, port):
            chaotic = {
                "program": MATMUL,
                "options": {"grid": "2x2"},
                "backend": "process",
                "seed": 4,
                "chaos": "kill_worker@0",
                "result": "checksum",
            }
            status, body = await arequest(
                host, port, "POST", "/v1/execute", chaotic
            )
            assert status == 200
            assert body["pool"]["respawns"] == 1
            clean = dict(chaotic)
            del clean["chaos"]
            _, reference = await arequest(
                host, port, "POST", "/v1/execute", clean
            )
            assert reference["outputs"] == body["outputs"]
            _, hz = await arequest(host, port, "GET", "/healthz")
            assert hz["pools"]["respawned"] >= 1

        serve(check)

    def test_bad_chaos_spec_is_400(self):
        async def check(app, host, port):
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                {"program": MATMUL, "chaos": "explode@1"},
            )
            assert status == 400
            assert "chaos" in body["detail"]

        serve(check)


class TestClientRetries:
    def _patched(self, monkeypatch, outcomes):
        """Patch one-attempt transport; returns (sleeps, calls)."""
        from repro.server import client as client_mod

        sleeps = []
        calls = []

        def fake_once(host, port, method, path, payload, timeout):
            calls.append(path)
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(client_mod, "_request_once", fake_once)
        return sleeps, calls

    def test_retries_connection_errors_then_succeeds(self, monkeypatch):
        from repro.server.client import request

        sleeps, calls = self._patched(monkeypatch, [
            ConnectionRefusedError("down"),
            (200, {"ok": True}, None),
        ])
        status, body = request(
            "h", 1, "GET", "/healthz", retries=2,
            sleep=sleeps.append,
        )
        assert status == 200 and body == {"ok": True}
        assert len(calls) == 2
        assert len(sleeps) == 1

    def test_honors_retry_after_header(self, monkeypatch):
        from repro.server.client import request

        sleeps, calls = self._patched(monkeypatch, [
            (429, {"error": "overloaded"}, "2.5"),
            (200, {"ok": True}, None),
        ])
        status, _ = request(
            "h", 1, "POST", "/v1/execute", {}, retries=1,
            sleep=sleeps.append,
        )
        assert status == 200
        assert sleeps == [2.5], "server's Retry-After beats the backoff"

    def test_does_not_retry_served_errors(self, monkeypatch):
        from repro.server.client import request

        sleeps, calls = self._patched(monkeypatch, [
            (500, {"error": "internal"}, None),
        ])
        status, _ = request(
            "h", 1, "POST", "/v1/synthesize", {}, retries=5,
            sleep=sleeps.append,
        )
        assert status == 500
        assert len(calls) == 1 and sleeps == []

    def test_exhausted_retries_surface_last_answer(self, monkeypatch):
        import random as random_mod

        from repro.server.client import request

        sleeps, calls = self._patched(monkeypatch, [
            (503, {"error": "circuit_open"}, None),
            (503, {"error": "circuit_open"}, None),
        ])
        status, body = request(
            "h", 1, "POST", "/v1/execute", {}, retries=1,
            sleep=sleeps.append, rng=random_mod.Random(7),
        )
        assert status == 503
        assert len(calls) == 2
        # jittered exponential: within [0, backoff * 2^attempt]
        assert 0.0 <= sleeps[0] <= 0.25

    def test_exhausted_connection_errors_raise(self, monkeypatch):
        from repro.server.client import request

        sleeps, _ = self._patched(monkeypatch, [
            ConnectionRefusedError("down"),
            ConnectionRefusedError("still down"),
        ])
        with pytest.raises(ConnectionRefusedError):
            request("h", 1, "GET", "/healthz", retries=1,
                    sleep=sleeps.append)
