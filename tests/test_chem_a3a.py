"""A3A reproduction tests: Figs. 2, 3, 4 structures vs analytic tables
and vs measured execution."""

import numpy as np
import pytest

from repro.chem.a3a import (
    a3a_problem,
    fig2_structure,
    fig2_table,
    fig3_structure,
    fig3_table,
    fig4_structure,
    fig4_table,
    table_totals,
)
from repro.engine.counters import Counters
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count

# tiny but structurally faithful sizes: V divisible by the fig4 block
SMALL = dict(V=4, O=2, Ci=50)


@pytest.fixture(scope="module")
def problem():
    return a3a_problem(**SMALL)


@pytest.fixture(scope="module")
def inputs(problem):
    return random_inputs(problem.program, seed=13)


@pytest.fixture(scope="module")
def reference_E(problem, inputs):
    env = run_statements(
        problem.statements, inputs, functions=problem.functions
    )
    return float(env["E"])


class TestProblemDefinition:
    def test_statements(self, problem):
        names = [s.result.name for s in problem.statements]
        assert names == ["X", "T1", "T2", "Y", "E"]

    def test_scalar_result(self, problem):
        assert problem.statements[-1].result.indices == ()

    def test_functions_registered(self, problem):
        assert set(problem.functions) == {"f1", "f2"}

    def test_paper_scale_defaults(self):
        big = a3a_problem()
        assert big.V == 3000 and big.O == 100 and big.Ci == 1000


class TestFig2:
    def test_space_matches_table(self, problem):
        block = fig2_structure(problem)
        sizes = array_sizes(block)
        table = fig2_table(**SMALL)
        for arr in ("X", "T1", "T2", "Y", "E"):
            assert sizes[arr] == table[arr]["space"], arr

    def test_time_matches_table(self, problem):
        block = fig2_structure(problem)
        table = fig2_table(**SMALL)
        assert loop_op_count(block) == table_totals(table)["time"]

    def test_measured_ops_match(self, problem, inputs, reference_E):
        block = fig2_structure(problem)
        counters = Counters()
        env = execute(block, inputs, functions=problem.functions, counters=counters)
        assert counters.total_ops == loop_op_count(block)
        assert float(env["E"]) == pytest.approx(reference_E, rel=1e-10)

    def test_integral_reuse_is_maximal(self, problem, inputs):
        """Each T1/T2 element evaluated exactly once: V^3*O calls each."""
        block = fig2_structure(problem)
        counters = Counters()
        execute(block, inputs, functions=problem.functions, counters=counters)
        V, O = SMALL["V"], SMALL["O"]
        assert counters.func_evals == 2 * V**3 * O


class TestFig3:
    def test_all_temporaries_scalar(self, problem):
        block = fig3_structure(problem)
        sizes = array_sizes(block)
        for arr in ("X", "T1", "T2", "Y", "E"):
            assert sizes[arr] == 1, arr

    def test_time_matches_table(self, problem):
        block = fig3_structure(problem)
        table = fig3_table(**SMALL)
        assert loop_op_count(block) == table_totals(table)["time"]

    def test_numerics_preserved(self, problem, inputs, reference_E):
        block = fig3_structure(problem)
        env = execute(block, inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(reference_E, rel=1e-10)

    def test_recompute_blowup_factor(self, problem):
        """Integral work grows by V^2 vs the unfused form (3 orders of
        magnitude at paper scale)."""
        V = SMALL["V"]
        f2_time = fig2_table(**SMALL)["T1"]["time"]
        f3_time = fig3_table(**SMALL)["T1"]["time"]
        assert f3_time == V**2 * f2_time

    def test_measured_func_evals(self, problem, inputs):
        block = fig3_structure(problem)
        counters = Counters()
        execute(block, inputs, functions=problem.functions, counters=counters)
        V, O = SMALL["V"], SMALL["O"]
        assert counters.func_evals == 2 * V**5 * O


class TestFig4:
    @pytest.mark.parametrize("B", [1, 2, 4])
    def test_space_matches_table(self, problem, B):
        block = fig4_structure(problem, B)
        sizes = array_sizes(block)
        table = fig4_table(B=B, **SMALL)
        for arr in ("X", "T1", "T2", "Y", "E"):
            assert sizes[arr] == table[arr]["space"], (arr, B)

    @pytest.mark.parametrize("B", [1, 2, 4])
    def test_time_matches_table(self, problem, B):
        block = fig4_structure(problem, B)
        table = fig4_table(B=B, **SMALL)
        assert loop_op_count(block) == table_totals(table)["time"]

    @pytest.mark.parametrize("B", [1, 2, 4])
    def test_numerics_preserved(self, problem, inputs, reference_E, B):
        block = fig4_structure(problem, B)
        env = execute(block, inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(reference_E, rel=1e-10)

    def test_extremes_recover_fig2_and_fig3_costs(self, problem):
        """B=V restores full integral reuse; B=1 costs like full fusion."""
        V, O, Ci = SMALL["V"], SMALL["O"], SMALL["Ci"]
        t_b_full = fig4_table(B=V, **SMALL)["T1"]["time"]
        assert t_b_full == fig2_table(**SMALL)["T1"]["time"]
        t_b_one = fig4_table(B=1, **SMALL)["T1"]["time"]
        assert t_b_one == fig3_table(**SMALL)["T1"]["time"]

    def test_reuse_grows_with_B(self, problem, inputs):
        evals = {}
        for B in (1, 2, 4):
            counters = Counters()
            execute(
                fig4_structure(problem, B),
                inputs,
                functions=problem.functions,
                counters=counters,
            )
            evals[B] = counters.func_evals
        assert evals[1] > evals[2] > evals[4]
        # each doubling of B cuts integral evaluations 4x
        assert evals[1] == 4 * evals[2] == 16 * evals[4]


class TestFig4Uneven:
    def test_nondivisible_block_still_correct(self, inputs, reference_E):
        problem = a3a_problem(**SMALL)
        block = fig4_structure(problem, 3)  # 3 does not divide V=4
        env = execute(block, inputs, functions=problem.functions)
        assert float(env["E"]) == pytest.approx(reference_E, rel=1e-10)

    def test_table_rejects_nondivisible(self):
        with pytest.raises(ValueError, match="divide"):
            fig4_table(B=3, **SMALL)


class TestPaperScaleTables:
    """The tables at paper scale (V=3000, O=100, Ci=1000) -- pure
    arithmetic, no execution."""

    def test_fig2_memory_is_terabytes(self):
        table = fig2_table(3000, 100, 1000)
        bytes_needed = table_totals(table)["space"] * 8
        assert bytes_needed > 1e12  # "several tera bytes"

    def test_fig3_removes_memory_but_costs_1000x(self):
        f2 = fig2_table(3000, 100, 1000)
        f3 = fig3_table(3000, 100, 1000)
        assert table_totals(f3)["space"] == 5
        blowup = f3["T1"]["time"] / f2["T1"]["time"]
        assert blowup == pytest.approx(3000**2)

    def test_fig4_intermediate_point(self):
        f2 = fig2_table(3000, 100, 1000)
        f4 = fig4_table(3000, 100, 1000, B=30)
        assert table_totals(f4)["space"] < table_totals(f2)["space"]
        assert f4["T1"]["time"] < fig3_table(3000, 100, 1000)["T1"]["time"]
