"""Unit and property tests for canonicalization / CSE keys."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.ast import Add, Mul, Sum, TensorRef
from repro.expr.canonical import (
    canonical_key,
    flatten,
    rename_indices,
    statement_key,
)
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Symmetry, Tensor

V = IndexRange("V", 10)
IDX = {n: Index(n, V) for n in "abcdefgh"}


def t(name, *index_names, symmetries=()):
    indices = tuple(IDX[n] for n in index_names)
    return TensorRef(Tensor(name, indices, symmetries), indices)


def tref(tensor, *index_names):
    return TensorRef(tensor, tuple(IDX[n] for n in index_names))


class TestRenameIndices:
    def test_rename_ref(self):
        r = t("A", "a", "b")
        out = rename_indices(r, {IDX["a"]: IDX["c"]})
        assert [i.name for i in out.indices] == ["c", "b"]

    def test_rename_sum_binder(self):
        expr = Sum((IDX["b"],), Mul((t("A", "a", "b"), t("B", "b", "c"))))
        out = rename_indices(expr, {IDX["b"]: IDX["d"]})
        assert IDX["d"] in out.indices
        assert all(IDX["b"] not in r.free for r in out.refs())

    def test_identity_when_unmapped(self):
        expr = t("A", "a")
        assert rename_indices(expr, {}) == expr


class TestFlatten:
    def test_single_ref(self):
        terms = flatten(t("A", "a"))
        assert len(terms) == 1
        coef, sums, refs = terms[0]
        assert coef == 1.0 and sums == frozenset() and len(refs) == 1

    def test_nested_sum_merge(self):
        inner = Sum((IDX["c"],), Mul((t("A", "a", "c"), t("B", "c", "b"))))
        outer = Sum((IDX["b"],), Mul((inner.body, t("C", "b", "a"))))
        # build Sum(b, Sum(c, A*B) * C) explicitly
        expr = Sum((IDX["b"],), Mul((inner, t("C", "b", "a"))))
        terms = flatten(expr)
        assert len(terms) == 1
        _, sums, refs = terms[0]
        assert sums == {IDX["b"], IDX["c"]}
        assert len(refs) == 3

    def test_distributes_add(self):
        expr = Mul((Add(((1.0, t("A", "a")), (2.0, t("B", "a")))), t("C", "a")))
        terms = flatten(expr)
        assert sorted(c for c, _, _ in terms) == [1.0, 2.0]


class TestCanonicalKey:
    def test_factor_order_irrelevant(self):
        e1 = Sum((IDX["b"],), Mul((t("A", "a", "b"), t("B", "b", "c"))))
        e2 = Sum((IDX["b"],), Mul((t("B", "b", "c"), t("A", "a", "b"))))
        assert canonical_key(e1) == canonical_key(e2)

    def test_summation_index_name_irrelevant(self):
        e1 = Sum((IDX["b"],), Mul((t("A", "a", "b"), t("B", "b", "c"))))
        A = e1.body.factors[0].tensor
        B = e1.body.factors[1].tensor
        e2 = Sum(
            (IDX["d"],),
            Mul((TensorRef(A, (IDX["a"], IDX["d"])), TensorRef(B, (IDX["d"], IDX["c"])))),
        )
        assert canonical_key(e1) == canonical_key(e2)

    def test_free_index_names_matter(self):
        e1 = t("A", "a", "b")
        e2 = t("A", "b", "a")
        assert canonical_key(e1) != canonical_key(e2)

    def test_different_tensors_differ(self):
        assert canonical_key(t("A", "a")) != canonical_key(t("B", "a"))

    def test_two_symmetric_summation_indices(self):
        # sum(b, d) A(a,b)*A(a,d)*M(b,d): b and d are interchangeable
        A = Tensor("A", (IDX["a"], IDX["b"]))
        M = Tensor("M", (IDX["b"], IDX["d"]))
        e1 = Sum(
            (IDX["b"], IDX["d"]),
            Mul((
                TensorRef(A, (IDX["a"], IDX["b"])),
                TensorRef(A, (IDX["a"], IDX["d"])),
                TensorRef(M, (IDX["b"], IDX["d"])),
            )),
        )
        e2 = Sum(
            (IDX["b"], IDX["d"]),
            Mul((
                TensorRef(A, (IDX["a"], IDX["d"])),
                TensorRef(A, (IDX["a"], IDX["b"])),
                TensorRef(M, (IDX["d"], IDX["b"])),
            )),
        )
        assert canonical_key(e1) == canonical_key(e2)

    def test_symmetric_tensor_dimension_swap(self):
        T = Tensor("T", (IDX["a"], IDX["b"]), (Symmetry((0, 1)),))
        e1 = TensorRef(T, (IDX["a"], IDX["b"]))
        e2 = TensorRef(T, (IDX["b"], IDX["a"]))
        assert canonical_key(e1) == canonical_key(e2)

    def test_antisymmetric_swap_flips_sign(self):
        T = Tensor("T", (IDX["a"], IDX["b"]), (Symmetry((0, 1), antisymmetric=True),))
        e1 = Add(((1.0, TensorRef(T, (IDX["a"], IDX["b"]))),))
        e2 = Add(((-1.0, TensorRef(T, (IDX["b"], IDX["a"]))),))
        assert canonical_key(e1) == canonical_key(e2)

    def test_add_term_order_irrelevant(self):
        e1 = Add(((1.0, t("A", "a")), (2.0, t("B", "a"))))
        e2 = Add(((2.0, t("B", "a")), (1.0, t("A", "a"))))
        assert canonical_key(e1) == canonical_key(e2)

    def test_cancelling_terms_vanish(self):
        e = Add(((1.0, t("A", "a")), (-1.0, t("A", "a"))))
        zero_key = canonical_key(e)
        assert zero_key == ("sop", ())

    def test_coefficient_merging(self):
        e1 = Add(((1.0, t("A", "a")), (1.0, t("A", "a"))))
        e2 = Add(((2.0, t("A", "a")),))
        assert canonical_key(e1) == canonical_key(e2)

    def test_statement_key_distinguishes_accumulate(self):
        from repro.expr.ast import Statement

        A = Tensor("A", (IDX["a"],))
        S = Tensor("S", (IDX["a"],))
        s1 = Statement(S, TensorRef(A, (IDX["a"],)))
        s2 = Statement(S, TensorRef(A, (IDX["a"],)), accumulate=True)
        assert statement_key(s1) != statement_key(s2)


@st.composite
def random_contraction(draw):
    """A random single-term contraction over 2-4 tensors and <=6 indices."""
    n_idx = draw(st.integers(min_value=2, max_value=6))
    pool = [IDX[n] for n in "abcdefgh"[:n_idx]]
    n_tensors = draw(st.integers(min_value=2, max_value=4))
    refs = []
    used = set()
    for k in range(n_tensors):
        dims = draw(st.integers(min_value=1, max_value=3))
        chosen = tuple(
            draw(st.sampled_from(pool)) for _ in range(dims)
        )
        # indices within one ref must be distinct
        chosen = tuple(dict.fromkeys(chosen))
        tensor = Tensor(f"T{k}", chosen)
        refs.append(TensorRef(tensor, chosen))
        used.update(chosen)
    body = Mul(tuple(refs)) if len(refs) > 1 else refs[0]
    free = sorted(body.free)
    n_sum = draw(st.integers(min_value=0, max_value=len(free)))
    sum_indices = tuple(free[:n_sum])
    if sum_indices:
        return Sum(sum_indices, body)
    return body


class TestCanonicalProperties:
    @given(random_contraction(), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_key_invariant_under_factor_shuffle(self, expr, rnd):
        base = canonical_key(expr)
        body = expr.body if isinstance(expr, Sum) else expr
        if not isinstance(body, Mul):
            return
        factors = list(body.factors)
        rnd.shuffle(factors)
        shuffled = Mul(tuple(factors))
        if isinstance(expr, Sum):
            shuffled = Sum(expr.indices, shuffled)
        assert canonical_key(shuffled) == base

    @given(random_contraction())
    @settings(max_examples=60, deadline=None)
    def test_key_invariant_under_bound_renaming(self, expr):
        if not isinstance(expr, Sum):
            return
        base = canonical_key(expr)
        fresh = [IDX[n] for n in "abcdefgh" if IDX[n] not in expr.body.free]
        if len(fresh) < len(expr.indices):
            return
        mapping = dict(zip(expr.indices, fresh))
        renamed = rename_indices(expr, mapping)
        assert canonical_key(renamed) == base

    @given(random_contraction())
    @settings(max_examples=60, deadline=None)
    def test_key_is_hashable_and_stable(self, expr):
        k1 = canonical_key(expr)
        k2 = canonical_key(expr)
        assert k1 == k2
        hash(k1)

    @given(random_contraction(), random_contraction())
    @settings(max_examples=80, deadline=None)
    def test_equal_keys_imply_equal_values(self, e1, e2):
        """CSE soundness: two expressions with the same canonical key
        must evaluate to the same array on shared random inputs."""
        if canonical_key(e1) != canonical_key(e2):
            return
        import numpy as np

        from repro.engine.executor import evaluate_expression

        rng = np.random.default_rng(0)
        arrays = {}
        for expr in (e1, e2):
            for ref in expr.refs():
                arrays.setdefault(
                    ref.tensor.name,
                    rng.standard_normal(ref.tensor.shape()),
                )
        v1 = evaluate_expression(e1, arrays)
        v2 = evaluate_expression(e2, arrays)
        np.testing.assert_allclose(v1, v2, rtol=1e-9, atol=1e-9)
