"""Sparsity-aware compilation path through the full pipeline."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.codegen.dispatch import (
    DenseSegment,
    SparseSegment,
    execute_plan,
    plan_execution,
)
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.engine.executor import run_statements as dense_run
from repro.expr.parser import parse_program
from repro.pipeline import SynthesisConfig, synthesize

SPARSE_FIG1 = """
range V = 8;
range O = 6;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k) sparse(0.05);
tensor B(b, e, f, l);
tensor C(d, f, j, k);
tensor D(c, d, e, l) sparse(0.1);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""

DENSE_SOURCE = """
range N = 6;
index a, b, c : N;
tensor A(a, b);
tensor B(b, c);
S(a, c) = sum(b) A(a, b) * B(b, c);
"""


def mixed_program_source():
    return """
    range V = 6; range O = 4;
    index a, b, c : V; index i : O;
    tensor A(a, b) sparse(0.1);
    tensor B(b, c);
    tensor C(c, i);
    T1(a, c) = sum(b) A(a, b) * B(b, c);
    T2(c, i) = sum(b) B(b, c) * C(c, i) * B(b, c);
    S(b, i) = sum(a, c) A(a, b) * T1(a, c) * T2(c, i);
    """


class TestPipelineSparse:
    def test_plan_and_estimates_present(self):
        result = synthesize(SPARSE_FIG1, SynthesisConfig(optimize_cache=False))
        assert result.execution_plan is not None
        assert result.sparsity_estimates
        names = [r.name for r in result.reports]
        assert "Sparsity dispatch" in names
        for est in result.sparsity_estimates.values():
            assert est.dense_ops >= 1
            assert est.sparse_ops >= 1

    def test_execute_matches_oracle(self):
        result = synthesize(SPARSE_FIG1, SynthesisConfig(optimize_cache=False))
        arrays = random_inputs(result.program, seed=4)
        want = dense_run(result.program.statements, arrays)
        counters = Counters()
        got = result.execute(arrays, counters=counters)
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-9)
        assert counters.flops > 0

    def test_sparse_aware_changes_estimates(self):
        base = synthesize(SPARSE_FIG1, SynthesisConfig(optimize_cache=False))
        aware = synthesize(
            SPARSE_FIG1,
            SynthesisConfig(optimize_cache=False, sparse_aware=True),
        )
        assert "sparse-aware operation count" in aware.reports[0].details
        assert "sparse-aware operation count" not in base.reports[0].details
        for est in aware.sparsity_estimates.values():
            assert est.sparse_ops <= est.dense_ops

    def test_sparse_execution_off_keeps_loop_ir(self):
        result = synthesize(
            SPARSE_FIG1,
            SynthesisConfig(optimize_cache=False, sparse_execution=False),
        )
        assert result.execution_plan is None
        # estimates still reported for visibility
        assert result.sparsity_estimates
        arrays = random_inputs(result.program, seed=1)
        want = dense_run(result.program.statements, arrays)
        got = result.execute(arrays)
        np.testing.assert_allclose(got["S"], want["S"], rtol=1e-9)


class TestPipelineDenseUnchanged:
    def test_no_sparse_stage_or_plan(self):
        result = synthesize(DENSE_SOURCE, SynthesisConfig(optimize_cache=False))
        assert result.execution_plan is None
        assert not result.sparsity_estimates
        assert [r.name for r in result.reports] == [
            "Algebraic transformations",
            "Memory minimization",
            "Space-time transformation",
            "Data locality optimization",
            "Data distribution and partitioning",
            "Code generation",
        ]


class TestExecutionPlan:
    def test_segments_group_consecutive_kinds(self):
        program = parse_program(mixed_program_source())
        plan = plan_execution(program.statements, None)
        kinds = [type(s) for s in plan.segments]
        assert kinds == [SparseSegment, DenseSegment, SparseSegment]
        assert [s.result.name for s in plan.sparse_statements] == ["T1", "S"]
        assert [s.result.name for s in plan.dense_statements] == ["T2"]
        assert "sparse" in plan.describe()

    def test_execute_plan_matches_oracle(self):
        program = parse_program(mixed_program_source())
        plan = plan_execution(program.statements, None)
        arrays = random_inputs(program, seed=7)
        want = dense_run(program.statements, arrays)
        got = execute_plan(plan, arrays, None, None, Counters())
        for name in ("T1", "T2", "S"):
            np.testing.assert_allclose(got[name], want[name], rtol=1e-9)


class TestCLI:
    def run_cli(self, tmp_path, capsys, source, *flags):
        path = tmp_path / "prog.tce"
        path.write_text(source)
        rc = cli_main([str(path), "--no-cache-opt", *flags])
        out = capsys.readouterr().out
        assert rc == 0
        return out

    def test_sparse_program_reports_dispatch(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, SPARSE_FIG1)
        assert "Sparsity dispatch" in out
        assert "est ops dense -> sparse" in out

    def test_sparse_aware_flag(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, SPARSE_FIG1, "--sparse-aware")
        assert "sparse-aware operation count" in out

    def test_no_sparse_exec_flag(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, SPARSE_FIG1, "--no-sparse-exec")
        assert "loop-IR path only" in out

    def test_dense_program_unchanged(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, DENSE_SOURCE)
        assert "Sparsity dispatch" not in out
