"""The full six-term A3A spin expression (paper Section 3).

Demonstrates multi-term operation minimization with cross-term CSE on
the paper's actual energy formula shape: six 4-factor terms over two
virtual-orbital ranges, antisymmetrized integrals built in the
high-level language from primitive integral functions.

Usage::

    python examples/a3a_full_spin.py
"""

from repro.chem.a3a_full import a3a_full_problem
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program
from repro.report import format_table


def main() -> None:
    problem = a3a_full_problem(VA=3, VB=2, O=2, Ci=20)
    print("six-term A3A at (VA=3, VB=2, O=2, Ci=20):\n")
    print("input statements:")
    for stmt in problem.program.statements:
        text = str(stmt)
        print(" ", text if len(text) < 90 else text[:87] + "...")

    direct = sum(statement_op_count(s) for s in problem.program.statements)
    with_cse = optimize_program(problem.program, cse=True)
    without_cse = optimize_program(problem.program, cse=False)

    print("\noperation minimization:")
    print(format_table(
        ["variant", "statements", "operations"],
        [
            ["direct evaluation", len(problem.program.statements), direct],
            ["optimized, no CSE", len(without_cse), sequence_op_count(without_cse)],
            ["optimized + CSE", len(with_cse), sequence_op_count(with_cse)],
        ],
    ))

    print("\noptimized formula sequence (with CSE):")
    for stmt in with_cse:
        print(" ", stmt)

    # validation
    inputs = random_inputs(problem.program, seed=0)
    want = run_statements(
        problem.program.statements, inputs, functions=problem.functions
    )["E"]
    got = run_statements(with_cse, inputs, functions=problem.functions)["E"]
    print(f"\nE (direct)    = {float(want):+.12f}")
    print(f"E (optimized) = {float(got):+.12f}")
    assert abs(float(want) - float(got)) < 1e-9
    print("validation: optimized sequence matches direct evaluation  [OK]")

    # paper scale analysis
    big = a3a_full_problem(VA=3000, VB=2800, O=100, Ci=1000)
    direct_big = sum(statement_op_count(s) for s in big.program.statements)
    opt_big = sequence_op_count(optimize_program(big.program))
    print("\nat paper scale (VA=3000, VB=2800, O=100, Ci=1000):")
    print(format_table(
        ["variant", "operations"],
        [["direct", f"{direct_big:.3e}"], ["optimized", f"{opt_big:.3e}"],
         ["reduction", f"{direct_big / opt_big:,.0f}x"]],
    ))


if __name__ == "__main__":
    main()
