"""The CCSD(T) A3A walkthrough (paper Section 3, Figs. 2-4).

Reproduces the paper's narrative end to end:

1. the unfused operation-minimal form needs tera-byte temporaries at
   paper scale (Fig. 2);
2. full fusion with redundant computation shrinks everything to scalars
   but inflates integral evaluation a million-fold (Fig. 3);
3. tiling with block size B interpolates: reuse grows as B^2 while
   storage grows as B^4 (Fig. 4);
4. sweeping B on a machine model shows the predicted improve /
   level-off / deteriorate curve and locates the optimum.

All three structures are executed at a small scale and verified to give
the exact same energy E.

Usage::

    python examples/ccsd_a3a.py
"""

from repro.chem.a3a import (
    a3a_problem,
    fig2_structure,
    fig2_table,
    fig3_structure,
    fig3_table,
    fig4_structure,
    fig4_table,
)
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs, run_statements
from repro.engine.machine import MachineModel, MemoryLevel
from repro.codegen.interp import execute
from repro.codegen.loops import loop_op_count, render
from repro.locality.cost_model import access_cost
from repro.report import format_table


def show_table(title, table):
    print(f"\n{title}")
    rows = [
        [arr, row["space"], row["space"] * 8, row["time"]]
        for arr, row in table.items()
    ]
    print(format_table(["array", "space (elems)", "bytes", "time (ops)"], rows))


def main() -> None:
    V, O, Ci = 3000, 100, 1000
    print(f"paper scale: V={V}, O={O}, Ci={Ci}")
    show_table("Fig. 2 -- unfused operation-minimal form", fig2_table(V, O, Ci))
    show_table("Fig. 3 -- fully fused (redundant computation)", fig3_table(V, O, Ci))
    show_table("Fig. 4 -- tiled, B=30", fig4_table(V, O, Ci, B=30))

    # --- executable validation at a small scale -------------------------
    print("\n" + "=" * 70)
    small = dict(V=4, O=2, Ci=50)
    print(f"executable validation at {small}")
    problem = a3a_problem(**small)
    inputs = random_inputs(problem.program, seed=0)
    reference = float(
        run_statements(problem.statements, inputs, functions=problem.functions)["E"]
    )
    rows = []
    for label, block in [
        ("Fig. 2 (unfused)", fig2_structure(problem)),
        ("Fig. 3 (fully fused)", fig3_structure(problem)),
        ("Fig. 4 (B=2)", fig4_structure(problem, 2)),
    ]:
        counters = Counters()
        env = execute(block, inputs, functions=problem.functions, counters=counters)
        err = abs(float(env["E"]) - reference)
        rows.append(
            [label, counters.total_ops, counters.func_evals,
             counters.elements_allocated, f"{err:.2e}"]
        )
    print(format_table(
        ["structure", "total ops", "integral evals", "temp elements", "|E - ref|"],
        rows,
    ))

    print("\nFig. 3 loop structure (the paper's pseudo-code, generated):")
    print(render(fig3_structure(problem)))

    # --- the B sweep ------------------------------------------------------
    print("\n" + "=" * 70)
    sweep = dict(V=16, O=2, Ci=64)
    machine = MachineModel(
        cache=MemoryLevel("cache", 256, 8.0),
        memory=MemoryLevel("memory", 3000, 2000.0),
    )
    print(f"B sweep at {sweep}, memory capacity {machine.memory.capacity}")
    prob = a3a_problem(**sweep)
    rows = []
    best = None
    for B in (1, 2, 4, 8, 16):
        block = fig4_structure(prob, B)
        ops = loop_op_count(block)
        misses = access_cost(block, machine.memory.capacity)
        t = machine.flop_cost * ops + machine.memory.miss_cost * misses
        rows.append([B, ops, misses, int(t)])
        if best is None or t < best[1]:
            best = (B, t)
    print(format_table(["B", "arithmetic ops", "modeled misses", "modeled time"], rows))
    print(f"\noptimal block size on this machine: B = {best[0]}")
    print("(performance improves, levels off, then deteriorates -- Section 3)")


if __name__ == "__main__":
    main()
