"""Operation minimization and memory minimization on the Section-2
example (paper Fig. 1).

Shows the 4*N^10 -> 6*N^6 reduction, the discovered BDCA formula
sequence, the fusion graph decision that shrinks T1 to a scalar and T2
to a 2-D array, and the final fused loop structure -- the exact story of
the paper's Fig. 1(a)-(c).

Usage::

    python examples/fig1_contraction.py
"""

import numpy as np

from repro.chem.workloads import fig1_program
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.codegen.builder import build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count, render
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_statement
from repro.report import format_table


def main() -> None:
    V, O = 10, 4
    prog = fig1_program(V=V, O=O)
    stmt = prog.statements[0]

    print("input specification:")
    print(f"  {stmt}")

    # --- algebraic transformation ----------------------------------------
    direct = statement_op_count(stmt)
    seq = optimize_statement(stmt)
    optimized = sequence_op_count(seq)
    print("\noperation minimization:")
    print(format_table(
        ["form", "operations"],
        [["direct ten-loop nest", direct],
         ["optimized formula sequence", optimized],
         ["reduction", f"{direct / optimized:,.0f}x"]],
    ))
    print("\nformula sequence (paper Fig. 1(a)):")
    for s in seq:
        print(f"  {s}")

    # --- memory minimization ----------------------------------------------
    root = build_tree(seq)
    fusion = minimize_memory(root)
    unfused_block = build_unfused(seq)
    fused_block = build_fused(fusion)
    unfused_sizes = array_sizes(unfused_block)
    fused_sizes = array_sizes(fused_block)
    print("\nmemory minimization (paper Fig. 1(c)):")
    rows = [
        [name, unfused_sizes[name], fused_sizes[name]]
        for name in sorted(unfused_sizes)
        if name != stmt.result.name
    ]
    print(format_table(["temporary", "unfused elements", "fused elements"], rows))
    assert loop_op_count(fused_block) == loop_op_count(unfused_block)
    print("\n(fusion changed the operation count by exactly 0 -- as required)")

    print("\nfused loop structure:")
    print(render(fused_block))

    # --- validation ---------------------------------------------------------
    arrays = random_inputs(prog, seed=0)
    want = evaluate_expression(stmt.expr, arrays)
    env = execute(fused_block, arrays)
    np.testing.assert_allclose(env[stmt.result.name], want, rtol=1e-9)
    print("\nvalidation: fused code matches einsum reference  [OK]")


if __name__ == "__main__":
    main()
