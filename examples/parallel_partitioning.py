"""Data distribution and communication minimization (paper Section 7).

Runs the distribution DP for a contraction on several processor-grid
shapes, prints the chosen n-tuple distributions, reproduces the paper's
redistribution examples (<1,t,j> -> <j,t,1> moves data; <j,*,1> ->
<j,t,1> is free), and executes each plan on the simulated grid to show
model-vs-measured communication.

Usage::

    python examples/parallel_partitioning.py
"""

import numpy as np

from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel, move_cost_elements
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.report import format_table


def main() -> None:
    # --- the paper's redistribution example --------------------------------
    print("Section-7 redistribution example (2x2x2 grid, arrays T[j,t]):")
    N = IndexRange("N", 16)
    j, t = Index("j", N), Index("t", N)
    grid3 = ProcessorGrid((2, 2, 2))
    cases = [
        ("T1: <1,t,j> -> <j,t,1>", Distribution((SINGLE, t, j)),
         Distribution((j, t, SINGLE))),
        ("T2: <j,*,1> -> <j,t,1>", Distribution((j, REPLICATED, SINGLE)),
         Distribution((j, t, SINGLE))),
    ]
    rows = []
    for label, src, dst in cases:
        cost = move_cost_elements((j, t), src, dst, grid3)
        rows.append([label, cost, "moves data" if cost else "free"])
    print(format_table(["redistribution", "max recv (elems)", "verdict"], rows))

    # --- distribution DP for a contraction ---------------------------------
    prog = parse_program("""
    range N = 16;
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    tree = expression_to_ptree(stmt.expr)
    model = CommModel(flop_cost=1.0, comm_cost=10.0)
    arrays = random_inputs(prog, seed=0)
    want = evaluate_expression(stmt.expr, arrays)

    print("\nC[i,j] = sum_k A[i,k] B[k,j] on different grids:")
    rows = []
    for dims in [(1,), (2,), (4,), (2, 2), (8,)]:
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid, model)
        got, report = GridSimulator(grid).run(plan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)
        rows.append(
            [str(grid), f"{plan.total_cost:,.0f}",
             report.max_local_ops, report.total_received,
             str(plan.dist[id(tree)])]
        )
    print(format_table(
        ["grid", "modeled cost", "max local ops", "elements moved",
         "result distribution"],
        rows,
    ))

    print("\nchosen plan on the 2x2 grid:")
    plan = optimize_distribution(tree, ProcessorGrid((2, 2)), model)
    print(plan.describe())

    # --- generated parallel program -----------------------------------------
    from repro.parallel.spmd import generate_spmd_source, run_spmd

    src = generate_spmd_source(plan)
    print("\ngenerated SPMD rank program (first 25 lines):")
    print("\n".join(src.splitlines()[:25]))
    run = run_spmd(plan, arrays)
    np.testing.assert_allclose(run.result, want, rtol=1e-10)
    print(f"\nlock-step execution on 4 ranks: {run.supersteps} supersteps, "
          f"{run.comm.total_traffic} elements moved")
    print("all plans + the generated SPMD program verified against the "
          "einsum reference  [OK]")


if __name__ == "__main__":
    main()
