"""Data-locality optimization (paper Section 6).

Applies the memory-access cost model and the doubling tile-size search
to a contraction at two hierarchy levels: a small cache (cache blocking)
and a physical-memory budget (disk-access minimization), printing the
modeled miss counts per tile choice.

Usage::

    python examples/locality_tuning.py
"""

from repro.expr.parser import parse_program
from repro.codegen.builder import build_unfused
from repro.codegen.loops import render
from repro.engine.machine import MachineModel, MemoryLevel
from repro.locality.cost_model import access_cost
from repro.locality.tile_search import optimize_locality
from repro.report import format_table


def main() -> None:
    n = 32
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    block = build_unfused(prog.statements)
    machine = MachineModel(
        cache=MemoryLevel("cache", 256, 8.0),
        memory=MemoryLevel("memory", 2048, 512.0),
    )

    print(f"matrix multiply, N={n}; cache={machine.cache.capacity} elems, "
          f"memory={machine.memory.capacity} elems")

    rows = []
    for label, capacity in [
        ("cache", machine.cache.capacity),
        ("memory (disk opt)", machine.memory.capacity),
    ]:
        result = optimize_locality(block, capacity)
        tiles = {i.name: b for i, b in result.tile_sizes.items()}
        rows.append(
            [label, capacity, result.baseline_cost, result.cost,
             f"{result.improvement:.1f}x", str(tiles or "-")]
        )
    print(format_table(
        ["level", "capacity", "baseline misses", "blocked misses",
         "improvement", "tiles"],
        rows,
    ))

    result = optimize_locality(block, machine.cache.capacity)
    print("\ncache-blocked loop structure:")
    print(render(result.structure))

    print("\nmiss counts across the doubling search grid (cache level):")
    table = sorted(result.table, key=lambda r: r["cost"])[:10]
    print(format_table(
        ["tiles", "modeled misses"],
        [[str(r["tiles"] or "-"), r["cost"]] for r in table],
    ))


if __name__ == "__main__":
    main()
