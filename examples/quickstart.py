"""Quickstart: synthesize a parallel program from a tensor-contraction
specification.

Runs the full Fig.-5 pipeline of the paper on the Section-2 example,
prints the per-stage report, the synthesized loop structure, and the
generated Python code, then validates the result against a direct
einsum evaluation.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import CommModel, ProcessorGrid, SynthesisConfig, synthesize
from repro.engine.executor import evaluate_expression, random_inputs

SOURCE = """
# The paper's Section-2 example:
#   S[a,b,i,j] = sum_{cdefkl} A[a,c,i,k] B[b,e,f,l] C[d,f,j,k] D[c,d,e,l]
range V = 8;
range O = 4;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k);
tensor B(b, e, f, l);
tensor C(d, f, j, k);
tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


def main() -> None:
    config = SynthesisConfig(grid=ProcessorGrid((2, 2)), comm=CommModel())
    result = synthesize(SOURCE, config)

    print("=" * 70)
    print("SYNTHESIS REPORT")
    print("=" * 70)
    print(result.describe())

    print()
    print("=" * 70)
    print("SYNTHESIZED LOOP STRUCTURE")
    print("=" * 70)
    print(result.render_structure())

    print()
    print("=" * 70)
    print("GENERATED PYTHON (first 30 lines)")
    print("=" * 70)
    print("\n".join(result.source.splitlines()[:30]))

    print()
    print("=" * 70)
    print("DISTRIBUTION PLANS (Section 7)")
    print("=" * 70)
    for name, plan in result.partition_plans.items():
        print(f"--- statement producing {name} ---")
        print(plan.describe())

    # validate against the reference evaluation
    arrays = random_inputs(result.program, seed=0)
    want = evaluate_expression(result.program.statements[0].expr, arrays)
    kernel = result.compile()
    got = kernel(arrays)["S"]
    np.testing.assert_allclose(got, want, rtol=1e-9)
    print()
    print("validation: synthesized kernel matches einsum reference  [OK]")


if __name__ == "__main__":
    main()
