"""Out-of-core behaviour: measuring disk paging (paper Sections 3/6).

Executes the A3A Fig.-4 structures through a page-granular LRU buffer
pool at a fixed memory budget and prints the measured disk traffic per
block size -- the measured counterpart of "expensive paging in and out
of disk will be required for Y".

Also shows disk-level blocking on a matrix multiply: the Section-6 tile
search run with the *memory* capacity (disk-access minimization), with
its decision validated by measured I/O.

Usage::

    python examples/out_of_core.py
"""

from repro.chem.a3a import a3a_problem, fig4_structure
from repro.engine.executor import random_inputs
from repro.engine.outofcore import simulate_out_of_core
from repro.expr.parser import parse_program
from repro.codegen.builder import build_unfused
from repro.codegen.loops import total_memory
from repro.locality.tile_search import optimize_locality
from repro.report import format_table


def main() -> None:
    # --- A3A block-size sweep under a memory budget -----------------------
    problem = a3a_problem(V=4, O=2, Ci=10)
    inputs = random_inputs(problem.program, seed=0)
    budget, page = 160, 4
    print(f"A3A (V=4, O=2) under a {budget}-element memory budget, "
          f"{page}-element pages:\n")
    rows = []
    for B in (1, 2, 4):
        block = fig4_structure(problem, B)
        stats = simulate_out_of_core(
            block, inputs, budget, page, functions=problem.functions
        )
        rows.append(
            [B, total_memory(block), stats.disk_reads, stats.disk_writes,
             stats.evictions]
        )
    print(format_table(
        ["B", "temp memory", "disk reads", "disk writes", "evictions"],
        rows,
    ))
    print("\n(B=4's temporaries exceed the budget: the pool thrashes --")
    print(" the paper's predicted paging cliff, measured)")

    # --- disk-level blocking of a matrix multiply -------------------------
    n = 16
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    block = build_unfused(prog.statements)
    arrays = random_inputs(prog, seed=1)
    budget = 96
    print(f"\nmatmul {n}^3 with a {budget}-element buffer pool:")
    untiled = simulate_out_of_core(block, arrays, budget, page)
    result = optimize_locality(block, capacity=budget)
    tiled = simulate_out_of_core(result.structure, arrays, budget, page)
    print(format_table(
        ["structure", "modeled misses", "measured reads", "measured writes"],
        [
            ["untiled", result.baseline_cost, untiled.disk_reads,
             untiled.disk_writes],
            [f"blocked {dict((i.name, b) for i, b in result.tile_sizes.items())}",
             result.cost, tiled.disk_reads, tiled.disk_writes],
        ],
    ))
    assert tiled.total_io < untiled.total_io
    print("\nthe disk-level tile search's decision is confirmed by "
          "measured I/O  [OK]")


if __name__ == "__main__":
    main()
