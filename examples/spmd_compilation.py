"""Compilation into parallel programs (the paper's title, end to end).

Takes a contraction, runs the Section-7 distribution DP, compiles the
plan to a per-rank SPMD Python program, prints the program, executes it
on the in-process lock-step driver (the mpiexec stand-in), and verifies
both the numerics and that the traffic equals the cost model's
prediction.

Usage::

    python examples/spmd_compilation.py
"""

import numpy as np

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel
from repro.parallel.gridsearch import choose_grid
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.parallel.spmd import compile_schedule, generate_spmd_source, run_spmd
from repro.report import format_table


def main() -> None:
    prog = parse_program("""
    range M = 32; range N = 8; range K = 32;
    index i : M; index j : N; index k : K;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    tree = expression_to_ptree(stmt.expr)

    # the compiler picks the logical grid shape for 8 processors
    choice = choose_grid(tree, 8, CommModel())
    plan = choice.plan
    print("grid-shape search for 8 processors:")
    print(format_table(
        ["shape", "modeled cost"],
        [["x".join(map(str, s)), f"{c:,.0f}"]
         for s, c in sorted(choice.table, key=lambda t: t[1])],
    ))
    print(f"\nchosen: {choice.grid}\n")
    print("plan:")
    print(plan.describe())

    schedule = compile_schedule(plan)
    print(f"\nlowered schedule ({len(schedule)} steps):")
    for k, step in enumerate(schedule):
        print(f"  {k}: {step.kind} -> {step.out}")

    source = generate_spmd_source(plan)
    print(f"\ngenerated SPMD rank program ({len(source.splitlines())} lines),"
          " first 40:")
    print("\n".join(source.splitlines()[:40]))

    arrays = random_inputs(prog, seed=0)
    run = run_spmd(plan, arrays)
    want = evaluate_expression(stmt.expr, arrays)
    np.testing.assert_allclose(run.result, want, rtol=1e-10)

    _, report = GridSimulator(choice.grid).run(plan, arrays)
    print(format_table(
        ["check", "value"],
        [
            ["supersteps", run.supersteps],
            ["elements moved (generated program)", run.comm.total_traffic],
            ["elements moved (cost-model simulator)", report.total_received],
            ["max |result error| vs einsum",
             f"{float(np.max(np.abs(run.result - want))):.2e}"],
        ],
    ))
    assert run.comm.total_traffic == report.total_received
    print("\ngenerated parallel program verified: exact numerics, traffic "
          "equals the model  [OK]")


if __name__ == "__main__":
    main()
