#!/usr/bin/env python
"""Load smoke test of the compilation service.

Boots a :class:`~repro.server.app.ReproServer` in-process and drives a
mixed cold/warm request stream through real HTTP: a handful of
distinct specifications (the cold set, each synthesized once) repeated
across the remaining requests (the warm set, served from the plan
cache), with a slice of execute requests exercising the warm SPMD
pool.  Reports p50/p95/p99 latency and the warm hit rate, persists the
series to ``benchmarks/BENCH_server.json`` (via the benchmark capture
helper), and exits nonzero when the warm hit rate falls below the
floor -- CI runs this as the serving regression gate.

With ``--chaos`` the execute slice runs on the process backend with a
``kill_worker@0`` :class:`~repro.robustness.faults.ChaosSchedule`
attached -- a worker is killed out from under every execute -- and the
gate shifts to the fault-tolerance contract: zero wrong results (every
200 matches the clean-run checksum), every failure structured JSON,
and overall success above ``--min-success`` (default 99%).

Usage::

    PYTHONPATH=src python scripts/load_smoke.py --requests 200
    PYTHONPATH=src python scripts/load_smoke.py --requests 200 --chaos
"""

from __future__ import annotations

import argparse
import asyncio
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"
    ),
)

from repro.server.app import ReproServer, ServerConfig  # noqa: E402
from repro.server.client import arequest  # noqa: E402

from _record import write_bench  # noqa: E402

PROGRAM_TEMPLATE = """
range N = {n};
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C{n}(i, j) = sum(k) A(i, k) * B(k, j);
"""

#: distinct cold specifications; every other request repeats one of
#: these and must be served warm
COLD_SET = [PROGRAM_TEMPLATE.format(n=n) for n in range(8, 24, 2)]

EXECUTE_PROGRAM = PROGRAM_TEMPLATE.format(n=16)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _execute_payload(chaos):
    payload = {
        "program": EXECUTE_PROGRAM,
        "options": {"grid": 2},
        "result": "checksum",
        "seed": 0,
    }
    if chaos:
        payload["backend"] = "process"
        payload["chaos"] = "kill_worker@0"
    return payload


async def drive(app, host, port, total, execute_every, chaos=False):
    latencies_ms = []
    outcomes = []
    faults = {"ok": 0, "failed": 0, "wrong": 0, "unstructured": 0}
    reference = None
    if chaos:
        # clean-run checksum: the correctness oracle for recovered runs
        clean = dict(_execute_payload(True))
        del clean["chaos"]
        status, body = await arequest(
            host, port, "POST", "/v1/execute", clean
        )
        if status != 200:
            raise SystemExit(f"reference execute failed: {status} {body}")
        reference = body["outputs"]["C16"]
    for i in range(total):
        if execute_every and i % execute_every == execute_every - 1:
            path, payload = "/v1/execute", _execute_payload(chaos)
        else:
            path, payload = "/v1/synthesize", {
                "program": COLD_SET[i % len(COLD_SET)],
            }
        t0 = time.perf_counter()
        try:
            status, body = await arequest(host, port, "POST", path, payload)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            if not chaos:
                raise
            faults["failed"] += 1
            faults["unstructured"] += 1
            print(f"  request {i} ({path}): transport error {exc!r}")
            continue
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        if status != 200:
            if not chaos:
                raise SystemExit(
                    f"request {i} ({path}) failed: {status} {body}"
                )
            faults["failed"] += 1
            if "error" not in body:
                faults["unstructured"] += 1
            continue
        if chaos and path == "/v1/execute":
            if body["outputs"]["C16"] != reference:
                faults["wrong"] += 1
                continue
        faults["ok"] += 1
        outcomes.append(body["cached"])
    return latencies_ms, outcomes, faults


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--execute-every", type=int, default=10,
        help="every Nth request is an execute (0 disables)",
    )
    parser.add_argument(
        "--min-warm-rate", type=float, default=0.90,
        help="fail when the warm hit rate drops below this",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="kill a worker under every execute; gate on the "
        "fault-tolerance contract instead of raising on failures",
    )
    parser.add_argument(
        "--min-success", type=float, default=0.99,
        help="with --chaos, fail when the success rate drops below this",
    )
    args = parser.parse_args(argv)
    if args.requests < len(COLD_SET) * 2:
        print(
            f"error: need at least {len(COLD_SET) * 2} requests",
            file=sys.stderr,
        )
        return 2
    if args.chaos and not args.execute_every:
        print(
            "error: --chaos needs an execute slice (--execute-every > 0)",
            file=sys.stderr,
        )
        return 2

    async def run():
        app = ReproServer(ServerConfig(port=0))
        await app.start()
        try:
            result = await drive(
                app, app.host, app.port, args.requests,
                args.execute_every, chaos=args.chaos,
            )
            _, stats = await arequest(
                app.host, app.port, "GET", "/healthz"
            )
            return result, stats
        finally:
            await app.stop()

    started = time.perf_counter()
    (latencies_ms, outcomes, faults), stats = asyncio.run(run())
    wall_s = time.perf_counter() - started

    warm = sum(1 for outcome in outcomes if outcome in ("memory", "disk"))
    warm_rate = warm / len(outcomes)
    p50 = statistics.median(latencies_ms)
    p95 = _percentile(latencies_ms, 0.95)
    p99 = _percentile(latencies_ms, 0.99)
    success_rate = faults["ok"] / args.requests
    rows = [
        ["requests", args.requests],
        ["distinct specs (cold)", len(COLD_SET)],
        ["warm hit rate", f"{warm_rate:.1%}"],
        ["p50 ms", f"{p50:.2f}"],
        ["p95 ms", f"{p95:.2f}"],
        ["p99 ms", f"{p99:.2f}"],
        ["wall s", f"{wall_s:.2f}"],
        ["pool reuse", stats["pools"]["reused"]],
    ]
    metrics = {
        "requests": args.requests,
        "warm_hit_rate": round(warm_rate, 4),
        "p50_ms": round(p50, 3),
        "p95_ms": round(p95, 3),
        "p99_ms": round(p99, 3),
        "wall_s": round(wall_s, 3),
    }
    if args.chaos:
        rows += [
            ["success rate", f"{success_rate:.1%}"],
            ["wrong results", faults["wrong"]],
            ["unstructured failures", faults["unstructured"]],
            ["pool respawns", stats["pools"]["respawned"]],
        ]
        metrics.update(
            success_rate=round(success_rate, 4),
            wrong_results=faults["wrong"],
            unstructured_failures=faults["unstructured"],
            pool_respawns=stats["pools"]["respawned"],
        )
    width = max(len(str(label)) for label, _ in rows)
    mode = "chaos (kill_worker under every execute)" if args.chaos else (
        "mixed cold/warm stream over HTTP"
    )
    print(f"load smoke: {mode}")
    for label, value in rows:
        print(f"  {label:<{width}}  {value}")
    write_bench(
        "bench_chaos" if args.chaos else "bench_server",
        "load_smoke_chaos" if args.chaos else "load_smoke",
        f"load smoke: {args.requests} requests ({mode})",
        ["quantity", "value"],
        rows,
        metrics=metrics,
    )
    failures = []
    if warm_rate < args.min_warm_rate:
        failures.append(
            f"warm hit rate {warm_rate:.1%} < {args.min_warm_rate:.0%}"
        )
    if args.chaos:
        if faults["wrong"]:
            failures.append(
                f"{faults['wrong']} recovered execute(s) returned "
                "WRONG results"
            )
        if faults["unstructured"]:
            failures.append(
                f"{faults['unstructured']} failure(s) were not "
                "structured JSON"
            )
        if success_rate < args.min_success:
            failures.append(
                f"success rate {success_rate:.1%} < "
                f"{args.min_success:.0%}"
            )
        if not stats["pools"]["respawned"]:
            failures.append("chaos never fired (no pool respawns)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: warm hit rate {warm_rate:.1%}"
        + (f", chaos success rate {success_rate:.1%}" if args.chaos else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
