#!/usr/bin/env python
"""Load smoke test of the compilation service.

Boots a :class:`~repro.server.app.ReproServer` in-process and drives a
mixed cold/warm request stream through real HTTP: a handful of
distinct specifications (the cold set, each synthesized once) repeated
across the remaining requests (the warm set, served from the plan
cache), with a slice of execute requests exercising the warm SPMD
pool.  Reports p50/p95/p99 latency and the warm hit rate, persists the
series to ``benchmarks/BENCH_server.json`` (via the benchmark capture
helper), and exits nonzero when the warm hit rate falls below the
floor -- CI runs this as the serving regression gate.

Usage::

    PYTHONPATH=src python scripts/load_smoke.py --requests 200
"""

from __future__ import annotations

import argparse
import asyncio
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"
    ),
)

from repro.server.app import ReproServer, ServerConfig  # noqa: E402
from repro.server.client import arequest  # noqa: E402

from _record import write_bench  # noqa: E402

PROGRAM_TEMPLATE = """
range N = {n};
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C{n}(i, j) = sum(k) A(i, k) * B(k, j);
"""

#: distinct cold specifications; every other request repeats one of
#: these and must be served warm
COLD_SET = [PROGRAM_TEMPLATE.format(n=n) for n in range(8, 24, 2)]

EXECUTE_PROGRAM = PROGRAM_TEMPLATE.format(n=16)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


async def drive(app, host, port, total, execute_every):
    latencies_ms = []
    outcomes = []
    for i in range(total):
        if execute_every and i % execute_every == execute_every - 1:
            path, payload = "/v1/execute", {
                "program": EXECUTE_PROGRAM,
                "options": {"grid": 2},
                "result": "checksum",
            }
        else:
            path, payload = "/v1/synthesize", {
                "program": COLD_SET[i % len(COLD_SET)],
            }
        t0 = time.perf_counter()
        status, body = await arequest(host, port, "POST", path, payload)
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        if status != 200:
            raise SystemExit(
                f"request {i} ({path}) failed: {status} {body}"
            )
        outcomes.append(body["cached"])
    return latencies_ms, outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--execute-every", type=int, default=10,
        help="every Nth request is an execute (0 disables)",
    )
    parser.add_argument(
        "--min-warm-rate", type=float, default=0.90,
        help="fail when the warm hit rate drops below this",
    )
    args = parser.parse_args(argv)
    if args.requests < len(COLD_SET) * 2:
        print(
            f"error: need at least {len(COLD_SET) * 2} requests",
            file=sys.stderr,
        )
        return 2

    async def run():
        app = ReproServer(ServerConfig(port=0))
        await app.start()
        try:
            result = await drive(
                app, app.host, app.port, args.requests, args.execute_every
            )
            _, stats = await arequest(
                app.host, app.port, "GET", "/healthz"
            )
            return result, stats
        finally:
            await app.stop()

    started = time.perf_counter()
    (latencies_ms, outcomes), stats = asyncio.run(run())
    wall_s = time.perf_counter() - started

    warm = sum(1 for outcome in outcomes if outcome in ("memory", "disk"))
    warm_rate = warm / len(outcomes)
    p50 = statistics.median(latencies_ms)
    p95 = _percentile(latencies_ms, 0.95)
    p99 = _percentile(latencies_ms, 0.99)
    rows = [
        ["requests", len(outcomes)],
        ["distinct specs (cold)", len(COLD_SET)],
        ["warm hit rate", f"{warm_rate:.1%}"],
        ["p50 ms", f"{p50:.2f}"],
        ["p95 ms", f"{p95:.2f}"],
        ["p99 ms", f"{p99:.2f}"],
        ["wall s", f"{wall_s:.2f}"],
        ["pool reuse", stats["pools"]["reused"]],
    ]
    width = max(len(str(label)) for label, _ in rows)
    print("load smoke: mixed cold/warm stream over HTTP")
    for label, value in rows:
        print(f"  {label:<{width}}  {value}")
    write_bench(
        "bench_server",
        "load_smoke",
        f"load smoke: {len(outcomes)} mixed cold/warm requests",
        ["quantity", "value"],
        rows,
        metrics={
            "requests": len(outcomes),
            "warm_hit_rate": round(warm_rate, 4),
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "wall_s": round(wall_s, 3),
        },
    )
    if warm_rate < args.min_warm_rate:
        print(
            f"FAIL: warm hit rate {warm_rate:.1%} < "
            f"{args.min_warm_rate:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: warm hit rate {warm_rate:.1%} >= {args.min_warm_rate:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
