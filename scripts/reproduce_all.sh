#!/usr/bin/env bash
# Regenerate every reproduction artifact:
#   - full test suite (correctness + property tests)
#   - every paper table/figure (benchmarks, printed with -s)
#   - timing benchmarks
#   - all runnable examples
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== installing =="
pip install -e . --quiet --no-build-isolation

echo "== test suite =="
python -m pytest tests/ -q

echo "== paper tables (E1-E13 + ablations) =="
python -m pytest benchmarks/ --benchmark-disable -q -s

echo "== timing benchmarks =="
python -m pytest benchmarks/ --benchmark-only -q

echo "== examples =="
for f in examples/*.py; do
  echo "--- $f ---"
  python "$f" > /dev/null
  echo "OK"
done

echo "== CLI =="
python -m repro examples/ccsd_residual.tce --no-cache-opt > /dev/null
echo "OK"

echo "all reproduction artifacts regenerated successfully"
