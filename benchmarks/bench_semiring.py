"""E25: semiring-generalized contractions as a graph engine.

The semiring layer (:mod:`repro.semiring`) swaps the scalar algebra of
every contraction, so the pipeline's compiled native nests run graph
dynamic programming directly: all-pairs shortest paths is
``ceil(log2(n-1))`` matrix squarings over ``min_plus``
(:mod:`repro.graphs`).  This experiment measures that against the
textbook alternative -- a pure-Python Bellman-Ford relaxation from
every source -- and pins the cross-substrate parity story:

* **speedup**: native ``min_plus`` APSP vs ``bellman_ford`` from all
  ``n`` sources.  The compiled nest does O(n^3 log n) fused min/add
  ops; the reference does O(n^3)-ish interpreted Python.  Floor:
  ``E25_MIN_SPEEDUP`` (default 5).
* **parity**: the same APSP program, bit-identical across the loop-IR
  interpreter, the einsum/gemm/native kernel runners, and the local +
  process SPMD backends (idempotent ``min`` makes every legal
  evaluation order produce identical bits), and equal to a pure-Python
  Floyd-Warshall oracle to 1e-12.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graphs import (
    apsp_program,
    bellman_ford,
    floyd_warshall,
    random_weight_matrix,
    squaring_steps,
)
from repro.kernels import native_available
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig, synthesize

MIN_SPEEDUP = float(os.environ.get("E25_MIN_SPEEDUP", "5.0"))
RTOL = ATOL = 1e-12


def _best(fn, repeats: int = 3, inner: int = 1) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        times.append((time.perf_counter() - t0) / inner)
    return min(times)


@pytest.mark.skipif(
    not native_available(),
    reason="no native backend (numba or a C compiler) on this machine",
)
def test_apsp_native_vs_bellman_ford(record_rows):
    """Native min_plus repeated squaring vs all-sources Bellman-Ford."""
    n = 64
    weights = random_weight_matrix(n, density=0.3, seed=0)
    source, res = apsp_program(n)
    result = synthesize(
        source, SynthesisConfig(semiring="min_plus", codegen="native")
    )
    runner = result.kernel_runner()
    inputs = {"W": weights}

    native_out = runner.run(inputs, copy=True)[res]
    reference = np.stack(
        [bellman_ford(weights, source=s) for s in range(n)]
    )
    assert np.allclose(native_out, reference, rtol=RTOL, atol=ATOL)

    native_s = _best(lambda: runner.run(inputs), repeats=5, inner=3)
    python_s = _best(
        lambda: [bellman_ford(weights, source=s) for s in range(n)],
        repeats=2,
    )
    speedup = python_s / native_s
    record_rows(
        "E25: APSP over min_plus -- native nests vs pure-Python "
        "Bellman-Ford (all sources)",
        ["engine", "algorithm", "time (s)", "speedup"],
        [
            [
                "python loops",
                f"bellman_ford x{n} sources",
                f"{python_s:.4f}",
                "1.0x",
            ],
            [
                "native nests",
                f"{squaring_steps(n)} min_plus squarings",
                f"{native_s:.4f}",
                f"{speedup:.1f}x",
            ],
        ],
        metrics={
            "n": n,
            "python_s": python_s,
            "native_s": native_s,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP


def test_parity_across_substrates(record_rows):
    """One APSP program, every substrate, identical bits."""
    n = 10
    weights = random_weight_matrix(n, density=0.4, seed=1)
    source, res = apsp_program(n)
    inputs = {"W": weights}
    oracle = floyd_warshall(weights)

    outputs = {}
    interp_result = synthesize(source, SynthesisConfig(semiring="min_plus"))
    outputs["interp"] = interp_result.execute(inputs)[res]

    modes = ["einsum", "gemm"] + (["native"] if native_available() else [])
    for mode in modes:
        result = synthesize(
            source, SynthesisConfig(semiring="min_plus", codegen=mode)
        )
        outputs[f"kernel/{mode}"] = result.kernel_runner().run(
            inputs, copy=True
        )[res]

    grid_result = synthesize(
        source,
        SynthesisConfig(semiring="min_plus", grid=ProcessorGrid((2,))),
    )
    outputs["spmd/local"] = grid_result.run_parallel(inputs)[res]
    outputs["spmd/process"] = grid_result.run_parallel(
        inputs, backend="process", procs=2
    )[res]

    base = outputs["interp"]
    rows = []
    for name, out in outputs.items():
        identical = bool(np.array_equal(out, base))
        close = bool(np.allclose(out, oracle, rtol=RTOL, atol=ATOL))
        rows.append(
            [name, "yes" if identical else "NO", "yes" if close else "NO"]
        )
        assert identical, f"{name} diverges from the interpreter"
        assert close, f"{name} diverges from floyd_warshall"
    record_rows(
        "E25: min_plus APSP parity -- substrates vs interpreter bits "
        "and the Floyd-Warshall oracle",
        ["substrate", "bit-identical", "oracle 1e-12"],
        rows,
        metrics={"n": n, "substrates": len(rows)},
    )
