"""E6 -- paper Section 3: the block-size sweep.

    "So we can expect that as B is increased, performance will improve
    and then level off and then deteriorate.  The optimum value of B
    will clearly depend on the cost of access at the various levels of
    the memory hierarchy."

Reproduces the predicted U-shaped curve: modeled total time (arithmetic
+ memory-hierarchy misses on a machine model) improves with B while
integral reuse grows, levels off once B^2 is comparable to Ci, and
deteriorates when the B^4 temporaries exceed the capacity.  The optimum
lies strictly inside the sweep.
"""

import pytest

from repro.chem.a3a import a3a_problem, fig4_structure
from repro.engine.machine import MachineModel, MemoryLevel
from repro.codegen.loops import loop_op_count, total_memory
from repro.locality.cost_model import access_cost

V, O, CI = 16, 2, 64
#: capacity between the B=4 working set and the B=8 one
MACHINE = MachineModel(
    cache=MemoryLevel("cache", 256, 8.0),
    memory=MemoryLevel("memory", 3000, 2000.0),
)


def modeled_time(problem, B):
    block = fig4_structure(problem, B)
    ops = loop_op_count(block)
    misses = access_cost(block, MACHINE.memory.capacity)
    return (
        MACHINE.flop_cost * ops + MACHINE.memory.miss_cost * misses,
        ops,
        misses,
        total_memory(block),
    )


@pytest.fixture(scope="module")
def sweep():
    problem = a3a_problem(V=V, O=O, Ci=CI)
    out = {}
    for B in (1, 2, 4, 8, 16):
        out[B] = modeled_time(problem, B)
    return out


def test_curve_improves_then_deteriorates(sweep, record_rows):
    times = {B: t[0] for B, t in sweep.items()}
    best_B = min(times, key=times.get)
    record_rows(
        f"B sweep (V={V}, O={O}, Ci={CI}, mem={MACHINE.memory.capacity})",
        ["B", "modeled time", "ops", "modeled misses", "temp memory"],
        [[B, *sweep[B]] for B in sorted(sweep)],
    )
    # improves from B=1
    assert times[2] < times[1]
    # deteriorates at the largest block size
    assert times[max(times)] > times[best_B]
    # the optimum is interior
    assert 1 < best_B < V


def test_ops_monotone_decreasing_with_b(sweep):
    ops = [sweep[B][1] for B in sorted(sweep)]
    assert ops == sorted(ops, reverse=True)


def test_memory_monotone_increasing_with_b(sweep):
    mem = [sweep[B][3] for B in sorted(sweep)]
    assert mem == sorted(mem)


def test_reuse_levels_off_beyond_ci(sweep):
    """Once B^2 exceeds Ci the arithmetic no longer improves much: the
    op reduction from B=8 to B=16 is smaller than from B=1 to B=2."""
    gain_early = sweep[1][1] - sweep[2][1]
    gain_late = sweep[8][1] - sweep[16][1]
    assert gain_late < gain_early / 10


def test_benchmark_sweep_point(benchmark):
    problem = a3a_problem(V=V, O=O, Ci=CI)
    time, *_ = benchmark(modeled_time, problem, 4)
    assert time > 0
