"""E18: compiled GEMM kernel plans vs per-call einsum on CCSD doubles.

The kernel subsystem (:mod:`repro.kernels`) lowers every binary
contraction of the synthesized formula sequence to permute + reshape +
``np.matmul`` once, at synthesis time, and recycles all intermediate
buffers through an arena.  This experiment measures the end-to-end
repeated-execution win over the reference path, which re-plans the
einsum contraction path and reallocates every intermediate on each
call.

Floor: ``E18_MIN_SPEEDUP`` (default 2.0; CI perf smoke relaxes to 1.5
to tolerate shared-runner noise).  Timings are min-of-repeats, which is
the standard way to strip scheduler noise from a single-machine
comparison.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import synthesize, random_inputs
from repro.chem.workloads import ccsd_doubles_program
from repro.engine.executor import run_statements
from repro.kernels import clear_einsum_path_cache, einsum_path_cache_stats

# Sized so per-call planning + allocation overhead (what the compiled
# plan removes) is a solid share of the run without timings dropping
# into jitter territory; at much larger V/O the contraction FLOPs
# dominate both paths and the ratio tends to 1.
V, O = 16, 5
MIN_SPEEDUP = float(os.environ.get("E18_MIN_SPEEDUP", "2.0"))


def _best(fn, repeats: int = 5, inner: int = 4) -> float:
    """Min-of-repeats wall time per call."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        times.append((time.perf_counter() - t0) / inner)
    return min(times)


@pytest.fixture(scope="module")
def ccsd():
    prog = ccsd_doubles_program(V=V, O=O)
    result = synthesize(prog)
    inputs = random_inputs(prog, None, seed=0)
    return prog, result, inputs


class TestE18GemmKernels:
    def test_gemm_plan_matches_reference(self, ccsd):
        _, result, inputs = ccsd
        ref = run_statements(
            result.statements, inputs, None, None, path_cache=False
        )
        got = result.kernel_runner().run(inputs)
        np.testing.assert_allclose(got["R"], ref["R"], rtol=1e-10, atol=1e-10)

    def test_gemm_vs_einsum(self, ccsd, record_rows):
        _, result, inputs = ccsd
        stmts = result.statements
        plan = result.kernel_plan
        assert plan is not None and plan.gemm_terms > 0

        runner = result.kernel_runner()
        runner.run(inputs)  # warm: buffers allocated, functions cached
        run_statements(stmts, inputs, None, None, path_cache=False)

        base = _best(
            lambda: run_statements(
                stmts, inputs, None, None, path_cache=False
            )
        )
        clear_einsum_path_cache()
        run_statements(stmts, inputs, None, None)  # warm the path cache
        cached = _best(lambda: run_statements(stmts, inputs, None, None))
        fast = _best(lambda: runner.run(inputs))
        speedup = base / fast
        cached_speedup = base / cached

        record_rows(
            f"E18: CCSD doubles (V={V}, O={O}) repeated execution",
            ["path", "ms/run", "speedup vs per-call einsum"],
            [
                ["einsum(optimize=True), per-call planning",
                 f"{base * 1e3:.3f}", "1.00x"],
                ["einsum + path cache",
                 f"{cached * 1e3:.3f}", f"{cached_speedup:.2f}x"],
                ["compiled GEMM plan + arena",
                 f"{fast * 1e3:.3f}", f"{speedup:.2f}x"],
            ],
            metrics={
                "V": V,
                "O": O,
                "einsum_percall_s": base,
                "einsum_path_cached_s": cached,
                "gemm_plan_s": fast,
                "speedup": speedup,
                "path_cached_speedup": cached_speedup,
                "gemm_terms": plan.gemm_terms,
                "copy_terms": plan.copy_terms,
                "einsum_terms": plan.einsum_terms,
                "min_speedup_floor": MIN_SPEEDUP,
            },
        )
        assert speedup >= MIN_SPEEDUP, (
            f"GEMM plan only {speedup:.2f}x over per-call einsum "
            f"(floor {MIN_SPEEDUP}x)"
        )

    def test_steady_state_is_allocation_free(self, ccsd, record_rows):
        _, result, inputs = ccsd
        runner = result.kernel_runner()
        runner.run(inputs)
        runner.run(inputs)  # any shape-dependent scratch settles by here
        before = runner.arena.allocations
        for _ in range(5):
            runner.run(inputs)
        after = runner.arena.allocations
        record_rows(
            "E18: arena steady state",
            ["metric", "value"],
            [
                ["allocations during 5 warm runs", after - before],
                ["arena", runner.arena.describe()],
            ],
            metrics={"steady_state_allocations": after - before},
        )
        assert after == before

    def test_path_cache_hit_rate(self, ccsd, record_rows):
        _, result, inputs = ccsd
        clear_einsum_path_cache()
        run_statements(result.statements, inputs, None, None)
        cold = einsum_path_cache_stats()
        run_statements(result.statements, inputs, None, None)
        warm = einsum_path_cache_stats()
        record_rows(
            "E18: einsum path cache",
            ["run", "hits", "misses"],
            [
                ["cold", cold["hits"], cold["misses"]],
                ["warm", warm["hits"], warm["misses"]],
            ],
            metrics={"cold": cold, "warm": warm},
        )
        # second run re-plans nothing
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] > cold["hits"]
