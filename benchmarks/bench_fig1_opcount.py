"""E1 -- paper Section 2 / Fig. 1(a,b): operation minimization.

Reproduces: direct translation of ``S = sum A*B*C*D`` costs ``4 x N^10``
operations; the operation-minimal BDCA formula sequence costs
``6 x N^6``; our search must find that factorization.
"""

import pytest

from repro.expr.canonical import flatten
from repro.expr.parser import parse_program
from repro.opmin.cost import statement_op_count
from repro.opmin.multi_term import optimize_statement
from repro.opmin.optree import Contract, Leaf, tree_cost
from repro.opmin.single_term import optimize_term
from repro.opmin.cost import sequence_op_count


def uniform_fig1(n: int):
    return parse_program(f"""
    range N = {n};
    index a, b, c, d, e, f, i, j, k, l : N;
    tensor A(a, c, i, k); tensor B(b, e, f, l);
    tensor C(d, f, j, k); tensor D(c, d, e, l);
    S(a, b, i, j) = sum(c, d, e, f, k, l)
        A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
    """)


@pytest.mark.parametrize("n", [4, 8, 16, 64])
def test_direct_cost_is_4_n10(n, record_rows):
    prog = uniform_fig1(n)
    direct = statement_op_count(prog.statements[0])
    assert direct == 4 * n**10
    record_rows(
        f"direct ten-loop cost, N={n}",
        ["N", "paper 4*N^10", "measured"],
        [[n, 4 * n**10, direct]],
    )


@pytest.mark.parametrize("n", [4, 8, 16, 64])
def test_optimized_cost_is_6_n6(n, record_rows):
    prog = uniform_fig1(n)
    seq = optimize_statement(prog.statements[0])
    optimized = sequence_op_count(seq)
    assert optimized == 6 * n**6
    record_rows(
        f"operation-minimal cost, N={n}",
        ["N", "paper 6*N^6", "measured", "reduction"],
        [[n, 6 * n**6, optimized, f"{4 * n**10 / optimized:.0f}x"]],
    )


def test_bdca_order_found():
    prog = uniform_fig1(8)
    (coef, sums, refs), = flatten(prog.statements[0].expr)
    tree = optimize_term(refs, sums)

    def leaves_first_contract(node):
        if isinstance(node, Contract):
            l, r = node.left, node.right
            if isinstance(l, Leaf) and isinstance(r, Leaf):
                return {l.ref.tensor.name, r.ref.tensor.name}
            return leaves_first_contract(l) or leaves_first_contract(r)
        return None

    assert leaves_first_contract(tree) == {"B", "D"}


def test_benchmark_subset_dp(benchmark):
    prog = uniform_fig1(16)
    (coef, sums, refs), = flatten(prog.statements[0].expr)
    tree = benchmark(optimize_term, refs, sums)
    assert tree_cost(tree) == 6 * 16**6
