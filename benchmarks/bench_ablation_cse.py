"""Ablation: common-subexpression elimination across terms.

The Algebraic Transformations module "searches for all possible ways" of
applying algebraic laws; a key part of the win on multi-term
coupled-cluster expressions is sharing intermediates between terms.
This ablation measures the operation count and statement count of the
six-term A3A expression with CSE on vs off.
"""

import numpy as np
import pytest

from repro.chem.a3a_full import a3a_full_problem
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count
from repro.opmin.multi_term import optimize_program


@pytest.fixture(scope="module")
def problem():
    return a3a_full_problem(VA=3, VB=2, O=2, Ci=20)


def test_cse_reduces_ops_and_statements(problem, record_rows):
    with_cse = optimize_program(problem.program, cse=True)
    without = optimize_program(problem.program, cse=False)
    ops_with = sequence_op_count(with_cse)
    ops_without = sequence_op_count(without)
    assert ops_with < ops_without
    assert len(with_cse) < len(without)
    record_rows(
        "CSE ablation on six-term A3A (VA=3, VB=2, O=2, Ci=20)",
        ["variant", "statements", "operations"],
        [
            ["with CSE", len(with_cse), ops_with],
            ["without CSE", len(without), ops_without],
            ["saving", len(without) - len(with_cse),
             f"{(1 - ops_with / ops_without) * 100:.1f}%"],
        ],
    )


def test_both_variants_numerically_equal(problem):
    inputs = random_inputs(problem.program, seed=1)
    want = run_statements(
        problem.program.statements, inputs, functions=problem.functions
    )["E"]
    for cse in (True, False):
        seq = optimize_program(problem.program, cse=cse)
        got = run_statements(seq, inputs, functions=problem.functions)["E"]
        assert float(got) == pytest.approx(float(want), rel=1e-9)


def test_paper_scale_cse_never_hurts(record_rows):
    """At paper scale the optimal per-term trees happen to share only
    within terms (the symmetric-square factorization already dedups its
    two halves), so cross-term CSE is cost-neutral there -- and must
    never be worse."""
    big = a3a_full_problem(VA=3000, VB=2800, O=100, Ci=1000)
    with_cse = sequence_op_count(optimize_program(big.program, cse=True))
    without = sequence_op_count(optimize_program(big.program, cse=False))
    assert with_cse <= without
    record_rows(
        "CSE ablation at paper scale",
        ["variant", "operations"],
        [["with CSE", with_cse], ["without CSE", without]],
    )


def test_benchmark_optimize_with_cse(benchmark, problem):
    seq = benchmark(optimize_program, problem.program)
    assert seq
