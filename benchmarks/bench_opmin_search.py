"""E12 -- paper Section 2: the pruning search for operation minimization.

Reproduces: the problem generalizes matrix-chain multiplication (the
classic DP answers fall out as a special case); general pairings beat
the best chain order on the paper's example; and the pruning search is
"very efficient in practice" -- it explores a small fraction of the
exhaustive parenthesization space while returning the same optimum.
"""

import itertools

import pytest

from repro.chem.workloads import fig1_program, random_contraction_program
from repro.expr.canonical import flatten
from repro.expr.parser import parse_program
from repro.opmin.optree import tree_cost
from repro.opmin.search import exhaustive_best_tree, pruning_search
from repro.opmin.single_term import optimize_term


def term_of(prog):
    (coef, sums, refs), = flatten(prog.statements[0].expr)
    return refs, sums


def test_matrix_chain_special_case(record_rows):
    """Classic dims 10x100, 100x5, 5x50: optimal chain (AB)C."""
    prog = parse_program("""
    range P = 10; range Q = 100; range R = 5; range S = 50;
    index p : P; index q : Q; index r : R; index s : S;
    tensor A(p, q); tensor B(q, r); tensor C(r, s);
    M(p, s) = sum(q, r) A(p, q) * B(q, r) * C(r, s);
    """)
    refs, sums = term_of(prog)
    tree = optimize_term(refs, sums)
    assert tree_cost(tree) == 2 * 7500  # CLRS answer x2 (mult+add)
    record_rows(
        "matrix-chain special case (CLRS 15.2 dims)",
        ["order", "scalar mults", "our ops (2x)"],
        [["(AB)C", 7500, tree_cost(tree)]],
    )


def test_general_pairing_beats_best_chain(record_rows):
    """The paper's point: BDCA-style free pairing beats every
    left-to-right chain order of A*B*C*D."""
    prog = fig1_program(V=8, O=3)
    refs, sums = term_of(prog)
    best_general = tree_cost(optimize_term(refs, sums))

    # all chain orders: permutations of the 4 tensors, left-deep only
    def chain_cost(perm):
        from repro.opmin.cost import contraction_cost
        from repro.opmin.optree import Contract, Leaf

        remaining_sums = set(sums)
        node = Leaf(perm[0])
        others = list(perm[1:])
        total = 0
        for k, ref in enumerate(others):
            later_free = set()
            for r in others[k + 1:]:
                later_free |= r.free
            joint = node.free | ref.free
            summable = tuple(
                sorted(
                    i
                    for i in joint
                    if i in remaining_sums and i not in later_free
                )
            )
            total += contraction_cost(node.free, ref.free)
            node = Contract(node, Leaf(ref), summable)
            remaining_sums -= set(summable)
        return total

    best_chain = min(
        chain_cost(perm) for perm in itertools.permutations(refs)
    )
    assert best_general <= best_chain
    record_rows(
        "general pairing vs best chain (V=8, O=3)",
        ["strategy", "ops"],
        [["best left-deep chain", best_chain],
         ["general pairing (DP)", best_general]],
    )


@pytest.mark.parametrize("seed", range(8))
def test_pruning_matches_exhaustive(seed):
    prog = random_contraction_program(seed, n_tensors=4)
    refs, sums = term_of(prog)
    _, pruned = pruning_search(refs, sums, prune=True)
    _, full = pruning_search(refs, sums, prune=False)
    assert pruned.best_cost == full.best_cost


def test_pruning_efficiency(record_rows):
    rows = []
    total_pruned, total_full = 0, 0
    for seed in range(6):
        prog = random_contraction_program(seed, n_tensors=5)
        refs, sums = term_of(prog)
        _, pruned = pruning_search(refs, sums, prune=True)
        _, full = pruning_search(refs, sums, prune=False)
        assert pruned.best_cost == full.best_cost
        rows.append(
            [seed, full.explored, pruned.explored,
             f"{100 * pruned.explored / full.explored:.0f}%"]
        )
        total_pruned += pruned.explored
        total_full += full.explored
    record_rows(
        "pruning search efficiency (5-tensor random terms)",
        ["seed", "exhaustive states", "pruned states", "fraction"],
        rows,
    )
    assert total_pruned < total_full / 2


def test_benchmark_pruning_search(benchmark):
    prog = fig1_program(V=8, O=3)
    refs, sums = term_of(prog)
    tree, stats = benchmark(pruning_search, refs, sums)
    assert stats.best_cost == tree_cost(tree)


def test_benchmark_exhaustive_search(benchmark):
    prog = fig1_program(V=8, O=3)
    refs, sums = term_of(prog)
    tree, stats = benchmark(exhaustive_best_tree, refs, sums)
    assert stats.best_cost == tree_cost(tree)
