"""E16 -- multi-process SPMD runtime.

The process backend (:mod:`repro.runtime.process`) runs the generated
rank programs across worker OS processes.  This experiment records,
per grid and worker count, the wall time of both drivers and verifies
the backend's two contracts on every row: **bit-for-bit** agreement
with the in-process lock-step driver, and traffic counters equal to the
cost model's prediction.

On a multi-core machine the process backend's advantage grows with the
per-rank arithmetic (rank programs run concurrently instead of
time-sliced); on a single core it measures pure router overhead, so the
recorded ratio is informative, not asserted.
"""

import time

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import random_inputs
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.spmd import run_spmd
from repro.robustness.faults import FaultSchedule
from repro.runtime.process import SpmdProcessPool, run_spmd_process


@pytest.fixture(scope="module")
def problem():
    prog = parse_program("""
    range N = 24;
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), prog


def test_process_backend_grid_sweep(problem, record_rows):
    tree, prog = problem
    arrays = random_inputs(prog, seed=0)
    rows = []
    for dims, procs in [((2,), 2), ((4,), 4), ((2, 2), 4), ((2, 2), 2)]:
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid)
        t0 = time.perf_counter()
        local = run_spmd(plan, arrays)
        t1 = time.perf_counter()
        proc = run_spmd_process(plan, arrays, procs=procs)
        t2 = time.perf_counter()
        np.testing.assert_array_equal(local.result, proc.result)
        assert local.comm.total_traffic == proc.comm.total_traffic
        assert local.supersteps == proc.supersteps
        rows.append(
            [str(grid), procs, proc.comm.total_traffic, proc.supersteps,
             f"{(t1 - t0) * 1e3:.1f}", f"{(t2 - t1) * 1e3:.1f}",
             "bit-equal"]
        )
    record_rows(
        "process backend vs in-process driver (matmul 24^3)",
        ["grid", "workers", "traffic", "supersteps", "local ms",
         "process ms", "result"],
        rows,
    )


def test_pool_amortizes_startup(problem, record_rows):
    """Repeated statements on one pool vs a fresh pool per statement."""
    tree, prog = problem
    arrays = random_inputs(prog, seed=1)
    plan = optimize_distribution(tree, ProcessorGrid((2,)))
    repeats = 4

    t0 = time.perf_counter()
    for _ in range(repeats):
        run_spmd_process(plan, arrays)  # owns (and tears down) a pool
    cold = time.perf_counter() - t0

    with SpmdProcessPool(2) as pool:
        t0 = time.perf_counter()
        for _ in range(repeats):
            run_spmd_process(plan, arrays, pool=pool)
        warm = time.perf_counter() - t0

    record_rows(
        f"worker-pool reuse over {repeats} statements (grid 2)",
        ["strategy", "total ms", "ms/statement"],
        [
            ["pool per statement", f"{cold * 1e3:.1f}",
             f"{cold * 1e3 / repeats:.1f}"],
            ["shared pool", f"{warm * 1e3:.1f}",
             f"{warm * 1e3 / repeats:.1f}"],
        ],
    )
    # reuse must not be slower by more than protocol noise
    assert warm <= cold * 1.5


def test_fault_recovery_parity(problem, record_rows):
    """Injected drops and crashes recover identically on both drivers."""
    tree, prog = problem
    arrays = random_inputs(prog, seed=2)
    plan = optimize_distribution(tree, ProcessorGrid((2, 2)))
    rows = []
    for label, faults in [
        ("none", None),
        ("drop 2 msgs", FaultSchedule(drop_messages=(0, 1))),
        ("crash @1", FaultSchedule(crash_supersteps=(1,))),
        ("drop + crash", FaultSchedule(
            drop_messages=(0,), crash_supersteps=(2,)
        )),
    ]:
        local = run_spmd(plan, arrays, faults=faults)
        proc = run_spmd_process(plan, arrays, faults=faults)
        np.testing.assert_array_equal(local.result, proc.result)
        assert local.restarts == proc.restarts
        assert local.comm.dropped == proc.comm.dropped
        assert local.comm.total_traffic == proc.comm.total_traffic
        rows.append(
            [label, proc.restarts, proc.comm.dropped, proc.comm.retries,
             proc.comm.total_traffic, "bit-equal"]
        )
    record_rows(
        "fault recovery parity across drivers (matmul, grid 2x2)",
        ["faults", "restarts", "dropped", "retries", "traffic", "result"],
        rows,
    )
