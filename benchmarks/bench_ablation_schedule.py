"""Ablation: liveness-aware statement scheduling.

Statement order is free (any topological order computes the same
values) but decides how many temporaries are live at once.  This
ablation measures peak live memory of declaration order vs the
scheduler's order.
"""

import pytest

from repro.expr.parser import parse_program
from repro.opmin.schedule import peak_live_memory, schedule_statements


def interleavable_program(n_pairs: int, size: int):
    lines = [f"range B = {size};", "index p, q : B;"]
    stmts = []
    for k in range(n_pairs):
        lines.append(f"tensor A{k}(p, q);")
    for k in range(n_pairs):
        stmts.append(f"T{k}(p, q) = A{k}(p, q);")
    for k in range(n_pairs):
        stmts.append(f"R{k}() = sum(p, q) T{k}(p, q) * T{k}(p, q);")
    return parse_program("\n".join(lines + stmts))


def test_scheduling_ablation(record_rows):
    rows = []
    for n_pairs, size in [(2, 16), (3, 16), (4, 12)]:
        prog = interleavable_program(n_pairs, size)
        result = schedule_statements(prog.statements)
        assert result.peak_live < result.baseline_peak
        # optimal: one big temp at a time
        assert result.peak_live <= size * size + n_pairs
        rows.append(
            [f"{n_pairs} pairs of {size}x{size}",
             result.baseline_peak, result.peak_live,
             f"{result.improvement:.1f}x", "exact" if result.exact else "greedy"]
        )
    record_rows(
        "statement scheduling: peak live temporary memory",
        ["workload", "declaration order", "scheduled", "improvement", "mode"],
        rows,
    )


def test_greedy_matches_exact_on_overlap_pattern():
    """Where both run, greedy must match the exact optimum for the
    producer/consumer pair pattern."""
    prog = interleavable_program(4, 8)
    exact = schedule_statements(prog.statements, exact_limit=8)
    greedy = schedule_statements(prog.statements, exact_limit=0)
    assert exact.exact and not greedy.exact
    assert greedy.peak_live == exact.peak_live


def test_benchmark_scheduler(benchmark):
    prog = interleavable_program(4, 12)
    result = benchmark(schedule_statements, prog.statements)
    assert result.peak_live <= result.baseline_peak
