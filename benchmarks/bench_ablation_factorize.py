"""Ablation: reverse-distributivity factorization.

The paper's Algebraic Transformations module exploits distributivity in
both directions.  This ablation quantifies the factoring direction on
coupled-cluster-style patterns (terms sharing all but one factor).
"""

import numpy as np
import pytest

from repro.chem.workloads import ccsd_like_program
from repro.engine.executor import random_inputs, run_statements
from repro.opmin.cost import sequence_op_count
from repro.opmin.multi_term import optimize_program


def test_factorization_ablation(record_rows):
    rows = []
    for V, O in [(40, 10), (200, 30), (1000, 50)]:
        prog = ccsd_like_program(V=V, O=O)
        on = sequence_op_count(optimize_program(prog, factorize=True))
        off = sequence_op_count(optimize_program(prog, factorize=False))
        assert on < off
        rows.append(
            [f"V={V}, O={O}", off, on, f"{(1 - on / off) * 100:.1f}%"]
        )
    record_rows(
        "factorization ablation (CCSD-like residual: F*T + G*T + W*T2)",
        ["size", "ops (no factoring)", "ops (factored)", "saving"],
        rows,
    )


def test_factored_sequences_are_exact():
    prog = ccsd_like_program(V=6, O=3)
    arrays = random_inputs(prog, seed=0)
    want = run_statements(prog.statements, arrays)["R"]
    for flag in (True, False):
        seq = optimize_program(prog, factorize=flag)
        got = run_statements(seq, arrays)["R"]
        np.testing.assert_allclose(got, want, rtol=1e-9)


def test_benchmark_optimize_with_factorization(benchmark):
    prog = ccsd_like_program(V=20, O=6)
    seq = benchmark(optimize_program, prog)
    assert seq
