"""Stress workload: a CCSD-doubles-style residual through the whole
pipeline.

Five contributions to one residual (including a quadratic T2*V*T2 term)
force: multi-term operation minimization, a five-child combine node in
the fusion DP (exercising the sequential chain-state join), CSE, and
per-statement distribution planning.  The paper's target users write
exactly this kind of equation block.
"""

import numpy as np
import pytest

from repro import ProcessorGrid, SynthesisConfig, synthesize
from repro.chem.workloads import ccsd_doubles_program
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program
from repro.validate import verify_result


def test_operation_minimization(record_rows):
    rows = []
    for V, O in [(20, 6), (100, 20), (1000, 50)]:
        prog = ccsd_doubles_program(V=V, O=O)
        direct = statement_op_count(prog.statements[0])
        optimized = sequence_op_count(optimize_program(prog))
        assert optimized < direct
        rows.append([f"V={V}, O={O}", direct, optimized,
                     f"{direct / optimized:,.0f}x"])
    record_rows(
        "CCSD-doubles residual: direct vs optimized",
        ["size", "direct ops", "optimized ops", "reduction"],
        rows,
    )


def test_full_pipeline_verifies(record_rows):
    prog = ccsd_doubles_program(V=5, O=3)
    result = synthesize(prog, SynthesisConfig(optimize_cache=False))
    report = verify_result(result)
    assert report.ok, str(report)
    record_rows(
        "pipeline verification (V=5, O=3)",
        ["check", "value"],
        [["max |error|", f"{report.max_error:.2e}"],
         ["measured ops", report.counters.total_ops],
         ["formula statements", len(result.statements)]],
    )


def test_distribution_planning_on_grid():
    prog = ccsd_doubles_program(V=6, O=3)
    config = SynthesisConfig(
        grid=ProcessorGrid((2, 2)), optimize_cache=False
    )
    result = synthesize(prog, config)
    assert result.partition_plans  # per-statement plans exist
    report = verify_result(result)
    assert report.ok


def test_benchmark_pipeline(benchmark):
    prog = ccsd_doubles_program(V=6, O=3)
    result = benchmark(
        synthesize, prog, SynthesisConfig(optimize_cache=False)
    )
    assert result.statements


def test_benchmark_wide_combine_fusion(benchmark):
    """The five-child combine node must stay fast (the sequential
    chain-state DP; the naive cartesian join would take minutes)."""
    from repro.fusion.memopt import minimize_memory
    from repro.fusion.tree import build_forest

    prog = ccsd_doubles_program(V=8, O=4)
    seq = optimize_program(prog)
    forest = build_forest(seq)

    def run():
        return [minimize_memory(root) for root in forest]

    results = benchmark(run)
    assert sum(r.total_memory for r in results) >= 0
