"""Benchmark capture: machine-readable ``BENCH_<name>.json`` artifacts.

Every experiment module prints a human-readable reproduction table
through the ``record_rows`` fixture; this helper additionally persists
the same rows (plus any scalar metrics like wall times and speedups) as
JSON next to the benchmark sources, so experiment results survive the
terminal and CI can archive or diff them.

One JSON file per benchmark module, named ``BENCH_<module>.json`` with
the ``bench_`` prefix stripped (``bench_kernel_gemm.py`` ->
``BENCH_kernel_gemm.json``).  The file maps each test's node name to
its recorded payload::

    {
      "test_gemm_vs_einsum": {
        "title": "E18: ...",
        "headers": [...],
        "rows": [[...], ...],
        "metrics": {"speedup": 3.2, "gemm_s": 0.01, ...}
      },
      ...
    }

Re-running a module rewrites its entries in place (read-merge-write),
so partial runs (``-k`` selections) never destroy sibling results.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional, Sequence

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def bench_json_path(module_name: str) -> str:
    """``BENCH_<name>.json`` path for a benchmark module name."""
    name = module_name.rsplit(".", 1)[-1]
    if name.startswith("bench_"):
        name = name[len("bench_") :]
    return os.path.join(_BENCH_DIR, f"BENCH_{name}.json")


def _jsonable(value):
    """Best-effort conversion of row/metric values to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def write_bench(
    module_name: str,
    test_name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    metrics: Optional[Mapping[str, object]] = None,
) -> str:
    """Merge one test's recorded table/metrics into the module's JSON.

    Returns the path written.  Atomic (write-then-rename), so a crashed
    run never leaves a truncated artifact.
    """
    path = bench_json_path(module_name)
    data: Dict[str, dict] = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[test_name] = {
        "title": title,
        "headers": list(headers),
        "rows": [_jsonable(list(r)) for r in rows],
        "metrics": _jsonable(dict(metrics or {})),
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
