"""E15 -- search budgets with graceful degradation.

The paper's searches run "for a few days" at full scale; a compiler
needs an anytime mode.  This experiment measures what the degraded
(budget-exhausted) pipeline gives up relative to the full search on the
CCSD-doubles stress workload -- and what it keeps: correctness.  A
zero-node budget forces every stage onto its greedy fallback, a
generous node budget must change nothing, and intermediate budgets
interpolate (later stages degrade first because the tracker is shared).
"""

import time

import numpy as np
import pytest

from repro.chem.workloads import ccsd_doubles_program, fig1_program
from repro.engine.executor import random_inputs, run_statements
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.budget import Budget


def _op_count(result) -> int:
    for report in result.reports:
        if "optimized operation count" in report.details:
            return int(report.details["optimized operation count"])
    raise AssertionError("no op count in reports")


def _synthesize(prog, max_nodes=None):
    budget = Budget(max_nodes=max_nodes) if max_nodes is not None else None
    start = time.perf_counter()
    result = synthesize(prog, SynthesisConfig(budget=budget))
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_degradation_tradeoff(record_rows):
    """Full search vs degraded fallbacks: op count and synthesis time."""
    prog = ccsd_doubles_program(V=8, O=4)
    rows = []
    full_ops = None
    for label, max_nodes in (
        ("full search", None),
        ("generous budget (10^9 nodes)", 10**9),
        ("tight budget (2,000 nodes)", 2000),
        ("zero budget (all fallbacks)", 0),
    ):
        result, elapsed = _synthesize(prog, max_nodes)
        ops = _op_count(result)
        if full_ops is None:
            full_ops = ops
        rows.append([
            label,
            f"{ops:,}",
            f"{ops / full_ops:.2f}x",
            ",".join(result.degraded_stages) or "-",
            f"{elapsed * 1e3:.0f} ms",
        ])
        # degraded or not, the synthesized program must stay correct
        inputs = random_inputs(result.program, seed=0)
        env = result.execute(inputs)
        want = run_statements(result.program.statements, inputs)
        for stmt in result.program.statements:
            np.testing.assert_allclose(
                env[stmt.result.name], want[stmt.result.name], rtol=1e-8
            )
    record_rows(
        "budget degradation on CCSD doubles (V=8, O=4)",
        ["budget", "op count", "vs full", "degraded stages", "synthesis"],
        rows,
    )

    generous_ops = int(rows[1][1].replace(",", ""))
    zero_ops = int(rows[3][1].replace(",", ""))
    assert generous_ops == full_ops  # generous budget changes nothing
    assert zero_ops >= full_ops  # fallbacks never beat the search


def test_degradation_cost_on_fig1(record_rows):
    """What the left-to-right opmin fallback really costs: on the
    Fig. 1 four-tensor contraction the searched pairing exploits the
    small occupied range; the fallback cannot, and the gap widens with
    V/O asymmetry."""
    rows = []
    for V, O in ((8, 3), (16, 4), (20, 6)):
        prog = fig1_program(V=V, O=O)
        full, _ = _synthesize(prog)
        degraded, _ = _synthesize(prog, max_nodes=0)
        full_ops = _op_count(full)
        deg_ops = _op_count(degraded)
        assert deg_ops >= full_ops
        rows.append([
            f"V={V}, O={O}",
            f"{full_ops:,}",
            f"{deg_ops:,}",
            f"{deg_ops / full_ops:,.0f}x",
        ])
    record_rows(
        "opmin fallback cost on the Fig. 1 contraction",
        ["sizes", "full search ops", "degraded ops", "penalty"],
        rows,
    )


def test_deadline_budget_degrades_not_fails():
    """A 1 ms deadline cannot finish the search; the pipeline must
    still return an executable plan with degradations recorded."""
    prog = ccsd_doubles_program(V=8, O=4)
    result = synthesize(
        prog, SynthesisConfig(budget=Budget(deadline_ms=1.0))
    )
    assert result.degraded_stages
    inputs = random_inputs(result.program, seed=1)
    env = result.execute(inputs)
    want = run_statements(result.program.statements, inputs)
    for stmt in result.program.statements:
        np.testing.assert_allclose(
            env[stmt.result.name], want[stmt.result.name], rtol=1e-8
        )


def test_benchmark_full_search(benchmark):
    prog = ccsd_doubles_program(V=8, O=4)
    result = benchmark(lambda: synthesize(prog, SynthesisConfig()))
    assert result.degraded_stages == []


def test_benchmark_degraded_search(benchmark):
    prog = ccsd_doubles_program(V=8, O=4)
    result = benchmark(
        lambda: synthesize(
            prog, SynthesisConfig(budget=Budget(max_nodes=0))
        )
    )
    assert result.degraded_stages
