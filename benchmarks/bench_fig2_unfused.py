"""E3 -- paper Fig. 2: unfused operation-minimal A3A.

Reproduces the space/time table {X: (V^4, V^4 O^2), T1/T2: (V^3 O,
Ci V^3 O), Y: (V^4, V^5 O), E: (1, V^4)} analytically at paper scale and
by counted execution at small scale.
"""

import pytest

from repro.chem.a3a import a3a_problem, fig2_structure, fig2_table, table_totals
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count

SMALL = dict(V=4, O=2, Ci=50)


def test_fig2_table_small_scale(record_rows):
    problem = a3a_problem(**SMALL)
    block = fig2_structure(problem)
    sizes = array_sizes(block)
    table = fig2_table(**SMALL)
    rows = []
    for arr in ("X", "T1", "T2", "Y", "E"):
        assert sizes[arr] == table[arr]["space"]
        rows.append([arr, table[arr]["space"], sizes[arr], table[arr]["time"]])
    assert loop_op_count(block) == table_totals(table)["time"]
    record_rows(
        "Fig. 2 space/time (V=4, O=2, Ci=50)",
        ["array", "space (model)", "space (measured)", "time (model)"],
        rows,
    )


def test_fig2_table_paper_scale(record_rows):
    V, O, Ci = 3000, 100, 1000
    table = fig2_table(V, O, Ci)
    # headline claims from Section 3: T1/T2 are O(10^13-14) bytes,
    # X/Y are O(10^14-15) bytes at V=3000..5000
    assert table["T1"]["space"] * 8 > 1e13
    assert table["X"]["space"] * 8 > 1e14
    record_rows(
        "Fig. 2 at paper scale (V=3000, O=100)",
        ["array", "space (elements)", "bytes", "time (ops)"],
        [
            [a, table[a]["space"], table[a]["space"] * 8, table[a]["time"]]
            for a in ("X", "T1", "T2", "Y", "E")
        ],
    )


def test_measured_execution_counters():
    problem = a3a_problem(**SMALL)
    block = fig2_structure(problem)
    inputs = random_inputs(problem.program, seed=1)
    counters = Counters()
    execute(block, inputs, functions=problem.functions, counters=counters)
    assert counters.total_ops == table_totals(fig2_table(**SMALL))["time"]
    V, O = SMALL["V"], SMALL["O"]
    assert counters.func_evals == 2 * V**3 * O  # maximal integral reuse


def test_benchmark_unfused_execution(benchmark):
    problem = a3a_problem(**SMALL)
    block = fig2_structure(problem)
    inputs = random_inputs(problem.program, seed=1)
    env = benchmark(execute, block, inputs, None, problem.functions)
    assert "E" in env
