"""E22 -- availability and tail latency under process-level chaos.

The serving runtime's fault-tolerance claim (``docs/architecture.md``
section 13) is quantitative: with workers being killed out from under
it, the service must keep serving -- correct results, bounded tails,
structured degradation.  This experiment drives a mixed HTTP load
against a live :class:`~repro.server.app.ReproServer` while a
:class:`~repro.robustness.faults.ChaosSchedule` kills a worker every
~10th execution, and measures what a client actually sees.

Acceptance (the ISSUE 7 chaos criteria):

* **zero wrong results** -- every 200 carries the exact clean-run
  checksum (recovery is respawn + bit-identical statement retry,
  so a survivor's answer is never approximate);
* **availability >= 99%** over the mixed load (``E22_MIN_SUCCESS``
  overrides on noisy runners);
* every non-200 is a **structured** JSON error (an ``error`` field),
  never a raw traceback or a hung connection;
* a hung worker is bounded by the **recv watchdog**: hang-injected
  requests complete within watchdog x retries plus slack, not the
  300s a blocked ``recv`` would cost.

Environment knobs: ``E22_REQUESTS`` (default 200) scales the load for
smoke runs; ``E22_KILL_EVERY`` (default 10) sets the kill cadence.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

from repro.server.app import ReproServer, ServerConfig
from repro.server.client import arequest

MATMUL = """
range N = 16;
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""

#: a second program so the load is mixed, not one hot cache line
CHAIN = """
range N = 8;
index i, j, k, l : N;
tensor A(i, j);
tensor B(j, k);
tensor C(k, l);
D(i, l) = sum(j, k) A(i, j) * B(j, k) * C(k, l);
"""


def _serve(test, config=None):
    async def wrapper():
        app = ReproServer(config or ServerConfig(port=0))
        await app.start()
        try:
            return await test(app, app.host, app.port)
        finally:
            await app.stop()

    return asyncio.run(wrapper())


def _payload(program, seed, chaos=None):
    body = {
        "program": program,
        "options": {"grid": "2x2"},
        "backend": "process",
        "seed": seed,
        "result": "checksum",
    }
    if chaos:
        body["chaos"] = chaos
    return body


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    k = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[k]


def test_availability_under_worker_kills(record_rows):
    """200-request mixed load, kill_worker every ~10th execution: the
    availability floor, the zero-wrong-results bar, and the chaos tax
    on the tail."""
    n_requests = int(os.environ.get("E22_REQUESTS", "200"))
    kill_every = int(os.environ.get("E22_KILL_EVERY", "10"))
    programs = [(MATMUL, "C"), (CHAIN, "D")]

    async def run(app, host, port):
        # reference checksums from clean runs (the correctness oracle)
        reference = {}
        for program, out_name in programs:
            status, body = await arequest(
                host, port, "POST", "/v1/execute", _payload(program, 0)
            )
            assert status == 200
            reference[out_name] = body["outputs"][out_name]

        stats = {
            "ok": 0, "wrong": 0, "failed": 0, "unstructured": 0,
            "respawns": 0, "retried": 0,
        }
        lat_clean, lat_chaos = [], []
        for i in range(n_requests):
            program, out_name = programs[i % len(programs)]
            chaotic = i % kill_every == kill_every - 1
            chaos = "kill_worker@0" if chaotic else None
            t0 = time.perf_counter()
            try:
                status, body = await arequest(
                    host, port, "POST", "/v1/execute",
                    _payload(program, 0, chaos),
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                stats["failed"] += 1
                stats["unstructured"] += 1
                continue
            elapsed = (time.perf_counter() - t0) * 1000.0
            (lat_chaos if chaotic else lat_clean).append(elapsed)
            if status == 200:
                if body["outputs"][out_name] == reference[out_name]:
                    stats["ok"] += 1
                else:
                    stats["wrong"] += 1
                stats["respawns"] += body["pool"].get("respawns", 0)
                stats["retried"] += body["pool"].get("retries", 0)
            else:
                stats["failed"] += 1
                if "error" not in body:
                    stats["unstructured"] += 1
        _, hz = await arequest(host, port, "GET", "/healthz")
        return stats, lat_clean, lat_chaos, hz

    stats, lat_clean, lat_chaos, hz = _serve(run)
    availability = stats["ok"] / n_requests
    record_rows(
        f"E22: availability under kill_worker every {kill_every}th "
        f"execution ({n_requests} requests)",
        ["series", "n", "p50 ms", "p99 ms"],
        [
            [
                "clean", len(lat_clean),
                f"{_percentile(lat_clean, 0.50):.1f}",
                f"{_percentile(lat_clean, 0.99):.1f}",
            ],
            [
                "chaos (kill_worker)", len(lat_chaos),
                f"{_percentile(lat_chaos, 0.50):.1f}",
                f"{_percentile(lat_chaos, 0.99):.1f}",
            ],
        ],
        metrics={
            "requests": n_requests,
            "availability": round(availability, 4),
            "wrong_results": stats["wrong"],
            "unstructured_failures": stats["unstructured"],
            "pool_respawns": stats["respawns"],
            "statements_retried": stats["retried"],
            "registry_respawned": hz["pools"]["respawned"],
            "clean_p99_ms": round(_percentile(lat_clean, 0.99), 1),
            "chaos_p99_ms": round(_percentile(lat_chaos, 0.99), 1),
        },
    )
    floor = float(os.environ.get("E22_MIN_SUCCESS", "0.99"))
    assert stats["wrong"] == 0, (
        f"{stats['wrong']} recovered requests returned WRONG results"
    )
    assert stats["unstructured"] == 0, (
        f"{stats['unstructured']} failures were not structured JSON"
    )
    assert availability >= floor, (
        f"availability {availability:.1%} under chaos < floor {floor:.0%}"
    )
    assert stats["respawns"] >= n_requests // kill_every, (
        "chaos did not actually fire (no respawns recorded)"
    )


def test_hung_worker_latency_bounded_by_watchdog(record_rows):
    """hang_worker requests are bounded by watchdog x (retries + 1),
    not by an unbounded blocking recv."""
    watchdog_s = 1.0
    n = 5
    config = ServerConfig(port=0, watchdog_timeout_s=watchdog_s)

    async def run(app, host, port):
        latencies = []
        for _ in range(n):
            t0 = time.perf_counter()
            status, body = await arequest(
                host, port, "POST", "/v1/execute",
                _payload(MATMUL, 1, chaos="hang_worker@0"),
            )
            latencies.append(time.perf_counter() - t0)
            assert status == 200
            assert body["pool"]["respawns"] >= 1
            assert any("watchdog" in note for note in body["notes"])
        return latencies

    latencies = _serve(run, config)
    worst = max(latencies)
    # one watchdog expiry + respawned rerun + generous fork slack
    bound = watchdog_s * 3 + 5.0
    record_rows(
        f"E22: hang_worker recovery latency (watchdog {watchdog_s}s)",
        ["metric", "seconds"],
        [
            ["p50", f"{statistics.median(latencies):.2f}"],
            ["max", f"{worst:.2f}"],
            ["bound", f"{bound:.2f}"],
        ],
        metrics={
            "watchdog_s": watchdog_s,
            "max_recovery_s": round(worst, 2),
            "bound_s": bound,
        },
    )
    assert worst < bound, (
        f"hung-worker recovery took {worst:.1f}s, past the watchdog "
        f"bound {bound:.1f}s -- is the recv watchdog actually armed?"
    )
