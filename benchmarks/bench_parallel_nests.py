"""E24: thread-parallel native nests and cross-statement fusion.

PR 9's perf surface: compiled nests gain a thread dimension (OpenMP
``parallel for`` + ``simd`` pragmas when the probed compiler supports
``-fopenmp``, a portable chunked-outer-loop thread pool otherwise) and
consecutive statements sharing an output iteration space fuse into one
jointly-parallel kernel.  Three measurements:

* **Thread scaling** on a single compute-heavy fused nest (a
  three-operand doubles-shaped contraction) and on the largest nest of
  the CCSD doubles plan: wall time at 1/2/4/8 threads.  Every thread
  count is asserted bit-identical to the sequential nest -- the
  parallel emission never reassociates the per-element accumulation
  order, so ``np.array_equal`` holds, not just allclose.
* **Fusion** on the CCSD doubles sequence: the fused plan (one parallel
  region per group, intermediates consumed in-iteration) vs the
  unfused plan, same thread count.
* **Warm artifacts**: threaded and fused kernels are content-addressed
  like every other nest (thread count and fusion grouping are part of
  the key), so a warm store serves them with zero compiler forks.

Floor: ``E24_MIN_SPEEDUP`` (default 1.2) on the 2-thread speedup of the
CCSD nest -- only enforced when ``os.cpu_count() >= 2``; single-core
runners record the sweep but cannot scale and skip the assertion.
Timings are min-of-repeats.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import random_inputs, synthesize
from repro.chem.workloads import ccsd_doubles_program
from repro.expr.ast import Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor
from repro.kernels import (
    ArtifactStore,
    KernelRunner,
    NativeEngine,
    compile_kernel_plan,
    native_available,
)
from repro.pipeline import SynthesisConfig

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="no native backend (numba or a C compiler) on this machine",
)

#: extents large enough that one nest call is compute-bound (tens of
#: milliseconds), so thread scaling is measurable above jitter
SCALING_EXTENTS = {"a": 40, "b": 40, "i": 20, "j": 20, "k": 20}
CCSD_V, CCSD_O = 9, 5
THREAD_SWEEP = (1, 2, 4, 8)
MIN_SPEEDUP = float(os.environ.get("E24_MIN_SPEEDUP", "1.2"))

multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="thread-scaling floor needs at least 2 cores",
)


def _best(fn, repeats: int = 3, inner: int = 3) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        times.append((time.perf_counter() - t0) / inner)
    return min(times)


def _scaling_statement() -> Statement:
    """S(a,b,j) = sum(i,k) A(a,i) B(i,j,k) C(k,b): one three-operand
    nest whose outer output loop (extent a) feeds every sweep count."""
    idx = {
        name: Index(name, IndexRange("R" + name, extent))
        for name, extent in SCALING_EXTENTS.items()
    }
    a, b, i, j, k = (idx[n] for n in "abijk")
    A = Tensor("A", (a, i))
    B = Tensor("B", (i, j, k))
    C = Tensor("C", (k, b))
    S = Tensor("S", (a, b, j))
    return Statement(
        S,
        Sum(
            (i, k),
            Mul(
                (
                    TensorRef(A, (a, i)),
                    TensorRef(B, (i, j, k)),
                    TensorRef(C, (k, b)),
                )
            ),
        ),
    )


def _scaling_inputs(seed: int = 0):
    rng = np.random.default_rng(seed)
    e = SCALING_EXTENTS
    return {
        "A": rng.standard_normal((e["a"], e["i"])),
        "B": rng.standard_normal((e["i"], e["j"], e["k"])),
        "C": rng.standard_normal((e["k"], e["b"])),
    }


def _spec_of(plan):
    for sp in plan.statements:
        for term in sp.terms:
            if term.native is not None:
                return term.native
    raise AssertionError("plan lowered no native nests")


def _largest_spec(plan):
    """The most compute-heavy nest of a plan (loop-space volume)."""
    best, volume = None, -1
    for sp in plan.statements:
        for term in sp.terms:
            if term.native is None:
                continue
            v = 1
            for e in term.native.extents:
                v *= e
            if v > volume:
                best, volume = term.native, v
    assert best is not None
    return best


def _sweep(engine, spec, ops, out_shape, coef=1.0):
    """(times, outputs) per sweep thread count; outputs for identity."""
    times, outs = {}, {}
    for threads in THREAD_SWEEP:
        fn = engine.function(spec, np.float64, threads=threads)
        assert fn is not None, engine.failure(
            spec, np.float64, threads=threads
        )
        out = np.zeros(out_shape)

        def call(fn=fn, out=out):
            out[...] = 0.0
            fn(coef, ops, out)

        times[threads] = _best(call)
        call()
        outs[threads] = out
    return times, outs


class TestE24ParallelNests:
    def test_thread_scaling_synthetic_nest(self, record_rows):
        spec = _spec_of(
            compile_kernel_plan([_scaling_statement()], mode="native")
        )
        inputs = _scaling_inputs()
        ops = [
            np.ascontiguousarray(inputs[name]) for name in ("A", "B", "C")
        ]
        engine = NativeEngine()
        times, outs = _sweep(engine, spec, ops, spec.out_shape)
        for threads in THREAD_SWEEP[1:]:
            assert np.array_equal(outs[1], outs[threads]), (
                f"threads={threads} is not bit-identical to sequential"
            )
        shape = "x".join(str(SCALING_EXTENTS[n]) for n in "abijk")
        record_rows(
            f"E24: thread scaling, fused 3-operand nest ({shape})",
            ["threads", "ms/run", "speedup"],
            [
                [t, f"{times[t] * 1e3:.2f}", f"{times[1] / times[t]:.2f}x"]
                for t in THREAD_SWEEP
            ],
            metrics={
                "extents": dict(SCALING_EXTENTS),
                "strategy": engine.parallel_strategy(2),
                "times_s": {str(t): times[t] for t in THREAD_SWEEP},
                "speedup_2t": times[1] / times[2],
                "cpu_count": os.cpu_count(),
            },
        )

    @pytest.fixture(scope="class")
    def ccsd(self):
        prog = ccsd_doubles_program(V=CCSD_V, O=CCSD_O)
        unfused = synthesize(prog, SynthesisConfig(codegen="native"))
        fused = synthesize(
            prog,
            SynthesisConfig(codegen="native", fuse_statements=True),
        )
        inputs = random_inputs(prog, None, seed=0)
        return unfused, fused, inputs

    def test_thread_scaling_ccsd_nest(self, ccsd, record_rows):
        unfused, _, _ = ccsd
        spec = _largest_spec(unfused.kernel_plan)
        rng = np.random.default_rng(3)
        ops = [
            np.ascontiguousarray(
                rng.standard_normal(
                    tuple(spec.extents[p] for p in axes)
                )
            )
            for axes in spec.operands
        ]
        engine = NativeEngine()
        times, outs = _sweep(engine, spec, ops, spec.out_shape)
        for threads in THREAD_SWEEP[1:]:
            assert np.array_equal(outs[1], outs[threads])
        speedup_2t = times[1] / times[2]
        record_rows(
            f"E24: thread scaling, largest CCSD doubles nest "
            f"(V={CCSD_V}, O={CCSD_O})",
            ["threads", "ms/run", "speedup"],
            [
                [t, f"{times[t] * 1e3:.2f}", f"{times[1] / times[t]:.2f}x"]
                for t in THREAD_SWEEP
            ],
            metrics={
                "V": CCSD_V,
                "O": CCSD_O,
                "nest_ir": spec.ir(),
                "strategy": engine.parallel_strategy(2),
                "times_s": {str(t): times[t] for t in THREAD_SWEEP},
                "speedup_2t": speedup_2t,
                "min_speedup_floor": MIN_SPEEDUP,
                "cpu_count": os.cpu_count(),
            },
        )
        if (os.cpu_count() or 1) >= 2:
            assert speedup_2t >= MIN_SPEEDUP, (
                f"2 threads only {speedup_2t:.2f}x over sequential on "
                f"the CCSD nest (floor {MIN_SPEEDUP}x)"
            )

    def test_fused_vs_unfused_plan(self, ccsd, record_rows):
        unfused, fused, inputs = ccsd
        assert fused.kernel_plan.fused_groups, (
            "CCSD doubles no longer produces a fusable group; "
            "pick a workload that does"
        )
        runner_u = unfused.kernel_runner()
        runner_f = fused.kernel_runner()
        out_u = runner_u.run(inputs)["R"]
        out_f = runner_f.run(inputs)["R"]
        assert np.array_equal(out_u, out_f), (
            "fused plan is not bit-identical to the unfused plan"
        )
        assert not runner_f.notes, runner_f.notes

        base = _best(lambda: runner_u.run(inputs))
        fast = _best(lambda: runner_f.run(inputs))
        speedup = base / fast
        plan = fused.kernel_plan
        record_rows(
            f"E24: CCSD doubles (V={CCSD_V}, O={CCSD_O}) "
            "fused vs unfused statement groups",
            ["plan", "us/run", "speedup"],
            [
                ["unfused (one nest per statement)",
                 f"{base * 1e6:.1f}", "1.00x"],
                [
                    f"fused ({len(plan.fused_groups)} groups / "
                    f"{plan.fused_statements} statements)",
                    f"{fast * 1e6:.1f}",
                    f"{speedup:.2f}x",
                ],
            ],
            metrics={
                "V": CCSD_V,
                "O": CCSD_O,
                "unfused_s": base,
                "fused_s": fast,
                "speedup": speedup,
                "fused_groups": len(plan.fused_groups),
                "fused_statements": plan.fused_statements,
            },
        )

    def test_warm_store_serves_threaded_and_fused_kernels(
        self, ccsd, tmp_path, record_rows
    ):
        _, fused, inputs = ccsd
        plan = fused.kernel_plan
        cold_engine = NativeEngine(
            store=ArtifactStore(directory=str(tmp_path))
        )
        if cold_engine.backend != "cc":
            pytest.skip("warm .so loading is the cc backend's property")
        cold = KernelRunner(plan, engine=cold_engine, threads=2)
        cold_out = cold.run(inputs)["R"]
        assert cold_engine.stats()["compile_invocations"] >= 1

        warm_engine = NativeEngine(
            store=ArtifactStore(directory=str(tmp_path))
        )
        warm = KernelRunner(plan, engine=warm_engine, threads=2)
        warm_out = warm.run(inputs)["R"]
        stats = warm_engine.stats()

        np.testing.assert_array_equal(warm_out, cold_out)
        record_rows(
            "E24: warm artifact store, threaded + fused kernels",
            ["engine", "compile invocations", "store loads",
             "fused functions"],
            [
                ["cold", cold_engine.stats()["compile_invocations"],
                 cold_engine.stats()["store_loads"],
                 cold_engine.stats()["fused_functions"]],
                ["warm", stats["compile_invocations"],
                 stats["store_loads"], stats["fused_functions"]],
            ],
            metrics={
                "warm_compile_invocations": stats["compile_invocations"],
                "warm_store_loads": stats["store_loads"],
                "warm_fused_functions": stats["fused_functions"],
            },
        )
        assert stats["compile_invocations"] == 0
        assert stats["store_loads"] >= 1
