"""E10 extension -- generated parallel programs.

The synthesized SPMD rank programs (the paper-title deliverable) are
executed in lock step on the virtual grid: per-grid speedup of the
maximum per-rank work, traffic equal to the cost model's prediction, and
exact numerics.
"""

import numpy as np
import pytest

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator
from repro.parallel.spmd import generate_spmd_source, run_spmd


@pytest.fixture(scope="module")
def problem():
    prog = parse_program("""
    range N = 16;
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


def test_spmd_grid_sweep(problem, record_rows):
    tree, stmt, prog = problem
    arrays = random_inputs(prog, seed=0)
    want = evaluate_expression(stmt.expr, arrays)
    rows = []
    for dims in [(1,), (2,), (4,), (2, 2), (8,), (2, 4)]:
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid)
        run = run_spmd(plan, arrays)
        np.testing.assert_allclose(run.result, want, rtol=1e-10)
        rows.append(
            [str(grid), f"{plan.total_cost:,.0f}", run.comm.total_traffic,
             run.supersteps, len(run.source.splitlines())]
        )
    record_rows(
        "generated SPMD programs (matmul 16^3)",
        ["grid", "modeled cost", "elements moved", "supersteps",
         "program lines"],
        rows,
    )


def test_spmd_traffic_equals_simulator(problem):
    tree, stmt, prog = problem
    arrays = random_inputs(prog, seed=1)
    for dims in [(2,), (2, 2), (4,)]:
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid)
        run = run_spmd(plan, arrays)
        _, report = GridSimulator(grid).run(plan, arrays)
        assert run.comm.total_traffic == report.total_received


def test_benchmark_spmd_execution(benchmark, problem):
    tree, stmt, prog = problem
    grid = ProcessorGrid((2, 2))
    plan = optimize_distribution(tree, grid)
    arrays = random_inputs(prog, seed=2)
    run = benchmark(run_spmd, plan, arrays)
    assert run.result.shape == (16, 16)


def test_benchmark_spmd_codegen(benchmark, problem):
    tree, stmt, prog = problem
    grid = ProcessorGrid((2, 2))
    plan = optimize_distribution(tree, grid)
    src = benchmark(generate_spmd_source, plan)
    assert "yield" in src
