"""E23: compiled native fused tiled loop nests vs the numpy lowering.

The native codegen layer (:mod:`repro.kernels.native`) lowers each
kernel-plan step to a single fused tiled C loop nest, compiled once and
cached in a content-addressed artifact store.  At small-to-moderate
extents -- the regime of the paper's spatial-orbital examples -- every
numpy term pays fixed per-call overhead (permute + reshape + matmul
dispatch for the GEMM lowering, einsum dispatch for multi-operand
terms) that dwarfs the arithmetic; the fused nest replaces all of it
with one compiled call per term.  This experiment measures that win on
two workloads:

* a single fused three-operand contraction, which the GEMM lowering can
  only run as one ``np.einsum`` call while the native backend emits one
  fused nest with a tiled summation;
* a binary contraction whose operand layouts force the GEMM lowering
  through permute + reshape before the ``np.matmul`` call -- the
  "beats numpy GEMM" comparison -- while the fused nest reads both
  operands in place;
* small CCSD doubles end to end (recorded for context, no floor: its
  mix of term shapes makes the ratio machine-sensitive).

Floor: ``E23_MIN_SPEEDUP`` (default 1.1 -- deliberately conservative,
the point is overhead removal at small extents, not peak FLOPs; CI
relaxes to 1.05 to tolerate shared-runner noise).  At large extents
BLAS wins and the autotuner keeps the GEMM plan; that crossover is by
design and not asserted here.  Timings are min-of-repeats.

The warm-artifact test also pins the store contract: a fresh engine
pointed at a populated artifact directory serves every nest with zero
compiler invocations.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import random_inputs, synthesize
from repro.chem.workloads import ccsd_doubles_program
from repro.engine.executor import run_statements
from repro.expr.ast import Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor
from repro.kernels import (
    ArtifactStore,
    KernelRunner,
    NativeEngine,
    compile_kernel_plan,
    native_available,
)
from repro.pipeline import SynthesisConfig

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="no native backend (numba or a C compiler) on this machine",
)

# Workload extents: small enough that per-call numpy overhead is the
# dominant cost (the regime the native backend targets), large enough
# that timings stay out of jitter territory.
FUSED_EXTENTS = {"a": 8, "b": 8, "i": 6, "j": 6, "k": 6}
BINARY_EXTENTS = {"a": 6, "b": 6, "i": 6, "j": 6, "k": 8}
CCSD_V, CCSD_O = 6, 3
MIN_SPEEDUP = float(os.environ.get("E23_MIN_SPEEDUP", "1.1"))


def _best(fn, repeats: int = 5, inner: int = 10) -> float:
    """Min-of-repeats wall time per call."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        times.append((time.perf_counter() - t0) / inner)
    return min(times)


def _fused_statement() -> Statement:
    """S(a,b,j) = sum(i,k) A(a,i) B(i,j,k) C(k,b) -- one three-operand
    term that the GEMM lowering cannot split (it is handed the statement
    as-is) and therefore runs as a single einsum call."""
    idx = {
        name: Index(name, IndexRange("R" + name, extent))
        for name, extent in FUSED_EXTENTS.items()
    }
    a, b, i, j, k = (idx[n] for n in "abijk")
    A = Tensor("A", (a, i))
    B = Tensor("B", (i, j, k))
    C = Tensor("C", (k, b))
    S = Tensor("S", (a, b, j))
    return Statement(
        S,
        Sum(
            (i, k),
            Mul(
                (
                    TensorRef(A, (a, i)),
                    TensorRef(B, (i, j, k)),
                    TensorRef(C, (k, b)),
                )
            ),
        ),
    )


def _fused_inputs(seed: int = 0):
    rng = np.random.default_rng(seed)
    e = FUSED_EXTENTS
    return {
        "A": rng.standard_normal((e["a"], e["i"])),
        "B": rng.standard_normal((e["i"], e["j"], e["k"])),
        "C": rng.standard_normal((e["k"], e["b"])),
    }


def _binary_statement() -> Statement:
    """S(a,b,i,j) = sum(k) T(k,a,i) U(j,k,b) -- a single binary term
    the GEMM lowering runs as a genuine ``np.matmul``, but only after
    permuting and reshaping both operands (and the output) because the
    contracted axis sits first in one operand and in the middle of the
    other.  The fused nest indexes both layouts in place."""
    idx = {
        name: Index(name, IndexRange("R" + name, extent))
        for name, extent in BINARY_EXTENTS.items()
    }
    a, b, i, j, k = (idx[n] for n in "abijk")
    T = Tensor("T", (k, a, i))
    U = Tensor("U", (j, k, b))
    S = Tensor("S", (a, b, i, j))
    return Statement(
        S,
        Sum(
            (k,),
            Mul((TensorRef(T, (k, a, i)), TensorRef(U, (j, k, b)))),
        ),
    )


def _binary_inputs(seed: int = 0):
    rng = np.random.default_rng(seed)
    e = BINARY_EXTENTS
    return {
        "T": rng.standard_normal((e["k"], e["a"], e["i"])),
        "U": rng.standard_normal((e["j"], e["k"], e["b"])),
    }


@pytest.fixture(scope="module")
def ccsd():
    prog = ccsd_doubles_program(V=CCSD_V, O=CCSD_O)
    gemm = synthesize(prog, SynthesisConfig(codegen="gemm"))
    native = synthesize(prog, SynthesisConfig(codegen="native"))
    inputs = random_inputs(prog, None, seed=0)
    return gemm, native, inputs


class TestE23NativeCodegen:
    def test_native_matches_reference(self, ccsd):
        gemm, native, inputs = ccsd
        assert native.codegen_mode == "native"
        assert native.kernel_plan.native_terms > 0
        ref = run_statements(
            native.statements, inputs, None, None, path_cache=False
        )
        got = native.kernel_runner().run(inputs)
        np.testing.assert_allclose(got["R"], ref["R"], rtol=1e-10, atol=1e-10)

    def test_fused_nest_vs_einsum_term(self, record_rows):
        st = _fused_statement()
        inputs = _fused_inputs()
        gemm_runner = KernelRunner(compile_kernel_plan([st], mode="gemm"))
        native_runner = KernelRunner(compile_kernel_plan([st], mode="native"))
        base_out = gemm_runner.run(inputs)["S"]
        fast_out = native_runner.run(inputs)["S"]
        np.testing.assert_allclose(fast_out, base_out, rtol=1e-10, atol=1e-10)
        assert not native_runner.notes, native_runner.notes

        base = _best(lambda: gemm_runner.run(inputs))
        fast = _best(lambda: native_runner.run(inputs))
        speedup = base / fast

        shape = "x".join(str(FUSED_EXTENTS[n]) for n in "abijk")
        record_rows(
            f"E23: fused 3-operand contraction ({shape})",
            ["path", "us/run", "speedup"],
            [
                ["einsum term (gemm lowering)", f"{base * 1e6:.1f}", "1.00x"],
                ["compiled fused tiled nest", f"{fast * 1e6:.1f}",
                 f"{speedup:.2f}x"],
            ],
            metrics={
                "extents": dict(FUSED_EXTENTS),
                "einsum_term_s": base,
                "native_nest_s": fast,
                "speedup": speedup,
                "min_speedup_floor": MIN_SPEEDUP,
            },
        )
        assert speedup >= MIN_SPEEDUP, (
            f"fused nest only {speedup:.2f}x over the einsum term "
            f"(floor {MIN_SPEEDUP}x)"
        )

    def test_fused_nest_vs_numpy_gemm(self, record_rows):
        st = _binary_statement()
        inputs = _binary_inputs()
        gemm_plan = compile_kernel_plan([st], mode="gemm")
        assert gemm_plan.gemm_terms == 1  # the baseline really is matmul
        gemm_runner = KernelRunner(gemm_plan)
        native_runner = KernelRunner(compile_kernel_plan([st], mode="native"))
        base_out = gemm_runner.run(inputs)["S"]
        fast_out = native_runner.run(inputs)["S"]
        np.testing.assert_allclose(fast_out, base_out, rtol=1e-10, atol=1e-10)
        assert not native_runner.notes, native_runner.notes

        base = _best(lambda: gemm_runner.run(inputs))
        fast = _best(lambda: native_runner.run(inputs))
        speedup = base / fast

        shape = "x".join(str(BINARY_EXTENTS[n]) for n in "abijk")
        record_rows(
            f"E23: binary contraction with layout mismatch ({shape})",
            ["path", "us/run", "speedup"],
            [
                ["numpy GEMM (permute+reshape+matmul)",
                 f"{base * 1e6:.1f}", "1.00x"],
                ["compiled fused tiled nest", f"{fast * 1e6:.1f}",
                 f"{speedup:.2f}x"],
            ],
            metrics={
                "extents": dict(BINARY_EXTENTS),
                "gemm_term_s": base,
                "native_nest_s": fast,
                "speedup": speedup,
                "min_speedup_floor": MIN_SPEEDUP,
            },
        )
        assert speedup >= MIN_SPEEDUP, (
            f"fused nest only {speedup:.2f}x over the numpy GEMM term "
            f"(floor {MIN_SPEEDUP}x)"
        )

    def test_native_vs_gemm_on_ccsd(self, ccsd, record_rows):
        """End-to-end context row: whole CCSD doubles plan, native vs
        GEMM.  Recorded but not floored -- the mix of term shapes makes
        the end-to-end ratio machine-sensitive (parity is asserted)."""
        gemm, native, inputs = ccsd
        gemm_runner = gemm.kernel_runner()
        native_runner = native.kernel_runner()
        np.testing.assert_allclose(
            native_runner.run(inputs)["R"],
            gemm_runner.run(inputs)["R"],
            rtol=1e-10,
            atol=1e-10,
        )
        assert not native_runner.notes, native_runner.notes

        base = _best(lambda: gemm_runner.run(inputs))
        fast = _best(lambda: native_runner.run(inputs))
        speedup = base / fast

        plan = native.kernel_plan
        record_rows(
            f"E23: CCSD doubles (V={CCSD_V}, O={CCSD_O}) native vs GEMM plan",
            ["path", "us/run", "speedup"],
            [
                ["GEMM plan (permute+reshape+matmul)",
                 f"{base * 1e6:.1f}", "1.00x"],
                ["native fused nests", f"{fast * 1e6:.1f}",
                 f"{speedup:.2f}x"],
            ],
            metrics={
                "V": CCSD_V,
                "O": CCSD_O,
                "gemm_plan_s": base,
                "native_plan_s": fast,
                "speedup": speedup,
                "native_terms": plan.native_terms,
            },
        )

    def test_warm_artifacts_need_no_compiler(self, tmp_path, record_rows):
        st = _fused_statement()
        inputs = _fused_inputs(seed=1)
        plan = compile_kernel_plan([st], mode="native")

        cold_engine = NativeEngine(
            store=ArtifactStore(directory=str(tmp_path))
        )
        cold = KernelRunner(plan, engine=cold_engine)
        cold_out = cold.run(inputs)["S"]
        assert cold_engine.stats()["compile_invocations"] >= 1

        warm_engine = NativeEngine(
            store=ArtifactStore(directory=str(tmp_path))
        )
        warm = KernelRunner(plan, engine=warm_engine)
        warm_out = warm.run(inputs)["S"]
        stats = warm_engine.stats()

        np.testing.assert_array_equal(warm_out, cold_out)
        record_rows(
            "E23: warm artifact store",
            ["engine", "compile invocations", "store loads"],
            [
                ["cold", cold_engine.stats()["compile_invocations"],
                 cold_engine.stats()["store_loads"]],
                ["warm", stats["compile_invocations"],
                 stats["store_loads"]],
            ],
            metrics={
                "warm_compile_invocations": stats["compile_invocations"],
                "warm_store_loads": stats["store_loads"],
            },
        )
        assert stats["compile_invocations"] == 0
        assert stats["store_loads"] >= 1
