"""E11 -- paper Section 7 redistribution examples.

Reproduces the worked example: on a processor grid, moving
``T1[j,t]`` from ``<1,t,j>`` to ``<j,t,1>`` requires inter-processor
data movement, while moving ``T2[j,t]`` from ``<j,*,1>`` to ``<j,t,1>``
is free (each processor just gives up part of the t-dimension).  Both
facts are verified by the analytic cost AND by element-exact ownership
masks on the virtual grid.
"""

import numpy as np
import pytest

from repro.expr.indices import Index, IndexRange
from repro.parallel.commcost import move_cost_elements, received_elements
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid

N = IndexRange("N", 16)
J, T = Index("j", N), Index("t", N)
INDICES = (J, T)
GRID = ProcessorGrid((2, 2, 2))


def test_paper_example_t1_moves_t2_free(record_rows):
    t1_src = Distribution((SINGLE, T, J))
    t2_src = Distribution((J, REPLICATED, SINGLE))
    dst = Distribution((J, T, SINGLE))
    t1_cost = move_cost_elements(INDICES, t1_src, dst, GRID)
    t2_cost = move_cost_elements(INDICES, t2_src, dst, GRID)
    assert t1_cost > 0
    assert t2_cost == 0
    record_rows(
        "Section 7 redistribution example (T1 moves, T2 free)",
        ["array", "from", "to", "max elements received"],
        [
            ["T1[j,t]", "<1,t,j>", "<j,t,1>", t1_cost],
            ["T2[j,t]", "<j,*,1>", "<j,t,1>", t2_cost],
        ],
    )


def test_masks_confirm_free_move():
    """Element-exact check: under <j,*,1> every processor holding data
    under <j,t,1> already owns a superset of its target block."""
    src = Distribution((J, REPLICATED, SINGLE))
    dst = Distribution((J, T, SINGLE))
    for rank in GRID.ranks():
        src_mask = src.ownership_mask(INDICES, rank, GRID)
        dst_mask = dst.ownership_mask(INDICES, rank, GRID)
        assert not (dst_mask & ~src_mask).any()


def test_masks_confirm_t1_movement():
    src = Distribution((SINGLE, T, J))
    dst = Distribution((J, T, SINGLE))
    moved = 0
    for rank in GRID.ranks():
        src_mask = src.ownership_mask(INDICES, rank, GRID)
        dst_mask = dst.ownership_mask(INDICES, rank, GRID)
        missing = int((dst_mask & ~src_mask).sum())
        assert missing == received_elements(INDICES, src, dst, rank, GRID)
        moved += missing
    assert moved > 0


@pytest.mark.parametrize("seed", range(6))
def test_interval_model_matches_masks_randomized(seed):
    """The closed-form interval arithmetic equals the element-exact
    ownership-mask computation for random distribution pairs."""
    import random

    rng = random.Random(seed)
    alphabet = [J, T, REPLICATED, SINGLE]

    def random_dist():
        while True:
            entries = tuple(rng.choice(alphabet) for _ in range(GRID.ndims))
            idx = [e for e in entries if isinstance(e, Index)]
            if len(idx) == len(set(idx)):
                return Distribution(entries)

    src, dst = random_dist(), random_dist()
    for rank in GRID.ranks():
        src_mask = src.ownership_mask(INDICES, rank, GRID)
        dst_mask = dst.ownership_mask(INDICES, rank, GRID)
        exact = int((dst_mask & ~src_mask).sum())
        assert exact == received_elements(INDICES, src, dst, rank, GRID)


def test_benchmark_move_cost(benchmark):
    src = Distribution((SINGLE, T, J))
    dst = Distribution((J, T, SINGLE))
    cost = benchmark(move_cost_elements, INDICES, src, dst, GRID)
    assert cost > 0
