"""Scaling behaviour of the core search algorithms.

Empirical growth tables for the claims the paper makes about its
algorithms: the subset DP's O(3^n) in factors, the fusion DP's behaviour
in tree depth and in combine-node width (the sequential chain-state join
keeps width linear), and the distribution DP's O(q^2 |T|).
"""

import time

import pytest

from repro.expr.ast import Add, Mul, Statement, Sum, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Index, IndexRange
from repro.expr.parser import parse_program
from repro.expr.tensor import Tensor
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree
from repro.opmin.single_term import optimize_term


def ring_contraction(n_tensors: int, extent: int = 4):
    """T0(x0,x1) T1(x1,x2) ... ring over n tensors, all inner summed."""
    rng = IndexRange("N", extent)
    idx = [Index(f"x{k}", rng) for k in range(n_tensors)]
    refs = []
    for k in range(n_tensors):
        pair = (idx[k], idx[(k + 1) % n_tensors])
        refs.append(TensorRef(Tensor(f"T{k}", pair), pair))
    sums = frozenset(idx[1:])
    return refs, sums


def test_subset_dp_scaling(record_rows):
    rows = []
    prev = None
    for n in (4, 6, 8, 10, 12):
        refs, sums = ring_contraction(n)
        t0 = time.perf_counter()
        optimize_term(refs, sums)
        dt = time.perf_counter() - t0
        growth = f"{dt / prev:.1f}x" if prev else "-"
        rows.append([n, f"{dt * 1000:.2f}ms", growth])
        prev = dt
    record_rows(
        "subset DP over factor count (O(3^n) states)",
        ["tensors", "time", "growth"],
        rows,
    )
    # tractable well past typical term sizes
    assert prev < 30.0


def deep_chain(depth: int):
    src = ["range N = 4;", "index " + ", ".join(f"x{k}" for k in range(depth + 2)) + " : N;"]
    src.append("tensor A0(x0, x1);")
    src.append("tensor B0(x1, x2);")
    src.append("T0(x0, x2) = sum(x1) A0(x0, x1) * B0(x1, x2);")
    for k in range(1, depth):
        src.append(f"tensor B{k}(x{k + 1}, x{k + 2});")
        src.append(
            f"T{k}(x0, x{k + 2}) = sum(x{k + 1}) "
            f"T{k - 1}(x0, x{k + 1}) * B{k}(x{k + 1}, x{k + 2});"
        )
    return parse_program("\n".join(src))


def test_fusion_dp_depth_scaling(record_rows):
    rows = []
    for depth in (2, 4, 8, 12):
        prog = deep_chain(depth)
        root = build_tree(prog.statements)
        t0 = time.perf_counter()
        minimize_memory(root)
        dt = time.perf_counter() - t0
        rows.append([depth, f"{dt * 1000:.2f}ms"])
    record_rows(
        "fusion DP over chain depth (linear in nodes)",
        ["chain depth", "time"],
        rows,
    )


def wide_combine(width: int):
    rng = IndexRange("N", 4)
    a, b = Index("a", rng), Index("b", rng)
    refs = []
    statements = []
    for k in range(width):
        src = Tensor(f"IN{k}", (a, b))
        temp = Tensor(f"T{k}", (a,))
        statements.append(
            Statement(temp, Sum((b,), TensorRef(src, (a, b))))
        )
        refs.append((1.0, TensorRef(temp, (a,))))
    statements.append(Statement(Tensor("OUT", (a,)), Add(tuple(refs))))
    return statements


def test_fusion_dp_width_scaling(record_rows):
    """The five-child CCSD combine motivated the sequential join; this
    pushes width to 16 children (the cartesian join would be 5^16)."""
    rows = []
    for width in (2, 4, 8, 16):
        statements = wide_combine(width)
        root = build_tree(statements)
        t0 = time.perf_counter()
        result = minimize_memory(root)
        dt = time.perf_counter() - t0
        rows.append([width, f"{dt * 1000:.2f}ms", result.total_memory])
        assert result.total_memory == width  # every temp fuses to scalar
    record_rows(
        "fusion DP over combine width (sequential chain-state join)",
        ["children", "time", "min memory"],
        rows,
    )


def test_benchmark_subset_dp_12_tensors(benchmark):
    refs, sums = ring_contraction(12)
    tree = benchmark(optimize_term, refs, sums)
    assert tree is not None


def test_benchmark_fusion_wide_16(benchmark):
    statements = wide_combine(16)
    root = build_tree(statements)
    result = benchmark(minimize_memory, root)
    assert result.total_memory == 16
