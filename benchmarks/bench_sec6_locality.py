"""E9 -- paper Section 6: data-locality optimization.

Reproduces: the Cost/Accesses model applied bottom-up; the doubling
tile-size search finds blockings that cut modeled misses when the cache
cannot hold the working set; the same machinery serves the cache level
and the disk level (capacity swapped); and the doubling grid's optimum
is close to a finer exhaustive grid's.
"""

import itertools

import pytest

from repro.expr.parser import parse_program
from repro.codegen.builder import apply_tiling, build_unfused
from repro.codegen.loops import Alloc, loop_op_count, walk
from repro.locality.cost_model import access_cost
from repro.locality.tile_search import optimize_locality, tileable_indices


def matmul_block(n=32):
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    return build_unfused(prog.statements)


@pytest.mark.parametrize("capacity", [64, 256, 1024])
def test_blocking_reduces_misses(capacity, record_rows):
    block = matmul_block()
    result = optimize_locality(block, capacity)
    assert result.cost <= result.baseline_cost
    record_rows(
        f"matmul 32^3, cache={capacity}",
        ["capacity", "baseline misses", "blocked misses", "tiles"],
        [[
            capacity,
            result.baseline_cost,
            result.cost,
            str(result.tile_sizes and {i.name: b for i, b in result.tile_sizes.items()}),
        ]],
    )


def test_tight_cache_gets_large_improvement():
    block = matmul_block()
    result = optimize_locality(block, capacity=64)
    assert result.improvement >= 2.0


def test_doubling_close_to_fine_exhaustive():
    """The log-spaced search space is the paper's efficiency trick; its
    optimum must be within 2x of an exhaustive fine-grained search."""
    n = 16
    block = matmul_block(n)
    capacity = 64
    indices = tileable_indices(block)
    keep = [a.array for a in walk(block) if isinstance(a, Alloc)]

    fine_best = None
    for combo in itertools.product(range(1, n + 1), repeat=3):
        tiles = {
            idx: b for idx, b in zip(indices, combo) if b < n
        }
        if tiles:
            try:
                structure = apply_tiling(block, tiles, keep_global=keep)
            except ValueError:
                continue
            if loop_op_count(structure) != loop_op_count(block):
                continue
            cost = access_cost(structure, capacity)
        else:
            cost = access_cost(block, capacity)
        if fine_best is None or cost < fine_best:
            fine_best = cost

    doubling = optimize_locality(block, capacity)
    assert doubling.cost <= 2 * fine_best


def test_cache_and_disk_levels(record_rows):
    """Disk-access minimization reuses the algorithm with the physical
    memory capacity (paper: 'replacing the cache size by the physical
    memory size')."""
    block = matmul_block()
    cache = optimize_locality(block, capacity=128)
    disk = optimize_locality(block, capacity=2048)
    assert disk.cost <= cache.cost
    record_rows(
        "two-level application",
        ["level", "capacity", "modeled misses"],
        [["cache", 128, cache.cost], ["memory (disk opt)", 2048, disk.cost]],
    )


def test_model_decisions_validated_by_lru_measurement(record_rows):
    """The analytic model is only as good as its decisions: the blocking
    it picks must reduce *measured* LRU misses on the executed code."""
    from repro.engine.executor import random_inputs
    from repro.expr.parser import parse_program
    from repro.locality.cache_sim import simulate_cache

    n, capacity = 16, 64
    prog = parse_program(f"""
    range N = {n};
    index i, j, k : N;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    block = build_unfused(prog.statements)
    inputs = random_inputs(prog, seed=0)
    untiled = simulate_cache(block, inputs, capacity)
    result = optimize_locality(block, capacity)
    tiled = simulate_cache(result.structure, inputs, capacity)
    assert tiled.misses < untiled.misses
    record_rows(
        f"modeled decision vs measured LRU misses (matmul {n}^3, cache {capacity})",
        ["structure", "modeled misses", "measured LRU misses"],
        [
            ["untiled", result.baseline_cost, untiled.misses],
            ["model-chosen blocking", result.cost, tiled.misses],
        ],
    )


def test_benchmark_tile_search(benchmark):
    block = matmul_block(16)
    result = benchmark(optimize_locality, block, 64)
    assert result.cost <= result.baseline_cost
