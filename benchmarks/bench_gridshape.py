"""E10 extension -- logical grid-shape selection.

The paper assumes a logical multi-dimensional view of the processors;
this bench shows the synthesis system *choosing* that view: for a fixed
processor count, the Section-7 DP is run on every grid factorization and
the cheapest shape wins.  Tree vs linear reduction patterns are also
compared.
"""

import pytest

from repro.expr.parser import parse_program
from repro.parallel.commcost import CommModel
from repro.parallel.gridsearch import choose_grid, grid_shapes
from repro.parallel.ptree import expression_to_ptree


@pytest.fixture(scope="module")
def tree():
    prog = parse_program("""
    range M = 64; range N = 8; range K = 64;
    index i : M; index j : N; index k : K;
    tensor A(i, k); tensor B(k, j);
    C(i, j) = sum(k) A(i, k) * B(k, j);
    """)
    return expression_to_ptree(prog.statements[0].expr)


def test_shape_selection_table(tree, record_rows):
    """Asymmetric extents (M=K=64 >> N=8) make the shape choice
    non-trivial: shapes that put many processors on the long dimensions
    should win."""
    choice = choose_grid(tree, 16, max_dims=3)
    rows = [
        ["x".join(str(p) for p in shape), f"{cost:,.0f}",
         "<-- chosen" if tuple(choice.grid.dims) == shape else ""]
        for shape, cost in sorted(choice.table, key=lambda t: t[1])
    ]
    record_rows(
        "grid shapes for 16 processors (C[64,8] = A[64,64] B[64,8])",
        ["shape", "modeled cost", ""],
        rows,
    )
    best_cost = min(cost for _, cost in choice.table)
    assert choice.plan.total_cost == best_cost


def test_reduction_pattern_choice(tree, record_rows):
    rows = []
    for pattern in ("linear", "tree"):
        model = CommModel(reduction=pattern)
        choice = choose_grid(tree, 16, model)
        rows.append(
            ["x".join(str(p) for p in choice.grid.dims), pattern,
             f"{choice.plan.total_cost:,.0f}"]
        )
    record_rows(
        "reduction pattern effect on the chosen plan",
        ["chosen shape", "pattern", "modeled cost"],
        rows,
    )
    # tree reductions never cost more than linear at the optimum
    assert float(rows[1][2].replace(",", "")) <= float(
        rows[0][2].replace(",", "")
    )


def test_benchmark_grid_search(benchmark, tree):
    choice = benchmark(choose_grid, tree, 16)
    assert choice.plan.total_cost > 0
