"""E17 -- content-addressed plan cache.

Synthesis chains five search stages; a serving deployment compiles the
same specification repeatedly.  This experiment measures cold-vs-warm
``synthesize()`` time on representative workloads (including the CCSD
doubles stress program) across both cache tiers.

Acceptance: a warm in-memory hit on the CCSD-doubles spec is at least
10x faster than the cold synthesis that populated it.
"""

import time

import pytest

from repro.chem.workloads import (
    ccsd_doubles_program,
    fig1_program,
)
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig, synthesize
from repro.runtime.plan_cache import PlanCache


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_cold_vs_warm_synthesis(record_rows, tmp_path):
    workloads = [
        ("fig1", fig1_program(V=8, O=4), SynthesisConfig()),
        (
            "fig1 grid 2x2",
            fig1_program(V=8, O=4),
            SynthesisConfig(grid=ProcessorGrid((2, 2))),
        ),
        (
            "ccsd doubles",
            ccsd_doubles_program(V=6, O=3),
            SynthesisConfig(grid=ProcessorGrid((2,))),
        ),
    ]
    rows = []
    for label, prog, cfg in workloads:
        cache = PlanCache(directory=str(tmp_path / label.replace(" ", "_")))
        cold_result, cold = _timed(lambda: synthesize(prog, cfg, cache=cache))
        warm_result, warm = _timed(lambda: synthesize(prog, cfg, cache=cache))
        fresh = PlanCache(directory=cache.directory)  # new process: disk tier
        _, disk = _timed(lambda: synthesize(prog, cfg, cache=fresh))
        assert warm_result.source == cold_result.source
        assert warm_result.reports[-1].details["hit"] == "memory"
        speedup = cold / warm if warm else float("inf")
        rows.append(
            [label, f"{cold * 1e3:.1f}", f"{warm * 1e3:.2f}",
             f"{disk * 1e3:.2f}", f"{speedup:,.0f}x"]
        )
        if label == "ccsd doubles":
            # the acceptance bar: warm >= 10x faster than cold
            assert speedup >= 10, f"warm hit only {speedup:.1f}x faster"
    record_rows(
        "plan cache: cold synthesis vs warm hits",
        ["workload", "cold ms", "memory hit ms", "disk hit ms", "speedup"],
        rows,
    )


def test_invalidation_matrix(record_rows):
    """Exactly the right things miss: config changes and different
    programs; formatting-only source changes hit."""
    cache = PlanCache()
    base_cfg = SynthesisConfig(grid=ProcessorGrid((2,)))
    prog = fig1_program(V=6, O=3)
    synthesize(prog, base_cfg, cache=cache)
    probes = [
        ("same program + config", prog, base_cfg),
        ("reparsed program", fig1_program(V=6, O=3), base_cfg),
        ("different extents", fig1_program(V=8, O=3), base_cfg),
        ("different grid", prog, SynthesisConfig(grid=ProcessorGrid((4,)))),
        ("no locality search", prog,
         SynthesisConfig(grid=ProcessorGrid((2,)), optimize_cache=False)),
    ]
    rows = []
    for label, p, cfg in probes:
        result = synthesize(p, cfg, cache=cache)
        hit = result.reports[-1].details["hit"]
        rows.append([label, hit])
    record_rows(
        "plan-cache invalidation matrix", ["probe", "outcome"], rows
    )
    outcomes = dict(rows)
    assert outcomes["same program + config"] == "memory"
    assert outcomes["reparsed program"] == "memory"
    for label in ("different extents", "different grid", "no locality search"):
        assert "miss" in outcomes[label]
