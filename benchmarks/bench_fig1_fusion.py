"""E2 -- paper Fig. 1(c): fusion-based memory reduction.

Reproduces: loop fusion reduces T1 to a scalar and T2 to a 2-D (O x O)
array without changing the operation count; the fused code computes the
same values.
"""

import numpy as np
import pytest

from repro.chem.workloads import fig1_formula_sequence
from repro.engine.executor import random_inputs, run_statements
from repro.codegen.builder import build_fused, build_unfused
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_tree


@pytest.mark.parametrize("v,o", [(10, 4), (20, 6), (40, 10)])
def test_fusion_memory_reduction(v, o, record_rows):
    prog = fig1_formula_sequence(V=v, O=o)
    root = build_tree(prog.statements)
    result = minimize_memory(root)
    by_array = result.memory_by_array()
    assert by_array["T1"] == 1  # scalar, as in Fig. 1(c)
    assert by_array["T2"] == o * o  # 2-D
    unfused = v**4 + v * v * o * o
    record_rows(
        f"Fig. 1(c) memory, V={v} O={o}",
        ["array", "unfused", "fused", "paper"],
        [
            ["T1", v**4, by_array["T1"], "scalar"],
            ["T2", v * v * o * o, by_array["T2"], "2-dimensional"],
            ["total", unfused, result.total_memory, "-"],
        ],
    )


def test_fusion_preserves_op_count():
    prog = fig1_formula_sequence(V=10, O=4)
    root = build_tree(prog.statements)
    result = minimize_memory(root)
    assert loop_op_count(build_fused(result)) == loop_op_count(
        build_unfused(prog.statements)
    )


def test_fused_numerics():
    prog = fig1_formula_sequence(V=4, O=3)
    bindings = None
    arrays = random_inputs(prog, seed=17)
    want = run_statements(prog.statements, arrays)["S"]
    root = build_tree(prog.statements)
    block = build_fused(minimize_memory(root))
    env = execute(block, arrays)
    np.testing.assert_allclose(env["S"], want, rtol=1e-10)


def test_benchmark_fusion_dp(benchmark):
    prog = fig1_formula_sequence(V=10, O=4)
    root = build_tree(prog.statements)
    result = benchmark(minimize_memory, root)
    assert result.total_memory == 1 + 16
