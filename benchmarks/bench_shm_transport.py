"""E19: shared-memory vs pipe transport for SPMD ndarray payloads.

The process backend's wire (:mod:`repro.runtime.shm`) ships ndarray
payloads through ``multiprocessing.shared_memory`` segments instead of
pickling them into the worker pipes.  This experiment round-trips
array payloads of increasing size through a child echo process under
both transports and reports the crossover: descriptors cost a fixed
overhead (segment create/attach), so tiny payloads favour the pipe,
while from ~1 MiB up the avoided pickle bytes dominate and shared
memory must win (asserted at the largest size).
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.runtime.shm import (
    SHM_AVAILABLE,
    pack_message,
    unpack_message,
)

#: payload sizes in float64 elements (8 B each): 64 KiB .. 8 MiB
SIZES = [8_192, 131_072, 262_144, 1_048_576]
ROUND_TRIPS = 10


def _echo_main(conn, min_bytes):
    """Child: unpack each message and echo it back over the transport."""
    try:
        while True:
            msg = unpack_message(conn.recv())
            if isinstance(msg, str) and msg == "stop":
                break
            conn.send(pack_message(msg, min_bytes))
    finally:
        conn.close()


class _EchoWorker:
    """One child process echoing messages under a fixed transport."""

    def __init__(self, min_bytes):
        self.min_bytes = min_bytes
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_echo_main, args=(child, min_bytes), daemon=True
        )
        self.proc.start()
        child.close()

    def round_trip(self, payload):
        self.conn.send(pack_message(payload, self.min_bytes))
        return unpack_message(self.conn.recv())

    def close(self):
        try:
            self.conn.send(pack_message("stop", None))
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=5)
        self.conn.close()


def _time_round_trips(worker, payload) -> float:
    worker.round_trip(payload)  # warm
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(ROUND_TRIPS):
            worker.round_trip(payload)
        times.append((time.perf_counter() - t0) / ROUND_TRIPS)
    return min(times)


@pytest.mark.skipif(not SHM_AVAILABLE, reason="no POSIX shared memory")
class TestE19ShmTransport:
    def test_round_trip_integrity(self):
        shm = _EchoWorker(min_bytes=0)
        try:
            payload = {"blk": np.arange(1000.0), "meta": ("tag", 3)}
            back = shm.round_trip(payload)
            np.testing.assert_array_equal(back["blk"], payload["blk"])
            assert back["meta"] == ("tag", 3)
        finally:
            shm.close()

    def test_shm_vs_pipe(self, record_rows):
        pipe = _EchoWorker(min_bytes=None)
        shm = _EchoWorker(min_bytes=0)
        rows = []
        metrics = {}
        try:
            for n in SIZES:
                payload = {"blk": np.arange(float(n))}
                nbytes = n * 8
                t_pipe = _time_round_trips(pipe, payload)
                t_shm = _time_round_trips(shm, payload)
                rows.append(
                    [
                        f"{nbytes // 1024} KiB",
                        f"{t_pipe * 1e3:.3f}",
                        f"{t_shm * 1e3:.3f}",
                        f"{t_pipe / t_shm:.2f}x",
                    ]
                )
                metrics[f"{nbytes}B"] = {
                    "pipe_s": t_pipe,
                    "shm_s": t_shm,
                    "speedup": t_pipe / t_shm,
                }
        finally:
            pipe.close()
            shm.close()
        record_rows(
            "E19: payload round trip, pipe pickle vs shared memory",
            ["payload", "pipe ms", "shm ms", "shm speedup"],
            rows,
            metrics=metrics,
        )
        # past ~1 MiB the serialization savings must dominate the
        # fixed segment create/attach overhead; assert over the whole
        # large-payload band rather than one size -- single-size wall
        # times on a shared box swing enough to flip a point estimate
        big = [
            metrics[f"{n * 8}B"]["speedup"]
            for n in SIZES
            if n * 8 >= 1_048_576
        ]
        assert max(big) > 1.0, (
            f"shm never beat the pipe on any >=1 MiB payload: {big}"
        )
