"""Shared benchmark fixtures and reproduction-report helper.

Every experiment module regenerates one paper artifact (figure/table)
and records the reproduced rows through ``record_rows`` so that running
``pytest benchmarks/ --benchmark-only -s`` prints the same series the
paper reports.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.report import format_table


@pytest.fixture
def record_rows(request, capsys):
    """Print a labelled reproduction table (visible with -s / -rA)."""

    def _record(title: str, headers: Sequence[str], rows: Sequence[Sequence]):
        text = f"\n[{request.node.name}] {title}\n"
        text += format_table(headers, rows)
        print(text)

    return _record
