"""Shared benchmark fixtures and reproduction-report helper.

Every experiment module regenerates one paper artifact (figure/table)
and records the reproduced rows through ``record_rows`` so that running
``pytest benchmarks/ --benchmark-only -s`` prints the same series the
paper reports.  Each recorded table is also persisted as machine-
readable JSON (``BENCH_<module>.json``, see :mod:`_record`), so every
benchmark run leaves an artifact CI can archive and diff; pass extra
scalar results via ``metrics=`` to capture wall times and speedups
alongside the table.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import pytest

from repro.report import format_table

from _record import write_bench


@pytest.fixture
def record_rows(request, capsys):
    """Print a labelled reproduction table (visible with -s / -rA) and
    persist it (plus optional ``metrics``) to the module's BENCH JSON."""

    def _record(
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence],
        metrics: Optional[Mapping[str, object]] = None,
    ):
        text = f"\n[{request.node.name}] {title}\n"
        text += format_table(headers, rows)
        print(text)
        write_bench(
            request.node.module.__name__,
            request.node.name,
            title,
            headers,
            rows,
            metrics,
        )

    return _record
