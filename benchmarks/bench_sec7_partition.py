"""E10 -- paper Section 7: the distribution dynamic program.

Reproduces: (a) the DP's optimum equals exhaustive enumeration on small
trees; (b) runtime scales as O(q^2 |T|) (states evaluated grow with the
square of the distribution count and linearly in internal nodes);
(c) the model's plan ranking agrees with simulator-measured cost on a
virtual processor grid.
"""

import time

import numpy as np
import pytest
import scipy.stats

from repro.expr.parser import parse_program
from repro.engine.executor import evaluate_expression, random_inputs
from repro.parallel.commcost import CommModel
from repro.parallel.dist import enumerate_distributions
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.parallel.simulate import GridSimulator


def contraction_tree(n_extent=8, n_tensors=2):
    if n_tensors == 2:
        src = f"""
        range N = {n_extent};
        index i, j, k : N;
        tensor A(i, k); tensor B(k, j);
        C(i, j) = sum(k) A(i, k) * B(k, j);
        """
    else:
        src = f"""
        range N = {n_extent};
        index i, j, k, l : N;
        tensor A(i, k); tensor B(k, l); tensor C(l, j);
        D(i, j) = sum(k, l) A(i, k) * B(k, l) * C(l, j);
        """
    prog = parse_program(src)
    stmt = prog.statements[0]
    return expression_to_ptree(stmt.expr), stmt, prog


@pytest.mark.parametrize("dims", [(2,), (4,), (2, 2)])
def test_plan_beats_naive_single_processor_layout(dims, record_rows):
    tree, stmt, prog = contraction_tree()
    grid = ProcessorGrid(dims)
    model = CommModel()
    plan = optimize_distribution(tree, grid, model)
    serial = optimize_distribution(tree, ProcessorGrid((1,)), model)
    assert plan.total_cost <= serial.total_cost
    record_rows(
        f"matmul on grid {grid}",
        ["grid", "modeled cost", "serial cost", "speedup"],
        [[str(grid), plan.total_cost, serial.total_cost,
          f"{serial.total_cost / plan.total_cost:.2f}x"]],
    )


def test_dp_complexity_scaling(record_rows):
    """states_evaluated ~ O(q^2 |T|): growing the grid dimensionality
    (hence q) grows states quadratically-ish; growing the tree grows
    them linearly."""
    rows = []
    tree2, _, _ = contraction_tree(n_tensors=2)
    tree3, _, _ = contraction_tree(n_tensors=3)
    for tree, label in [(tree2, "AB"), (tree3, "ABC")]:
        for dims in [(2,), (2, 2)]:
            grid = ProcessorGrid(dims)
            t0 = time.perf_counter()
            plan = optimize_distribution(tree, grid)
            dt = time.perf_counter() - t0
            q = len(enumerate_distributions(tree.indices, grid))
            rows.append(
                [label, str(grid), tree.internal_count(), q,
                 plan.states_evaluated, f"{dt*1000:.1f}ms"]
            )
    record_rows(
        "O(q^2 |T|) scaling",
        ["tree", "grid", "|T|", "q(root)", "states", "time"],
        rows,
    )
    # states grow superlinearly with grid dimensionality (q^2 effect)
    ab_1d = rows[0][4]
    ab_2d = rows[1][4]
    assert ab_2d > 4 * ab_1d
    # and roughly linearly with tree size at fixed grid
    abc_1d = rows[2][4]
    assert abc_1d < 10 * ab_1d


def test_simulated_numerics_on_all_grids():
    tree, stmt, prog = contraction_tree()
    arrays = random_inputs(prog, seed=7)
    want = evaluate_expression(stmt.expr, arrays)
    for dims in [(1,), (2,), (2, 2), (4,)]:
        grid = ProcessorGrid(dims)
        plan = optimize_distribution(tree, grid)
        got, _ = GridSimulator(grid).run(plan, arrays)
        np.testing.assert_allclose(got, want, rtol=1e-10)


def test_model_ranks_like_simulator(record_rows):
    """Across pinned root distributions, the model's cost ordering
    correlates strongly with the simulator's measured time."""
    tree, stmt, prog = contraction_tree()
    grid = ProcessorGrid((2, 2))
    model = CommModel()
    arrays = random_inputs(prog, seed=11)
    sim = GridSimulator(grid)
    rows, modeled, measured = [], [], []
    for alpha in enumerate_distributions(tree.indices, grid)[:10]:
        plan = optimize_distribution(tree, grid, model, result_dist=alpha)
        _, report = sim.run(plan, arrays)
        m = (
            model.comm_cost * report.event_comm_time
            + model.flop_cost * report.max_local_ops
        )
        modeled.append(plan.total_cost)
        measured.append(m)
        rows.append([str(alpha), plan.total_cost, m])
    rho = scipy.stats.spearmanr(modeled, measured).statistic
    record_rows(
        f"model vs simulator (spearman rho = {rho:.2f})",
        ["root distribution", "modeled", "simulated"],
        rows,
    )
    assert rho > 0.5


def test_three_tensor_chain_parallelizes():
    """The DP is applied per statement of the operation-minimal formula
    sequence (as the paper's pipeline does), not to the unfactored
    product tree -- the sequence of two distributed contractions beats
    serial execution."""
    from repro.opmin.multi_term import optimize_statement

    tree, stmt, prog = contraction_tree(n_tensors=3)
    seq = optimize_statement(stmt)
    assert len(seq) == 2
    grid = ProcessorGrid((4,))
    model = CommModel(comm_cost=0.5)
    arrays = dict(random_inputs(prog, seed=3))
    sim = GridSimulator(grid)
    max_ops = 0
    for s in seq:
        ptree = expression_to_ptree(s.expr)
        plan = optimize_distribution(ptree, grid, model)
        got, report = sim.run(plan, arrays)
        # store with axes in the declared result order for reuse
        sorted_order = tuple(sorted(s.result.indices))
        perm = tuple(sorted_order.index(i) for i in s.result.indices)
        arrays[s.result.name] = np.transpose(got, perm) if perm else got
        max_ops += report.max_local_ops
    want = evaluate_expression(stmt.expr, dict(random_inputs(prog, seed=3)))
    got_sorted = np.transpose(
        arrays[seq[-1].result.name],
        tuple(
            seq[-1].result.indices.index(i)
            for i in sorted(seq[-1].result.indices)
        ),
    )
    np.testing.assert_allclose(got_sorted, want, rtol=1e-10)
    n = 8
    serial_ops = 2 * (2 * n**3)  # two contractions, mults+adds
    assert max_ops < serial_ops


def test_benchmark_partition_dp(benchmark):
    tree, _, _ = contraction_tree()
    grid = ProcessorGrid((2, 2))
    plan = benchmark(optimize_distribution, tree, grid)
    assert plan.total_cost > 0
