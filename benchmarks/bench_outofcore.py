"""E6/E9 extension -- measured out-of-core I/O.

The Section-3 block-size argument ("expensive paging in and out of disk
will be required for Y") is verified by *measurement*: the Fig.-4
structures are executed through a page-granular buffer pool at a fixed
memory budget, and the disk traffic is tallied per block size.
"""

import pytest

from repro.chem.a3a import a3a_problem, fig4_structure
from repro.engine.executor import random_inputs
from repro.engine.outofcore import simulate_out_of_core
from repro.codegen.loops import total_memory


SMALL = dict(V=4, O=2, Ci=10)
#: budget between the B=2 working set (~41 elements + inputs) and B=4
BUDGET = 160
PAGE = 4


@pytest.fixture(scope="module")
def sweep():
    problem = a3a_problem(**SMALL)
    inputs = random_inputs(problem.program, seed=0)
    out = {}
    for B in (1, 2, 4):
        block = fig4_structure(problem, B)
        stats = simulate_out_of_core(
            block, inputs, BUDGET, PAGE, functions=problem.functions
        )
        out[B] = (stats, total_memory(block))
    return out


def test_measured_paging_vs_block_size(sweep, record_rows):
    rows = [
        [B, mem, stats.disk_reads, stats.disk_writes, stats.evictions]
        for B, (stats, mem) in sorted(sweep.items())
    ]
    record_rows(
        f"A3A Fig. 4 paging at budget {BUDGET} elements (V=4, O=2)",
        ["B", "temp memory", "disk reads", "disk writes", "evictions"],
        rows,
    )
    # when the B=4 temporaries (2 x 256 + ...) exceed the budget, the
    # buffer pool thrashes: strictly more I/O than at B=2
    assert sweep[4][0].total_io > sweep[2][0].total_io


def test_within_budget_no_thrashing(sweep):
    stats, mem = sweep[1]
    # B=1 keeps temporaries tiny; reads are dominated by the input T and
    # evictions stay moderate
    assert mem < BUDGET


def test_benchmark_ooc_execution(benchmark):
    problem = a3a_problem(**SMALL)
    inputs = random_inputs(problem.program, seed=0)
    block = fig4_structure(problem, 2)
    stats = benchmark(
        simulate_out_of_core,
        block,
        inputs,
        BUDGET,
        PAGE,
        None,
        problem.functions,
    )
    assert stats.accesses > 0
