"""E21 -- the compilation service: warm serving path and coalescing.

A serving deployment amortizes the paper's expensive synthesis searches
across requests three ways: the content-addressed plan cache makes
repeat compilations ~free, request coalescing collapses concurrent
identical cold requests into one synthesis, and warm SPMD worker pools
take process startup off the execution path.  This experiment measures
both properties end to end -- real HTTP requests against a live
:class:`~repro.server.app.ReproServer`.

Acceptance:

* warm-path requests are **execution-dominated**: the synthesis share
  of the warm p50 total is < 20% (override: ``E21_MAX_SYNTH_SHARE``,
  relaxed on noisy CI runners);
* a burst of N identical cold requests performs **exactly one**
  synthesis (plan-cache miss counter == 1).
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

from repro.chem.workloads import ccsd_doubles_program
from repro.expr.printer import program_to_source
from repro.server.app import ReproServer, ServerConfig
from repro.server.client import arequest

#: execution-heavy enough that the warm path is dominated by running,
#: not by the memory-tier cache hit
MATMUL = """
range N = 64;
index i, j, k : N;
tensor A(i, k);
tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


def _serve(test, config=None):
    async def wrapper():
        app = ReproServer(config or ServerConfig(port=0))
        await app.start()
        try:
            return await test(app, app.host, app.port)
        finally:
            await app.stop()

    return asyncio.run(wrapper())


def test_warm_path_dominated_by_execution(record_rows):
    """Cold request pays synthesis once; warm requests pay (almost)
    only execution."""
    payload = {
        "program": MATMUL,
        "options": {"grid": "2x2"},
        "result": "checksum",
    }
    n_warm = 10

    async def run(app, host, port):
        responses = []
        for _ in range(n_warm + 2):
            status, body = await arequest(
                host, port, "POST", "/v1/execute", payload
            )
            assert status == 200
            responses.append(body)
        return responses

    responses = _serve(run)
    cold = responses[0]
    # responses[1] may still pay pool spin-up bookkeeping; measure the
    # steady state
    warm = responses[2:]
    assert cold["cached"] == "miss"
    for body in warm:
        assert body["cached"] == "memory"
        assert body["pool"]["warm"] is True
    synth_p50 = statistics.median(
        r["timings_ms"]["synthesis"] for r in warm
    )
    exec_p50 = statistics.median(
        r["timings_ms"]["execution"] for r in warm
    )
    total_p50 = statistics.median(r["timings_ms"]["total"] for r in warm)
    share = synth_p50 / total_p50 if total_p50 else 0.0
    speedup = (
        cold["timings_ms"]["synthesis"] / synth_p50
        if synth_p50
        else float("inf")
    )
    record_rows(
        "E21: warm serving path (execute, grid 2x2, N=64)",
        ["phase", "synthesis ms", "execution ms", "total ms"],
        [
            [
                "cold (miss)",
                f"{cold['timings_ms']['synthesis']:.1f}",
                f"{cold['timings_ms']['execution']:.1f}",
                f"{cold['timings_ms']['total']:.1f}",
            ],
            [
                f"warm p50 (n={len(warm)})",
                f"{synth_p50:.2f}",
                f"{exec_p50:.2f}",
                f"{total_p50:.2f}",
            ],
        ],
        metrics={
            "warm_synthesis_share": round(share, 4),
            "warm_synthesis_speedup": round(speedup, 1),
            "warm_p50_ms": total_p50,
        },
    )
    ceiling = float(os.environ.get("E21_MAX_SYNTH_SHARE", "0.20"))
    assert share < ceiling, (
        f"warm p50 is synthesis-bound: share {share:.1%} >= {ceiling:.0%}"
    )


def test_coalescing_reduces_synthesis_to_one(record_rows):
    """A burst of identical cold requests triggers exactly one
    synthesis; every response carries the identical plan."""
    heavy = program_to_source(ccsd_doubles_program(V=6, O=3))
    payload = {"program": heavy, "options": {"grid": 2}}
    burst = 8

    async def run(app, host, port):
        t0 = time.perf_counter()
        responses = await asyncio.gather(
            *(
                arequest(host, port, "POST", "/v1/synthesize", payload)
                for _ in range(burst)
            )
        )
        wall = time.perf_counter() - t0
        return responses, wall, app.plan_cache.misses, app.coalescer.stats()

    responses, wall, misses, coalescer = _serve(run)
    assert all(status == 200 for status, _ in responses)
    bodies = [body for _, body in responses]
    assert misses == 1, f"{misses} syntheses for {burst} identical requests"
    assert len({b["source_sha256"] for b in bodies}) == 1
    leader_ms = max(b["timings_ms"]["synthesis"] for b in bodies)
    record_rows(
        "E21: request coalescing (8 identical cold CCSD requests)",
        ["quantity", "value"],
        [
            ["burst size", burst],
            ["syntheses performed", misses],
            ["requests coalesced", coalescer["coalesced"]],
            ["leader synthesis ms", f"{leader_ms:.0f}"],
            ["burst wall-clock ms", f"{wall * 1e3:.0f}"],
        ],
        metrics={
            "burst": burst,
            "syntheses": misses,
            "coalesced": coalescer["coalesced"],
            "burst_wall_ms": round(wall * 1e3, 1),
        },
    )
    assert coalescer["coalesced"] == burst - 1
