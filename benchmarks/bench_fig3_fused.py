"""E4 -- paper Fig. 3: fully-fused A3A with redundant computation.

Reproduces: all temporaries reduce to scalars; integral evaluation cost
inflates from Ci V^3 O to Ci V^5 O (a factor V^2 -- "three orders of
magnitude" at paper scale); and the trade-off DP *discovers* this
configuration as its minimum-memory pareto point.
"""

import pytest

from repro.chem.a3a import (
    a3a_problem,
    fig2_table,
    fig3_structure,
    fig3_table,
    table_totals,
)
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.codegen.builder import build_fused
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count
from repro.spacetime.tradeoff import tradeoff_search

SMALL = dict(V=4, O=2, Ci=50)


def test_fig3_table(record_rows):
    problem = a3a_problem(**SMALL)
    block = fig3_structure(problem)
    sizes = array_sizes(block)
    table = fig3_table(**SMALL)
    rows = []
    for arr in ("X", "T1", "T2", "Y", "E"):
        assert sizes[arr] == 1
        rows.append([arr, 1, sizes[arr], table[arr]["time"]])
    assert loop_op_count(block) == table_totals(table)["time"]
    record_rows(
        "Fig. 3 space/time (V=4, O=2, Ci=50)",
        ["array", "space (model)", "space (measured)", "time (model)"],
        rows,
    )


def test_recompute_blowup_is_v_squared(record_rows):
    for V, O, Ci in [(4, 2, 50), (3000, 100, 1000)]:
        f2 = fig2_table(V, O, Ci)["T1"]["time"]
        f3 = fig3_table(V, O, Ci)["T1"]["time"]
        assert f3 == V**2 * f2
    record_rows(
        "integral-cost blowup (paper: 'three orders of magnitude')",
        ["V", "unfused T1 time", "fused T1 time", "factor"],
        [
            [3000, fig2_table(3000, 100, 1000)["T1"]["time"],
             fig3_table(3000, 100, 1000)["T1"]["time"], 3000**2],
        ],
    )


def test_tradeoff_dp_discovers_fig3():
    problem = a3a_problem(**SMALL)
    frontier = tradeoff_search(problem.tree())
    best = frontier[0]
    assert best.memory == 4  # X, T1, T2, Y all scalar
    assert best.ops == table_totals(fig3_table(**SMALL))["time"]


def test_measured_func_evals_lose_all_reuse():
    problem = a3a_problem(**SMALL)
    block = fig3_structure(problem)
    inputs = random_inputs(problem.program, seed=1)
    counters = Counters()
    execute(block, inputs, functions=problem.functions, counters=counters)
    V, O = SMALL["V"], SMALL["O"]
    assert counters.func_evals == 2 * V**5 * O


def test_benchmark_tradeoff_search(benchmark):
    problem = a3a_problem(**SMALL)
    tree = problem.tree()
    frontier = benchmark(tradeoff_search, tree)
    assert frontier[0].memory == 4
