"""E14 -- sparse execution of a Fig.-1-style contraction.

Sweeps fill in {1.0, 0.1, 0.01} over the BDCA formula sequence of the
paper's Section-2 example with A and D declared ``sparse(fill)``.  For
each fill we report

* the dense op-count model (``sequence_op_count``) and the sparse-aware
  model (fills folded into the DP cost),
* the *measured* multiply-adds the sparse executor performed
  (``Counters.flops``), and
* wall time for the dense einsum oracle vs the sparse executor.

The committed evidence for the acceptance criterion lives in
``EXPERIMENTS.md`` (E14): at fill 0.01 the sparse path performs orders
of magnitude fewer multiply-adds than the dense model, and the measured
count tracks the sparse-aware estimate.
"""

import time

import numpy as np
import pytest

from repro.engine.counters import Counters
from repro.engine.executor import run_statements as dense_run
from repro.expr.parser import parse_program
from repro.opmin.cost import sequence_op_count
from repro.sparse.executor import random_sparse_inputs
from repro.sparse.executor import run_statements as sparse_run

FILLS = (1.0, 0.1, 0.01)
N = 6  # uniform extent; joins are pure Python, keep the space modest


def sparse_fig1_sequence(fill: float):
    """BDCA formula sequence with every input declared at ``fill``."""
    ann = f" sparse({fill})" if fill < 1.0 else ""
    return parse_program(f"""
    range N = {N};
    index a, b, c, d, e, f, i, j, k, l : N;
    tensor A(a, c, i, k){ann}; tensor B(b, e, f, l){ann};
    tensor C(d, f, j, k){ann}; tensor D(c, d, e, l){ann};
    T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
    T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
    S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
    """)


def measure(fill: float, seed: int = 0):
    program = sparse_fig1_sequence(fill)
    dense_model = sequence_op_count(program.statements)
    sparse_model = sequence_op_count(program.statements, sparse_aware=True)
    inputs = random_sparse_inputs(program, seed=seed)
    dense_inputs = {k: v.to_dense() for k, v in inputs.items()}

    t0 = time.perf_counter()
    want = dense_run(program.statements, dense_inputs)
    dense_wall = time.perf_counter() - t0

    counters = Counters()
    t0 = time.perf_counter()
    got = sparse_run(program.statements, inputs, counters=counters)
    sparse_wall = time.perf_counter() - t0

    np.testing.assert_allclose(got["S"], want["S"], rtol=1e-9)
    return dense_model, sparse_model, counters.flops, dense_wall, sparse_wall


def test_fill_sweep(record_rows):
    rows = []
    measured = {}
    for fill in FILLS:
        dense_model, sparse_model, flops, dwall, swall = measure(fill)
        measured[fill] = flops
        rows.append([
            fill,
            f"{dense_model:,}",
            f"{sparse_model:,}",
            f"{flops:,}",
            f"{dwall * 1e3:.2f}",
            f"{swall * 1e3:.2f}",
        ])
    record_rows(
        f"BDCA sequence, N={N}, all inputs at fill",
        ["fill", "dense-model ops", "sparse-model ops",
         "measured mul-adds", "einsum ms", "sparse ms"],
        rows,
    )
    # sparser inputs must do measurably less arithmetic
    assert measured[0.1] < measured[1.0]
    assert measured[0.01] < measured[0.1]


@pytest.mark.parametrize("fill", [0.01])
def test_low_fill_beats_dense_model(fill, record_rows):
    """Acceptance: at fill <= 0.01 the sparse path performs far fewer
    multiply-adds than the dense op-count model for the same sequence."""
    dense_model, sparse_model, flops, _, _ = measure(fill)
    assert flops < dense_model / 10
    record_rows(
        f"fill={fill} acceptance",
        ["dense-model ops", "measured mul-adds", "reduction"],
        [[f"{dense_model:,}", f"{flops:,}", f"{dense_model / flops:.0f}x"]],
    )


@pytest.mark.parametrize("fill", [0.1, 0.01])
def test_measured_tracks_sparse_model(fill):
    """The sparse-aware planning estimate and the executor's measured
    work agree within an order of magnitude (both count matches)."""
    _, sparse_model, flops, _, _ = measure(fill)
    assert flops < sparse_model * 10
