"""E13 -- paper Fig. 5: the full synthesis pipeline.

Reproduces: high-level source goes in, a loop program and a parallel
plan come out, with per-stage reports; the synthesized code is
numerically identical to the reference evaluation; and each stage
improves its own metric.
"""

import numpy as np
import pytest

from repro import (
    CommModel,
    MachineModel,
    MemoryLevel,
    ProcessorGrid,
    SynthesisConfig,
    synthesize,
)
from repro.chem.a3a import a3a_problem
from repro.engine.executor import evaluate_expression, random_inputs, run_statements

FIG1_SRC = """
range V = 6;
range O = 3;
index a, b, c, d, e, f : V;
index i, j, k, l : O;
tensor A(a, c, i, k); tensor B(b, e, f, l);
tensor C(d, f, j, k); tensor D(c, d, e, l);
S(a, b, i, j) = sum(c, d, e, f, k, l)
    A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
"""


def test_end_to_end_fig1(record_rows):
    config = SynthesisConfig(grid=ProcessorGrid((2, 2)), comm=CommModel())
    result = synthesize(FIG1_SRC, config)
    algebra = result.reports[0]
    memory = result.reports[1]
    rows = [
        ["direct ops", algebra.details["direct operation count"]],
        ["optimized ops", algebra.details["optimized operation count"]],
        ["unfused temp memory", memory.details["unfused temporary memory"]],
        ["fused temp memory", memory.details["fused temporary memory"]],
        ["partition plans", len(result.partition_plans)],
        ["generated source lines", result.source.count("\n")],
    ]
    record_rows("Fig. 5 pipeline on the Section-2 example", ["metric", "value"], rows)
    assert (
        algebra.details["optimized operation count"]
        < algebra.details["direct operation count"]
    )
    assert (
        memory.details["fused temporary memory"]
        < memory.details["unfused temporary memory"]
    )
    arrays = random_inputs(result.program, seed=42)
    want = evaluate_expression(result.program.statements[0].expr, arrays)
    env = result.execute(arrays)
    np.testing.assert_allclose(env["S"], want, rtol=1e-9)


def test_end_to_end_a3a_with_spacetime(record_rows):
    problem = a3a_problem(V=4, O=2, Ci=50)
    machine = MachineModel(
        cache=MemoryLevel("cache", 16, 8.0),
        memory=MemoryLevel("memory", 64, 512.0),
    )
    config = SynthesisConfig(machine=machine, optimize_cache=False)
    result = synthesize(problem.program, config)
    st = next(r for r in result.reports if "Space-time" in r.name)
    assert st.details["invoked"] == "yes"
    inputs = random_inputs(problem.program, seed=6)
    want = run_statements(
        problem.statements, inputs, functions=problem.functions
    )["E"]
    env = result.execute(inputs, functions=problem.functions)
    assert float(env["E"]) == pytest.approx(float(want), rel=1e-9)
    record_rows(
        "A3A under a 64-element memory budget",
        ["metric", "value"],
        [[k, v] for k, v in st.details.items()],
    )


def test_benchmark_full_pipeline(benchmark):
    result = benchmark(synthesize, FIG1_SRC)
    assert result.source


def test_benchmark_pipeline_with_grid(benchmark):
    config = SynthesisConfig(
        grid=ProcessorGrid((2, 2)), optimize_cache=False
    )
    result = benchmark(synthesize, FIG1_SRC, config)
    assert result.partition_plans
