"""E5 -- paper Fig. 4: tiling and partial fusion of A3A.

Reproduces the Fig.-4 table for every block size B: spaces
{X: B^4, T1/T2: B^2, Y: B^4, E: 1}, integral time Ci (V/B)^2 V^3 O; and
the equivalence of the generated structure with the trade-off DP's
tiled realization.
"""

import pytest

from repro.chem.a3a import (
    a3a_problem,
    fig4_structure,
    fig4_table,
    table_totals,
)
from repro.engine.counters import Counters
from repro.engine.executor import random_inputs
from repro.codegen.interp import execute
from repro.codegen.loops import array_sizes, loop_op_count

SMALL = dict(V=8, O=2, Ci=50)


@pytest.mark.parametrize("B", [1, 2, 4, 8])
def test_fig4_table_all_block_sizes(B, record_rows):
    problem = a3a_problem(**SMALL)
    block = fig4_structure(problem, B)
    table = fig4_table(B=B, **SMALL)
    sizes = array_sizes(block)
    rows = []
    for arr in ("X", "T1", "T2", "Y", "E"):
        assert sizes[arr] == table[arr]["space"], arr
        rows.append([arr, table[arr]["space"], sizes[arr], table[arr]["time"]])
    assert loop_op_count(block) == table_totals(table)["time"]
    record_rows(
        f"Fig. 4 space/time at B={B} (V=8, O=2, Ci=50)",
        ["array", "space (model)", "space (measured)", "time (model)"],
        rows,
    )


def test_integral_cost_scales_inverse_b_squared(record_rows):
    V, O, Ci = SMALL["V"], SMALL["O"], SMALL["Ci"]
    rows = []
    prev = None
    for B in (1, 2, 4, 8):
        t = fig4_table(B=B, **SMALL)["T1"]["time"]
        assert t == Ci * (V // B) ** 2 * V**3 * O
        if prev is not None:
            assert prev == 4 * t  # doubling B quarters the integral work
        prev = t
        rows.append([B, t])
    record_rows(
        "integral time vs B: Ci (V/B)^2 V^3 O",
        ["B", "T1 time"],
        rows,
    )


def test_measured_counters_match_at_each_b():
    problem = a3a_problem(V=4, O=2, Ci=50)
    inputs = random_inputs(problem.program, seed=1)
    for B in (1, 2, 4):
        counters = Counters()
        execute(
            fig4_structure(problem, B),
            inputs,
            functions=problem.functions,
            counters=counters,
        )
        table = fig4_table(V=4, O=2, Ci=50, B=B)
        assert counters.total_ops == table_totals(table)["time"]


def test_benchmark_structure_generation(benchmark):
    problem = a3a_problem(**SMALL)
    block = benchmark(fig4_structure, problem, 4)
    assert array_sizes(block)["Y"] == 4**4
