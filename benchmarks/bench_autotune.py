"""E20: empirical autotuning vs the analytical model alone.

Two workloads, two claims:

* **tiled contraction under cache pressure** -- the Section-6 tile
  search prices memory traffic only; at interpreter-executed sizes the
  tiled loop nest also pays per-iteration loop overhead the miss model
  cannot see.  The autotuner times the search's own top candidates
  (plus the untiled baseline) and keeps the measured winner; on this
  machine that choice must execute at least ``E20_MIN_SPEEDUP`` faster
  than the model's.
* **CCSD doubles GEMM plan** -- the kernel dimension (compiled GEMM
  lowering vs the cached einsum path) is measured per machine instead
  of assumed; either answer is correct, and the tuned result must never
  be slower than the analytical one beyond noise.

Plus the persistence claim: a warm :class:`~repro.autotune.db.TuningDB`
hit re-applies the stored decisions with **zero** measurement runs.

Floor: ``E20_MIN_SPEEDUP`` (default 1.2; the CI perf smoke relaxes it
for shared-runner noise).  The floor applies to the best of the two
workloads -- on machines where model and measurement agree everywhere
there is nothing for tuning to win, but the cache-pressure workload is
constructed so they disagree.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import AutotuneOptions, SynthesisConfig, TuningDB, synthesize
from repro.chem.workloads import ccsd_doubles_program
from repro.codegen.pygen import compile_loops
from repro.engine.executor import random_inputs, run_statements
from repro.engine.machine import MachineModel, MemoryLevel
from repro.expr.printer import program_to_source

MIN_SPEEDUP = float(os.environ.get("E20_MIN_SPEEDUP", "1.2"))

# Sized so the tile search tiles every loop down to 2-element tiles
# (the cache holds almost nothing) while the per-candidate micro-runs
# stay in the tens of milliseconds.  The deep tile nest pays ~1.5x in
# interpreter loop overhead the miss model cannot see -- the structural
# model-vs-measurement gap this experiment quantifies.
N = 24
CACHE_ELEMENTS = 16

TILED_SRC = f"""
range N = {N};
index i, j, k : N;
tensor A(i, k); tensor B(k, j);
C(i, j) = sum(k) A(i, k) * B(k, j);
"""


def tiny_cache_config():
    machine = MachineModel(
        cache=MemoryLevel("cache", CACHE_ELEMENTS, 8.0),
        memory=MemoryLevel("memory", 1 << 24, 512.0),
        disk=MemoryLevel("disk", 1 << 31, 100_000.0),
    )
    return SynthesisConfig(machine=machine)


def _best(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _report(result):
    return next(r for r in result.reports if r.name == "Autotuning")


class TestE20Autotune:
    def test_measured_beats_analytical(self, record_rows):
        """The E20 headline: wall time of the analytical choice vs the
        measured choice, per workload."""
        rows = []
        metrics = {"min_speedup_floor": MIN_SPEEDUP}
        speedups = []

        # -- workload 1: tiled contraction under cache pressure --
        analytical = synthesize(TILED_SRC, tiny_cache_config())
        tuned = synthesize(
            TILED_SRC, tiny_cache_config(),
            autotune=AutotuneOptions(trials=3),
        )
        inputs = random_inputs(analytical.program, None, seed=0)
        kern_a = compile_loops(analytical.structure, None)
        kern_t = compile_loops(tuned.structure, None)
        kern_a(inputs), kern_t(inputs)  # warm
        t_a = _best(lambda: kern_a(inputs))
        t_t = _best(lambda: kern_t(inputs))
        speedup = t_a / t_t
        speedups.append(speedup)
        disagrees = tuned.locality_tiles != analytical.locality_tiles
        rows.append([
            f"tiled contraction (N={N}, cache={CACHE_ELEMENTS})",
            f"{t_a * 1e3:.3f}", f"{t_t * 1e3:.3f}", f"{speedup:.2f}x",
            "yes" if disagrees else "no",
        ])
        metrics["tiled_analytical_s"] = t_a
        metrics["tiled_measured_s"] = t_t
        metrics["tiled_speedup"] = speedup
        metrics["tiled_model_tiles"] = dict(analytical.locality_tiles)
        metrics["tiled_measured_tiles"] = dict(tuned.locality_tiles)

        # the tuned result must stay correct
        want = run_statements(analytical.program.statements, inputs, None)
        np.testing.assert_allclose(kern_t(inputs)["C"], want["C"])

        # -- workload 2: CCSD doubles GEMM plan --
        ccsd_src = program_to_source(ccsd_doubles_program(V=16, O=5))
        base = synthesize(ccsd_src)
        tuned_ccsd = synthesize(
            ccsd_src, autotune=AutotuneOptions(trials=3)
        )
        ccsd_inputs = random_inputs(base.program, None, seed=0)
        runner_a = base.kernel_runner()
        runner_t = tuned_ccsd.kernel_runner()
        runner_a.run(ccsd_inputs), runner_t.run(ccsd_inputs)
        t_a = _best(lambda: runner_a.run(ccsd_inputs))
        t_t = _best(lambda: runner_t.run(ccsd_inputs))
        speedup = t_a / t_t
        speedups.append(speedup)
        rows.append([
            "CCSD doubles (V=16, O=5) kernel plan",
            f"{t_a * 1e3:.3f}", f"{t_t * 1e3:.3f}", f"{speedup:.2f}x",
            "yes"
            if tuned_ccsd.kernel_plan.mode != base.kernel_plan.mode
            else "no",
        ])
        metrics["ccsd_analytical_s"] = t_a
        metrics["ccsd_measured_s"] = t_t
        metrics["ccsd_speedup"] = speedup
        metrics["ccsd_kernel_mode"] = tuned_ccsd.kernel_plan.mode

        record_rows(
            "E20: analytical vs measured (autotuned) execution",
            ["workload", "analytical ms", "measured ms", "speedup",
             "rank disagreement"],
            rows,
            metrics=metrics,
        )
        best = max(speedups)
        assert best >= MIN_SPEEDUP, (
            f"autotuning won only {best:.2f}x on its best workload "
            f"(floor {MIN_SPEEDUP}x)"
        )

    def test_warm_db_skips_all_measurement(self, tmp_path, record_rows):
        """Cold run measures and stores; warm run applies the stored
        decisions with zero measurement runs."""
        db = TuningDB(directory=str(tmp_path))

        t0 = time.perf_counter()
        cold = synthesize(
            TILED_SRC, tiny_cache_config(),
            autotune=AutotuneOptions(trials=3, db=db),
        )
        cold_s = time.perf_counter() - t0
        cold_runs = _report(cold).details["measurement runs"]

        t0 = time.perf_counter()
        warm = synthesize(
            TILED_SRC, tiny_cache_config(),
            autotune=AutotuneOptions(trials=3, db=db),
        )
        warm_s = time.perf_counter() - t0
        warm_runs = _report(warm).details["measurement runs"]

        record_rows(
            "E20: TuningDB cold vs warm synthesis",
            ["run", "synthesis s", "measurement runs", "decision source"],
            [
                ["cold", f"{cold_s:.3f}", cold_runs, cold.tuning.source],
                ["warm", f"{warm_s:.3f}", warm_runs, warm.tuning.source],
            ],
            metrics={
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cold_measurement_runs": cold_runs,
                "warm_measurement_runs": warm_runs,
                "warm_speedup": cold_s / warm_s if warm_s else float("inf"),
            },
        )
        assert cold_runs > 0
        assert warm_runs == 0
        assert warm.tuning.source.startswith("db:")
        assert warm.tuning.tiles == cold.tuning.tiles
        assert warm.tuning.kernel_mode == cold.tuning.kernel_mode
