"""E8 -- paper Section 5: memory-minimization DP claims.

Reproduces: (a) the bottom-up pareto DP returns the same minimum as
exhaustive enumeration of all feasible fusion configurations; (b) the
pruning keeps per-node solution-set sizes small ("there is indication
that the pruning is effective in keeping the size of the solution set
at each node small").
"""

import random

import pytest

from repro.chem.workloads import fig1_formula_sequence
from repro.expr.ast import Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor
from repro.fusion.brute import brute_force_min_memory
from repro.fusion.memopt import minimize_memory, ordered_subsets
from repro.fusion.tree import build_tree


def random_chain(seed, n_stmts=3, n_ranges=3):
    rng = random.Random(seed)
    extents = [rng.choice([2, 3, 5, 7]) for _ in range(n_ranges)]
    ranges = [IndexRange(f"R{k}", e) for k, e in enumerate(extents)]
    pool = [Index(n, ranges[k % n_ranges]) for k, n in enumerate("abcdefgh")]
    statements = []
    prev = None
    for s in range(n_stmts):
        if prev is None:
            in_idx = tuple(rng.sample(pool, rng.randint(2, 4)))
            body = TensorRef(Tensor(f"IN{s}", in_idx), in_idx)
            avail = set(in_idx)
        else:
            other_idx = tuple(rng.sample(pool, rng.randint(2, 4)))
            other = Tensor(f"IN{s}", other_idx)
            body = Mul(
                (TensorRef(prev, prev.indices), TensorRef(other, other_idx))
            )
            avail = set(prev.indices) | set(other_idx)
        keep = rng.randint(1, max(1, len(avail) - 1))
        out_idx = tuple(sorted(avail)[:keep])
        sums = tuple(sorted(avail - set(out_idx)))
        expr = Sum(sums, body) if sums else body
        result = Tensor(f"N{s}", out_idx)
        statements.append(Statement(result, expr))
        prev = result
    return statements


@pytest.mark.parametrize("seed", range(12))
def test_dp_matches_brute_force(seed):
    statements = random_chain(seed)
    root = build_tree(statements)
    dp = minimize_memory(root)
    brute, _ = brute_force_min_memory(root)
    assert dp.total_memory == brute


def test_fig1_dp_and_brute_agree(record_rows):
    prog = fig1_formula_sequence(V=10, O=4)
    root = build_tree(prog.statements)
    dp = minimize_memory(root)
    brute, assignment = brute_force_min_memory(root)
    assert dp.total_memory == brute == 17
    record_rows(
        "Section 5 DP vs exhaustive on Fig. 1",
        ["method", "min total temporary memory"],
        [["pareto DP", dp.total_memory], ["exhaustive", brute]],
    )


def test_solution_sets_stay_small(record_rows):
    """Per-node candidate table sizes for the A3A tree stay far below
    the worst-case exponential bound."""
    from repro.chem.a3a import a3a_problem
    from repro.spacetime.tradeoff import tradeoff_search

    problem = a3a_problem(V=4, O=2, Ci=50)
    frontier = tradeoff_search(problem.tree())
    # pareto frontier of the whole tree stays tiny (paper: pruning is
    # effective); the worst case would be exponential in indices
    assert len(frontier) <= 16
    record_rows(
        "pareto frontier size (A3A)",
        ["tree", "frontier points"],
        [["A3A (5 arrays, 7 indices)", len(frontier)]],
    )


def test_ordered_subsets_growth():
    """The per-edge candidate count for k common indices is
    sum_{r<=k} P(k, r) -- the DP's branching factor."""
    base = IndexRange("N", 4)
    for k, expect in [(1, 2), (2, 5), (3, 16), (4, 65)]:
        indices = frozenset(Index(f"x{i}", base) for i in range(k))
        assert len(ordered_subsets(indices)) == expect


def test_benchmark_memopt_on_fig1(benchmark):
    prog = fig1_formula_sequence(V=10, O=4)
    root = build_tree(prog.statements)
    result = benchmark(minimize_memory, root)
    assert result.total_memory == 17


def test_benchmark_brute_force_on_fig1(benchmark):
    prog = fig1_formula_sequence(V=10, O=4)
    root = build_tree(prog.statements)
    brute, _ = benchmark(brute_force_min_memory, root)
    assert brute == 17
