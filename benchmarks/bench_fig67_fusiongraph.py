"""E7 -- paper Figs. 6-7: fusion graphs for the A3A computation.

Reproduces the fusion-graph narrative of Section 5:

* the (a,e,c,f) edges around X and the (c,e,a,f) edges around Y can all
  become fusion edges (X and Y reduce to scalars);
* after fusing T1's producer into Y on (c,e), T2 cannot also be fused --
  any additional fusion edge creates partially-overlapping chains;
* adding redundant vertices (a,f) at T1 and (c,e) at T2 enables complete
  fusion -- and redundant vertices at only ONE of T1/T2 already suffice.
"""

import pytest

from repro.chem.a3a import a3a_problem
from repro.fusion.fusion_graph import FusionGraph

SMALL = dict(V=4, O=2, Ci=50)


@pytest.fixture(scope="module")
def setup():
    problem = a3a_problem(**SMALL)
    root = problem.tree()  # E
    graph = FusionGraph(root)
    nodes = {n.array.name: n for n in root.subtree() if not n.is_leaf}
    ids = {name: graph.node_id(node) for name, node in nodes.items()}
    ix = problem.index
    return problem, graph, ids, ix


def fuse(ix, *names):
    return frozenset(ix(n) for n in names)


def test_x_and_y_fully_fusible(setup, record_rows):
    problem, graph, ids, ix = setup
    fusion = {
        (ids["E"], ids["X"]): fuse(ix, "a", "e", "c", "f"),
        (ids["E"], ids["Y"]): fuse(ix, "a", "e", "c", "f"),
    }
    assert graph.feasible(fusion)
    record_rows(
        "Fig. 6: X and Y loops fully fusible with E",
        ["edge", "fused indices", "feasible"],
        [["E-X", "a,e,c,f", "yes"], ["E-Y", "a,e,c,f", "yes"]],
    )


def test_t1_fusible_then_t2_blocked(setup, record_rows):
    """Paper: 'by creating fusion edges for indices (c,e), the producer
    loop for T1 can be fully fused ... However, now the producer loop
    for T2 cannot be fused since the addition of any fusion edge (say
    for index a) will result in partially overlapping fusion chains'."""
    problem, graph, ids, ix = setup
    base = {
        (ids["E"], ids["X"]): fuse(ix, "a", "e", "c", "f"),
        (ids["E"], ids["Y"]): fuse(ix, "a", "e", "c", "f"),
        (ids["Y"], ids["T1"]): fuse(ix, "c", "e"),
    }
    assert graph.feasible(base)
    rows = [["T1 on (c,e)", "feasible"]]
    for idx_name in ("a", "f"):
        attempt = dict(base)
        attempt[(ids["Y"], ids["T2"])] = fuse(ix, idx_name)
        assert not graph.feasible(attempt)
        rows.append([f"+ T2 on ({idx_name})", "infeasible (partial overlap)"])
    record_rows("Fig. 6: T2 blocked after T1 fusion", ["fusion", "status"], rows)


def test_redundant_vertices_enable_full_fusion(setup, record_rows):
    """Fig. 7(a): with redundant (a,f) vertices at T1 and (c,e) at T2,
    complete fusion chains exist without partial overlap."""
    problem, graph, ids, ix = setup
    graph2 = FusionGraph(problem.tree())
    ids2 = {
        n.array.name: graph2.node_id(n)
        for n in graph2.root.subtree()
        if not n.is_leaf
    }
    graph2.add_redundant_indices(ids2["T1"], fuse(ix, "a", "f"))
    graph2.add_redundant_indices(ids2["T2"], fuse(ix, "c", "e"))
    fusion = {
        (ids2["E"], ids2["X"]): fuse(ix, "a", "e", "c", "f"),
        (ids2["E"], ids2["Y"]): fuse(ix, "a", "e", "c", "f"),
        (ids2["Y"], ids2["T1"]): fuse(ix, "a", "e", "c", "f", "b", "k"),
        (ids2["Y"], ids2["T2"]): fuse(ix, "a", "e", "c", "f", "b", "k"),
    }
    assert graph2.feasible(fusion)
    record_rows(
        "Fig. 7(a): redundant vertices enable full fusion",
        ["node", "redundant vertices", "fused"],
        [["T1", "a,f", "a,e,c,f,b,k"], ["T2", "c,e", "a,e,c,f,b,k"]],
    )


def test_redundancy_at_one_producer_suffices(setup):
    """Paper: 'the redundant computation need only be added to one of
    T1 or T2'.  With redundant (a,f) vertices at T1 only, T2 fuses on
    its natural (a,f,b,k) loops and Y keeps its (c,e) dimensions: the
    chains a/f span everything, the c/e chains split into the disjoint
    pieces {X,E} and {Y,T1}, and no partial overlap remains."""
    problem, graph, ids, ix = setup
    graph3 = FusionGraph(problem.tree())
    ids3 = {
        n.array.name: graph3.node_id(n)
        for n in graph3.root.subtree()
        if not n.is_leaf
    }
    graph3.add_redundant_indices(ids3["T1"], fuse(ix, "a", "f"))
    fusion = {
        (ids3["E"], ids3["X"]): fuse(ix, "a", "e", "c", "f"),
        (ids3["E"], ids3["Y"]): fuse(ix, "a", "f"),  # Y keeps (c,e)
        (ids3["Y"], ids3["T1"]): fuse(ix, "a", "e", "c", "f", "b", "k"),
        (ids3["Y"], ids3["T2"]): fuse(ix, "a", "f", "b", "k"),
    }
    assert graph3.feasible(fusion)


def test_one_sided_point_on_tradeoff_frontier(setup):
    """The one-sided-redundancy configuration (memory V^2 + 3: Y is a
    2-D (c,e) slab, X/T1/T2 scalars) appears on the trade-off pareto
    frontier, cheaper in ops than full fusion (only T1's integrals lose
    reuse, not T2's)."""
    from repro.spacetime.tradeoff import tradeoff_search

    problem, graph, ids, ix = setup
    V = SMALL["V"]
    frontier = tradeoff_search(problem.tree())
    full = next(s for s in frontier if s.memory == 4)
    # a small-memory point at most the one-sided configuration's size
    # (Y slab V^2 plus three scalars) beats full fusion in operations
    one_sided_like = [
        s for s in frontier if 4 < s.memory <= V * V + 3 and s.ops < full.ops
    ]
    assert one_sided_like


def test_potential_edges_match_common_loops(setup):
    problem, graph, ids, ix = setup
    pot = graph.potential_edges()
    assert pot[(ids["E"], ids["X"])] == fuse(ix, "a", "e", "c", "f")
    assert pot[(ids["Y"], ids["T1"])] == fuse(ix, "c", "e", "b", "k")


def test_benchmark_feasibility_check(benchmark, setup):
    problem, graph, ids, ix = setup
    fusion = {
        (ids["E"], ids["X"]): fuse(ix, "a", "e", "c", "f"),
        (ids["E"], ids["Y"]): fuse(ix, "a", "e", "c", "f"),
        (ids["Y"], ids["T1"]): fuse(ix, "c", "e"),
    }
    assert benchmark(graph.feasible, fusion)
