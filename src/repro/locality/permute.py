"""Loop-order selection for locality.

Blocking is one half of Section 6's "appropriate blocking of the loops";
the order of loops in each nest is the other: it decides which array
walks contiguously in the innermost scope and which working set each
loop level carries.  This module enumerates permutations of every
maximal *perfect* nest (a chain of single-statement loops) and picks the
order minimizing the Section-6 miss model.

Reordering a perfect contraction nest is always semantics-preserving
here: statements are pure multiply-accumulates into a target indexed by
a subset of the loops, and floating-point reassociation is accepted
throughout the repository (all validation uses relative tolerances).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.expr.indices import Bindings
from repro.codegen.loops import Assign, Block, Loop, LoopVar, Node
from repro.locality.cost_model import access_cost

#: Permutation cap per nest (loops beyond this keep their order).
_MAX_PERMUTED = 6


@dataclass
class PermuteResult:
    """Outcome of the loop-order search."""

    structure: Block
    cost: int
    baseline_cost: int
    orders: List[Tuple[str, ...]]  # chosen order per rewritten nest
    evaluated: int


def _perfect_chain(node: Loop) -> Tuple[List[LoopVar], Block]:
    """The maximal chain of singly-nested loops starting at ``node`` and
    the innermost body."""
    chain = [node.var]
    body: Block = node.body
    while len(body) == 1 and isinstance(body[0], Loop):
        chain.append(body[0].var)
        body = body[0].body
    return chain, body


def _is_reorderable(body: Block) -> bool:
    """Only pure-statement bodies are safely permutable (no allocs or
    nested imperfect structure whose placement depends on the order)."""
    return all(isinstance(n, Assign) for n in body)


def _rebuild(chain: Sequence[LoopVar], body: Block) -> Node:
    out: Block = body
    for var in reversed(chain):
        out = (Loop(var, out),)
    return out[0]


def optimize_loop_order(
    block: Block,
    capacity: int,
    bindings: Optional[Bindings] = None,
) -> PermuteResult:
    """Choose loop orders per perfect nest minimizing modeled misses.

    Nests are optimized independently (the model is additive over
    sibling nests); imperfect structures (fused bodies, allocations
    inside) are left untouched.
    """
    baseline = access_cost(block, capacity, bindings)
    evaluated = 0
    orders: List[Tuple[str, ...]] = []

    def best_for(node: Node) -> Node:
        nonlocal evaluated
        if not isinstance(node, Loop):
            return node
        chain, body = _perfect_chain(node)
        if not _is_reorderable(body) or len(chain) < 2:
            # recurse into imperfect structure
            return Loop(node.var, tuple(best_for(n) for n in node.body))
        head = chain[: _MAX_PERMUTED]
        tail = chain[_MAX_PERMUTED:]
        best_cost = None
        best_node = node
        best_order: Tuple[str, ...] = tuple(v.name for v in chain)
        for perm in itertools.permutations(head):
            candidate = _rebuild(list(perm) + tail, body)
            cost = access_cost((candidate,), capacity, bindings)
            evaluated += 1
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_node = candidate
                best_order = tuple(v.name for v in perm) + tuple(
                    v.name for v in tail
                )
        orders.append(best_order)
        return best_node

    structure = tuple(best_for(n) for n in block)
    cost = access_cost(structure, capacity, bindings)
    return PermuteResult(structure, cost, baseline, orders, evaluated)
