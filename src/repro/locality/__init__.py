"""Data-locality optimization (paper Section 6).

Given a memory-reduced (fused) loop structure, choose loop blockings
that maximize data reuse at a level of the memory hierarchy:

* :mod:`repro.locality.cost_model` -- the paper's memory-access cost
  model: a bottom-up traversal counting, for each loop, the number of
  distinct elements accessed in its scope (``Accesses``); if they fit in
  the cache the loop costs ``Accesses``, otherwise the loop range times
  the cost of its inner loops;
* :mod:`repro.locality.tile_search` -- the doubling tile-size search
  (:math:`T_i = 1, 2, 4, \\ldots, N_i`) minimizing the modeled cost;
  applied with the cache capacity for cache blocking or the physical
  memory capacity for disk-access minimization.
"""

from repro.locality.cost_model import access_cost, loop_accesses
from repro.locality.tile_search import LocalityResult, optimize_locality
from repro.locality.permute import PermuteResult, optimize_loop_order
from repro.locality.cache_sim import CacheStats, LRUCache, simulate_cache

__all__ = [
    "access_cost",
    "loop_accesses",
    "LocalityResult",
    "optimize_locality",
    "PermuteResult",
    "optimize_loop_order",
    "CacheStats",
    "LRUCache",
    "simulate_cache",
]
