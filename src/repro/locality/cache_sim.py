"""Element-granular LRU cache simulation.

The Section-6 cost model *estimates* misses; this module *measures*
them: the loop interpreter's access trace is fed through a
fully-associative LRU cache of the given capacity, producing exact
hit/miss counts per array.  Tests and benchmarks use it to check that
the analytic model ranks loop structures (tiled vs untiled, tile-size
candidates) in the same order as real reuse behaviour.

A fully-associative element-granular LRU is an idealization of a real
cache (no lines, no conflicts); it matches the paper's model, which also
counts distinct *elements*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.expr.indices import Bindings
from repro.codegen.interp import execute
from repro.codegen.loops import Block


@dataclass
class CacheStats:
    """Measured cache behaviour of one execution."""

    capacity: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    per_array_misses: Dict[str, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class LRUCache:
    """Fully-associative LRU over (array, coords) element keys."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: "OrderedDict[Tuple, None]" = OrderedDict()
        self.stats = CacheStats(capacity)

    def access(self, array: str, coords: Tuple[int, ...], is_write: bool) -> None:
        key = (array, coords)
        slots = self._slots
        if key in slots:
            slots.move_to_end(key)
            self.stats.hits += 1
            return
        self.stats.misses += 1
        self.stats.per_array_misses[array] = (
            self.stats.per_array_misses.get(array, 0) + 1
        )
        slots[key] = None
        if len(slots) > self.capacity:
            slots.popitem(last=False)
            self.stats.evictions += 1


def simulate_cache(
    block: Block,
    inputs: Mapping[str, np.ndarray],
    capacity: int,
    bindings: Optional[Bindings] = None,
    functions=None,
) -> CacheStats:
    """Execute ``block`` and measure LRU misses at ``capacity``."""
    cache = LRUCache(capacity)
    execute(block, inputs, bindings, functions, trace=cache.access)
    return cache.stats
