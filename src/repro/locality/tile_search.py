"""Tile-size search for data locality (paper Section 6).

    "We define our tile size search space in the following way: if N_i
    is a loop range, we use a tile size starting from T_i = 1 (no
    tiling), and successively increasing T_i by doubling it until it
    reaches N_i."

The search evaluates the Section-6 cost model on the *actual* tiled loop
structure for every candidate combination.  Blocking for locality must
not change the operation count -- candidates that would re-execute work
(structures where tiling wraps a statement in unrelated tile loops) are
rejected.

Applied with the cache capacity this is cache blocking; with the
physical-memory capacity it is disk-access minimization (the paper uses
the same algorithm for both).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.expr.indices import Bindings, Index
from repro.codegen.builder import apply_tiling
from repro.codegen.loops import Alloc, Block, Loop, loop_op_count, walk
from repro.locality.cost_model import access_cost
from repro.robustness.budget import as_tracker
from repro.robustness.errors import BudgetExceeded


@dataclass
class LocalityResult:
    """Outcome of the locality tile search."""

    tile_sizes: Dict[Index, int]
    cost: int
    baseline_cost: int
    structure: Block
    evaluated: int
    table: List[Dict[str, object]] = field(default_factory=list)
    #: True when the search stopped early on budget exhaustion; the
    #: result is the best candidate evaluated before the cutoff
    degraded: bool = False
    degradation_reason: str = ""

    @property
    def improvement(self) -> float:
        """Miss-count ratio baseline/optimized (>= 1)."""
        return self.baseline_cost / self.cost if self.cost else float("inf")


def top_candidates(
    table: Sequence[Dict[str, object]], k: int
) -> List[Dict[str, object]]:
    """The ``k`` lowest-modeled-cost rows of a search table, untiled
    baseline always included.

    The tile search's ``table`` rows are ``{"tiles": {name: size},
    "cost": int}``; this is the pareto head the empirical autotuner
    re-ranks by measurement (:mod:`repro.autotune`).  Ties break toward
    fewer tiled indices, matching the search's own preference.
    """
    ranked = sorted(
        table, key=lambda row: (row["cost"], len(row["tiles"]))
    )
    out = ranked[: max(1, k)]
    if not any(not row["tiles"] for row in out):
        untiled = next(
            (row for row in table if not row["tiles"]), None
        )
        if untiled is not None:
            out.append(untiled)
    return out


def candidate_sizes(extent: int) -> List[int]:
    """1, 2, 4, ..., extent (always including the full extent)."""
    sizes = []
    b = 1
    while b < extent:
        sizes.append(b)
        b *= 2
    sizes.append(extent)
    return sizes


def tileable_indices(block: Block) -> List[Index]:
    """Indices of full (untiled) loops appearing in the structure."""
    out = []
    seen = set()
    for node in walk(block):
        if isinstance(node, Loop) and node.var.role == "full":
            if node.var.index not in seen:
                seen.add(node.var.index)
                out.append(node.var.index)
    return out


def optimize_locality(
    block: Block,
    capacity: int,
    bindings: Optional[Bindings] = None,
    indices: Optional[Sequence[Index]] = None,
    max_combinations: int = 50_000,
    budget=None,
) -> LocalityResult:
    """Find tile sizes minimizing the modeled miss count.

    ``indices`` restricts the tiled loops (default: every full loop in
    the structure).  All arrays keep their global shapes -- this is pure
    iteration-space blocking, so the operation count is checked to be
    unchanged and candidates violating that are discarded.

    The search is *anytime*: when ``budget`` runs out it stops and
    returns the best candidate evaluated so far (the untiled baseline at
    worst), flagged ``degraded``.
    """
    tracker = as_tracker(budget)
    if indices is None:
        indices = tileable_indices(block)
    base_ops = loop_op_count(block, bindings)
    baseline = access_cost(block, capacity, bindings)
    keep_global = [n.array for n in walk(block) if isinstance(n, Alloc)]

    per_index: List[List[int]] = [
        candidate_sizes(i.extent(bindings)) for i in indices
    ]
    total = 1
    for sizes in per_index:
        total *= len(sizes)
    if total > max_combinations:
        raise ValueError(
            f"tile search space has {total} combinations; restrict "
            "`indices` or raise max_combinations"
        )

    best_cost = baseline
    best_tiles: Dict[Index, int] = {}
    best_structure = block
    evaluated = 0
    table: List[Dict[str, object]] = []
    degraded = False
    degradation_reason = ""
    for combo in itertools.product(*per_index):
        if tracker is not None:
            try:
                tracker.tick(1, stage="locality")
            except BudgetExceeded as exc:
                tracker.degrade(
                    "locality",
                    exc,
                    "best tiling found so far"
                    if best_tiles
                    else "untiled structure",
                )
                degraded = True
                degradation_reason = exc.message
                break
        tiles = {
            idx: size
            for idx, size in zip(indices, combo)
            if size < idx.extent(bindings)
        }
        if not tiles:
            structure = block
            cost = baseline
        else:
            try:
                structure = apply_tiling(block, tiles, keep_global=keep_global)
            except ValueError:
                continue  # tiling would double-count an accumulation
            if loop_op_count(structure, bindings) != base_ops:
                continue  # blocking must not change the work
            cost = access_cost(structure, capacity, bindings)
        evaluated += 1
        table.append(
            {
                "tiles": {i.name: b for i, b in tiles.items()},
                "cost": cost,
            }
        )
        if cost < best_cost or (
            cost == best_cost and len(tiles) < len(best_tiles)
        ):
            best_cost = cost
            best_tiles = tiles
            best_structure = structure
    return LocalityResult(
        best_tiles,
        best_cost,
        baseline,
        best_structure,
        evaluated,
        table,
        degraded,
        degradation_reason,
    )
