"""The Section-6 memory-access cost model.

    "We introduce a memory access cost model (Cost), an estimate on the
    number of cache misses, as a function of tile sizes and loop bounds.
    In a bottom-up traversal of the abstract syntax tree, we count for
    each loop the number (Accesses) of distinct array elements accessed
    in its scope.  If this number is smaller than the number of elements
    that fit into the cache, then Cost = Accesses.  Otherwise, it means
    that the elements in the cache are not reused from one loop
    iteration to the next, and the cost is obtained by multiplying the
    loop range by the cost of its inner loop(s)."

The model is applied to our loop IR.  For disk-access minimization the
same function is called with the physical-memory capacity instead of the
cache capacity.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.expr.indices import Bindings
from repro.codegen.loops import (
    Access,
    Assign,
    Block,
    FuncEval,
    Loop,
    LoopVar,
    Node,
    distinct_accesses,
)


def loop_accesses(
    node: Loop, bindings: Optional[Bindings] = None
) -> int:
    """``Accesses``: distinct elements touched in one full execution of
    the loop (outer-loop variables held fixed)."""
    return distinct_accesses(node, bindings)


def _stmt_accesses(stmt: Assign) -> int:
    """Distinct elements touched by a single statement execution."""
    return 1 + len(stmt.terms)


def access_cost(
    block: Block,
    capacity: int,
    bindings: Optional[Bindings] = None,
) -> int:
    """Total modeled misses of the structure for a given capacity.

    Implements the paper's recursion exactly: per loop, if the distinct
    elements accessed in its scope fit in ``capacity``, the loop costs
    that many misses (each element fetched once, then reused); otherwise
    the loop multiplies the cost of its body by its trip count.  A block
    of siblings costs the sum of its members; statements cost their
    per-execution distinct accesses.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")

    def block_cost(blk: Block) -> int:
        return sum(node_cost(n) for n in blk)

    def node_cost(node: Node) -> int:
        if isinstance(node, Loop):
            accesses = loop_accesses(node, bindings)
            if accesses <= capacity:
                return accesses
            return node.var.extent(bindings) * block_cost(node.body)
        if isinstance(node, Assign):
            return _stmt_accesses(node)
        return 0  # Alloc / ZeroArr do not touch elements in this model

    return block_cost(block)
