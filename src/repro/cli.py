"""Command-line interface: the synthesis system as a compiler.

Usage::

    python -m repro input.tce                      # report only
    python -m repro input.tce --grid 2x2           # plan for a grid
    python -m repro input.tce --show-structure     # print the loop nest
    python -m repro input.tce --show-code          # print generated Python
    python -m repro input.tce --emit out.py        # write the kernel
    python -m repro input.tce --cache 32768 --memory 16777216

The input file uses the high-level notation of
:mod:`repro.expr.parser` (see ``examples/quickstart.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine.machine import MachineModel, MemoryLevel
from repro.parallel.commcost import CommModel
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig, synthesize


def _parse_grid(text: str) -> ProcessorGrid:
    try:
        dims = tuple(int(p) for p in text.lower().split("x"))
        return ProcessorGrid(dims)
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad grid {text!r}: use forms like 4 or 2x2x2"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Synthesize optimized (parallel) loop programs from tensor "
            "contraction expressions (IPPS 2002 TCE framework)."
        ),
    )
    parser.add_argument("input", help="source file (or - for stdin)")
    parser.add_argument(
        "--grid",
        type=_parse_grid,
        default=None,
        help="processor grid, e.g. 4 or 2x2x2 (default: sequential)",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=None,
        help="processor count; the synthesis system picks the best "
        "logical grid shape (alternative to --grid)",
    )
    parser.add_argument(
        "--cache", type=int, default=32 * 1024,
        help="cache capacity in elements",
    )
    parser.add_argument(
        "--memory", type=int, default=16 * 1024 * 1024,
        help="physical memory capacity in elements",
    )
    parser.add_argument(
        "--disk", type=int, default=2 * 1024**3,
        help="disk capacity in elements",
    )
    parser.add_argument(
        "--capacity-level",
        choices=("memory", "disk"),
        default="memory",
        help="level the fused computation must fit into",
    )
    parser.add_argument(
        "--comm-cost", type=float, default=10.0,
        help="communication cost per element (in op units)",
    )
    parser.add_argument(
        "--no-cache-opt", action="store_true",
        help="skip the data-locality tile search",
    )
    parser.add_argument(
        "--sparse-aware", action="store_true",
        help="scale operation-minimization costs by declared "
        "sparse(fill) annotations",
    )
    parser.add_argument(
        "--no-sparse-exec", action="store_true",
        help="keep statements with sparse operands on the dense "
        "loop-IR path instead of the sparse executor",
    )
    parser.add_argument(
        "--show-structure", action="store_true",
        help="print the synthesized loop structure",
    )
    parser.add_argument(
        "--show-code", action="store_true",
        help="print the generated Python source",
    )
    parser.add_argument(
        "--show-plans", action="store_true",
        help="print the chosen data distributions",
    )
    parser.add_argument(
        "--emit", metavar="FILE", default=None,
        help="write the generated Python kernel to FILE",
    )
    parser.add_argument(
        "--emit-spmd", metavar="FILE", default=None,
        help="write the generated per-rank SPMD program(s) to FILE "
        "(requires --grid)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2

    machine = MachineModel(
        cache=MemoryLevel("cache", args.cache, 8.0),
        memory=MemoryLevel("memory", args.memory, 512.0),
        disk=MemoryLevel("disk", args.disk, 100_000.0),
    )
    config = SynthesisConfig(
        machine=machine,
        grid=args.grid,
        processors=args.processors,
        comm=CommModel(comm_cost=args.comm_cost),
        capacity_level=args.capacity_level,
        optimize_cache=not args.no_cache_opt,
        sparse_aware=args.sparse_aware,
        sparse_execution=not args.no_sparse_exec,
    )
    try:
        result = synthesize(source, config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(result.describe())
    if args.show_structure:
        print("\n# synthesized loop structure")
        print(result.render_structure())
    if args.show_plans and result.partition_plans:
        print("\n# distribution plans")
        for name, plan in result.partition_plans.items():
            print(f"-- {name} --")
            print(plan.describe())
    if args.show_code:
        print("\n# generated Python")
        print(result.source)
    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as handle:
            handle.write("import numpy as _np\n\n")
            handle.write(result.source)
        print(f"\nwrote kernel to {args.emit}")
    if args.emit_spmd:
        if not result.partition_plans:
            print(
                "error: --emit-spmd requires --grid and plannable "
                "statements",
                file=sys.stderr,
            )
            return 1
        from repro.parallel.spmd import generate_spmd_source

        with open(args.emit_spmd, "w", encoding="utf-8") as handle:
            for name, plan in result.partition_plans.items():
                handle.write(f"# ==== statement producing {name} ====\n")
                handle.write(
                    generate_spmd_source(plan, name=f"rank_program_{name}")
                )
                handle.write("\n")
        print(f"wrote SPMD program(s) to {args.emit_spmd}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
