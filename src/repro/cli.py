"""Command-line interface: the synthesis system as a compiler.

Usage::

    python -m repro input.tce                      # report only
    python -m repro input.tce --grid 2x2           # plan for a grid
    python -m repro input.tce --show-structure     # print the loop nest
    python -m repro input.tce --show-code          # print generated Python
    python -m repro input.tce --emit out.py        # write the kernel
    python -m repro input.tce --cache 32768 --memory 16777216
    python -m repro input.tce --budget-ms 50       # bounded search
    python -m repro input.tce --run --grid 2 --inject-fault drop:0
    python -m repro input.tce --semiring min_plus  # shortest-path algebra
    python -m repro run --semiring min_plus --codegen native   # APSP demo
    python -m repro serve --port 8075              # HTTP/JSON service

``repro serve`` starts the multi-tenant compilation service
(:mod:`repro.server`); ``repro run`` is the semiring graph-analytics
demonstration (all-pairs shortest paths executed on three independent
substrates and checked bit-identical); every other invocation is the
one-shot compiler below.

The input file uses the high-level notation of
:mod:`repro.expr.parser` (see ``examples/quickstart.py``).

Exit codes (see :mod:`repro.robustness.errors`):

====  =====================================================
code  meaning
====  =====================================================
0     success
1     other error
2     specification/parse error (bad input, bad fault spec)
3     budget exhausted without a fallback (strict budgets)
4     execution or validation failure
====  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine.machine import MachineModel, MemoryLevel
from repro.expr.parser import ParseError
from repro.parallel.commcost import CommModel
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig, synthesize
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded, ReproError, SpecError
from repro.robustness.faults import parse_chaos_spec, parse_fault_spec

#: exit codes by failure class (mirrors ReproError.exit_code)
EXIT_SPEC = 2
EXIT_BUDGET = 3
EXIT_EXECUTION = 4


def _fail(exc: Exception, code: int) -> int:
    """One structured diagnostic line on stderr, then the exit code."""
    print(f"error: {exc}", file=sys.stderr)
    return code


def _parse_grid(text: str) -> ProcessorGrid:
    try:
        dims = tuple(int(p) for p in text.lower().split("x"))
        return ProcessorGrid(dims)
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad grid {text!r}: use forms like 4 or 2x2x2"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Synthesize optimized (parallel) loop programs from tensor "
            "contraction expressions (IPPS 2002 TCE framework)."
        ),
    )
    parser.add_argument("input", help="source file (or - for stdin)")
    parser.add_argument(
        "--grid",
        type=_parse_grid,
        default=None,
        help="processor grid, e.g. 4 or 2x2x2 (default: sequential)",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=None,
        help="processor count; the synthesis system picks the best "
        "logical grid shape (alternative to --grid)",
    )
    parser.add_argument(
        "--cache", type=int, default=32 * 1024,
        help="cache capacity in elements",
    )
    parser.add_argument(
        "--memory", type=int, default=16 * 1024 * 1024,
        help="physical memory capacity in elements",
    )
    parser.add_argument(
        "--disk", type=int, default=2 * 1024**3,
        help="disk capacity in elements",
    )
    parser.add_argument(
        "--capacity-level",
        choices=("memory", "disk"),
        default="memory",
        help="level the fused computation must fit into",
    )
    parser.add_argument(
        "--comm-cost", type=float, default=10.0,
        help="communication cost per element (in op units)",
    )
    parser.add_argument(
        "--no-cache-opt", action="store_true",
        help="skip the data-locality tile search",
    )
    parser.add_argument(
        "--semiring", default="plus_times", metavar="NAME",
        help="scalar algebra for every contraction: plus_times "
        "(default), min_plus (shortest paths), max_plus (critical "
        "paths), max_times (widest/most-reliable paths), or or_and "
        "(reachability); see repro.semiring",
    )
    parser.add_argument(
        "--sparse-aware", action="store_true",
        help="scale operation-minimization costs by declared "
        "sparse(fill) annotations",
    )
    parser.add_argument(
        "--no-sparse-exec", action="store_true",
        help="keep statements with sparse operands on the dense "
        "loop-IR path instead of the sparse executor",
    )
    parser.add_argument(
        "--show-structure", action="store_true",
        help="print the synthesized loop structure",
    )
    parser.add_argument(
        "--show-code", action="store_true",
        help="print the generated Python source",
    )
    parser.add_argument(
        "--show-plans", action="store_true",
        help="print the chosen data distributions",
    )
    parser.add_argument(
        "--emit", metavar="FILE", default=None,
        help="write the generated Python kernel to FILE",
    )
    parser.add_argument(
        "--emit-spmd", metavar="FILE", default=None,
        help="write the generated per-rank SPMD program(s) to FILE "
        "(requires --grid)",
    )
    parser.add_argument(
        "--budget-ms", type=float, default=None,
        help="search deadline in milliseconds; exhausted stages degrade "
        "to documented greedy fallbacks",
    )
    parser.add_argument(
        "--budget-nodes", type=int, default=None,
        help="search node budget shared across all stages",
    )
    parser.add_argument(
        "--budget-strict", action="store_true",
        help="fail (exit code 3) instead of degrading when the search "
        "budget is exhausted",
    )
    parser.add_argument(
        "--run", action="store_true",
        help="execute the synthesized computation on deterministic "
        "random inputs and validate against the reference executor",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="with --run: checkpoint/restart directory for the "
        "interpreter execution",
    )
    parser.add_argument(
        "--inject-fault", metavar="SPEC", default=None,
        help="with --run and a grid: inject SPMD faults, e.g. "
        "'drop:0,3', 'drop:0x5' (5 attempts), 'crash:1', or "
        "'drop:0;crash:2'",
    )
    parser.add_argument(
        "--inject-chaos", metavar="SPEC", default=None,
        help="with --run and --backend process: inject process-level "
        "chaos, e.g. 'kill_worker@0', 'hang_worker@1', 'drop_reply@2' "
        "(joined with ';'); a supervised pool recovers by respawn + "
        "statement retry with bit-identical results",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "process"),
        default="local",
        help="with --run and a grid: SPMD execution backend -- 'local' "
        "(in-process lock-step driver) or 'process' (worker OS "
        "processes, bit-identical results)",
    )
    parser.add_argument(
        "--procs", type=int, default=None,
        help="with --backend process: worker process count "
        "(default: one per rank)",
    )
    parser.add_argument(
        "--codegen",
        choices=("auto", "native", "gemm", "einsum"),
        default="auto",
        help="kernel codegen target: 'native' compiles fused tiled "
        "loop nests (numba or cc; machines without a compiler degrade "
        "to gemm and say so), 'gemm'/'einsum' force those lowerings, "
        "'auto' uses gemm and lets --autotune measure native",
    )
    parser.add_argument(
        "--kernel-threads", type=int, default=None, metavar="N",
        help="with --codegen native: thread count for compiled loop "
        "nests (OpenMP when the compiler supports -fopenmp, a portable "
        "chunked thread pool otherwise; results stay bit-identical to "
        "the sequential nest; default 1, or the autotuner's pick)",
    )
    parser.add_argument(
        "--fuse-statements", action="store_true",
        help="with --codegen native: fuse consecutive statements that "
        "share an output iteration space into single jointly-parallel "
        "kernels (one parallel region per fused group)",
    )
    parser.add_argument(
        "--artifact-store", metavar="DIR", default=None,
        help="content-addressed compiled-kernel store directory: warm "
        "runs load shared objects instead of re-invoking the compiler",
    )
    parser.add_argument(
        "--plan-cache", metavar="DIR", default=None,
        help="content-addressed synthesis cache directory: reuse the "
        "complete plan when program + config + version match",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="measure the analytical searches' top candidates (tile "
        "sizes, kernel lowering, grid shape) on this machine and keep "
        "the fastest",
    )
    parser.add_argument(
        "--tuning-db", metavar="DIR", default=None,
        help="with --autotune: persistent tuning database directory; "
        "repeat syntheses on the same machine skip measurement",
    )
    parser.add_argument(
        "--tune-trials", type=int, default=3,
        help="with --autotune: timed repetitions per candidate "
        "(median-of-N with outlier rejection; default 3)",
    )
    return parser


def _validate_args(args) -> Optional[SpecError]:
    """Range checks argparse types cannot express; None when valid."""
    if args.procs is not None and args.procs < 1:
        return SpecError(
            f"--procs must be a positive worker count, got {args.procs}"
        )
    if args.processors is not None and args.processors < 1:
        return SpecError(
            "--processors must be a positive processor count, "
            f"got {args.processors}"
        )
    if args.budget_ms is not None and args.budget_ms <= 0:
        return SpecError(
            f"--budget-ms must be a positive deadline, got {args.budget_ms:g}"
        )
    if args.budget_nodes is not None and args.budget_nodes < 0:
        return SpecError(
            f"--budget-nodes must be >= 0, got {args.budget_nodes}"
        )
    if args.tune_trials < 1:
        return SpecError(
            f"--tune-trials must be >= 1, got {args.tune_trials}"
        )
    if args.kernel_threads is not None and args.kernel_threads < 1:
        return SpecError(
            f"--kernel-threads must be >= 1, got {args.kernel_threads}"
        )
    if args.tuning_db is not None and not args.autotune:
        return SpecError("--tuning-db requires --autotune")
    try:
        from repro.semiring import get_semiring

        get_semiring(args.semiring)
    except SpecError as exc:
        return exc
    return None


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        from repro.server.app import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "run":
        return _demo_main(argv[1:])
    args = build_parser().parse_args(argv)
    invalid = _validate_args(args)
    if invalid is not None:
        return _fail(invalid, EXIT_SPEC)
    if args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2

    faults = None
    if args.inject_fault is not None:
        try:
            faults = parse_fault_spec(args.inject_fault)
        except SpecError as exc:
            return _fail(exc, EXIT_SPEC)
        if not args.run:
            return _fail(
                SpecError("--inject-fault requires --run"), EXIT_SPEC
            )

    chaos = None
    if args.inject_chaos is not None:
        try:
            chaos = parse_chaos_spec(args.inject_chaos)
        except SpecError as exc:
            return _fail(exc, EXIT_SPEC)
        if not args.run or args.backend != "process":
            return _fail(
                SpecError(
                    "--inject-chaos requires --run --backend process "
                    "(chaos acts on worker OS processes)"
                ),
                EXIT_SPEC,
            )

    budget = None
    if (
        args.budget_ms is not None
        or args.budget_nodes is not None
        or args.budget_strict
    ):
        budget = Budget(
            deadline_ms=args.budget_ms,
            max_nodes=args.budget_nodes,
            strict=args.budget_strict,
        )

    machine = MachineModel(
        cache=MemoryLevel("cache", args.cache, 8.0),
        memory=MemoryLevel("memory", args.memory, 512.0),
        disk=MemoryLevel("disk", args.disk, 100_000.0),
    )
    config = SynthesisConfig(
        machine=machine,
        grid=args.grid,
        processors=args.processors,
        comm=CommModel(comm_cost=args.comm_cost),
        capacity_level=args.capacity_level,
        optimize_cache=not args.no_cache_opt,
        sparse_aware=args.sparse_aware,
        sparse_execution=not args.no_sparse_exec,
        budget=budget,
        codegen=args.codegen,
        kernel_threads=args.kernel_threads,
        fuse_statements=args.fuse_statements,
        semiring=args.semiring,
    )
    if args.artifact_store is not None:
        from repro.kernels import configure_default_engine

        configure_default_engine(directory=args.artifact_store)
    cache = None
    if args.plan_cache is not None:
        from repro.runtime.plan_cache import PlanCache

        cache = PlanCache(directory=args.plan_cache)
    autotune = None
    if args.autotune:
        from repro.autotune import AutotuneOptions, TuningDB

        autotune = AutotuneOptions(
            trials=args.tune_trials,
            db=(
                TuningDB(directory=args.tuning_db)
                if args.tuning_db is not None
                else None
            ),
            budget=budget,
        )
    try:
        result = synthesize(source, config, cache=cache, autotune=autotune)
    except BudgetExceeded as exc:
        return _fail(exc, EXIT_BUDGET)
    except ParseError as exc:
        return _fail(exc, EXIT_SPEC)
    except ReproError as exc:
        return _fail(exc, exc.exit_code)
    except ValueError as exc:
        return _fail(exc, 1)

    print(result.describe())
    if args.show_structure:
        print("\n# synthesized loop structure")
        print(result.render_structure())
    if args.show_plans and result.partition_plans:
        print("\n# distribution plans")
        for name, plan in result.partition_plans.items():
            print(f"-- {name} --")
            print(plan.describe())
    if args.show_code:
        print("\n# generated Python")
        print(result.source)
    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as handle:
            handle.write("import numpy as _np\n\n")
            handle.write(result.source)
        print(f"\nwrote kernel to {args.emit}")
    if args.emit_spmd:
        if not result.partition_plans:
            return _fail(
                SpecError(
                    "--emit-spmd requires --grid and plannable statements"
                ),
                EXIT_SPEC,
            )
        from repro.parallel.spmd import generate_spmd_source

        with open(args.emit_spmd, "w", encoding="utf-8") as handle:
            for name, plan in result.partition_plans.items():
                handle.write(f"# ==== statement producing {name} ====\n")
                handle.write(
                    generate_spmd_source(
                        plan,
                        name=f"rank_program_{name}",
                        semiring=result.config.semiring,
                    )
                )
                handle.write("\n")
        print(f"wrote SPMD program(s) to {args.emit_spmd}")
    if args.run:
        rc = _run_and_validate(
            result, faults, args.checkpoint_dir,
            backend=args.backend, procs=args.procs, chaos=chaos,
        )
        if rc:
            return rc
    return 0


def _run_and_validate(
    result, faults, checkpoint_dir, *, backend="local", procs=None,
    chaos=None,
) -> int:
    """Execute the synthesis result on deterministic random inputs and
    compare against the reference einsum executor; 0 on success."""
    import numpy as np

    from repro.engine.executor import random_inputs, run_statements

    program = result.program
    bindings = result.config.bindings
    if any(t.is_function for t in program.tensors()):
        return _fail(
            SpecError(
                "--run cannot synthesize inputs for function tensors"
            ),
            EXIT_SPEC,
        )
    inputs = random_inputs(program, bindings, seed=0)
    try:
        env = result.execute(inputs, checkpoint=checkpoint_dir)
        want = run_statements(
            program.statements, inputs, bindings,
            semiring=result.config.semiring,
        )
        for stmt in program.statements:
            name = stmt.result.name
            if not np.allclose(env[name], want[name], rtol=1e-8, atol=1e-10):
                return _fail(
                    ReproError(
                        f"output {name!r} does not match the reference "
                        "executor",
                        stage="validation",
                        tensor=name,
                    ),
                    EXIT_EXECUTION,
                )
        print("run: outputs match the reference executor")
        if result.partition_plans:
            supervisor = None
            if chaos is not None and chaos.any_chaos:
                from repro.robustness.faults import ChaosState
                from repro.runtime.supervisor import PoolSupervisor

                grid_size = next(
                    iter(result.partition_plans.values())
                ).grid.size
                supervisor = PoolSupervisor(
                    max(1, min(procs or grid_size, grid_size)),
                    chaos=ChaosState(chaos),
                )
            if supervisor is not None:
                with supervisor:
                    out = result.run_parallel(
                        inputs, faults=faults, backend=backend,
                        procs=procs, supervisor=supervisor,
                    )
            else:
                out = result.run_parallel(
                    inputs, faults=faults, backend=backend, procs=procs
                )
            for note in result.last_run_notes:
                print(f"warning: {note}", file=sys.stderr)
            for stmt in program.statements:
                name = stmt.result.name
                if name not in out:
                    continue
                if not np.allclose(
                    out[name], want[name], rtol=1e-8, atol=1e-10
                ):
                    return _fail(
                        ReproError(
                            f"parallel output {name!r} does not match "
                            "the reference executor",
                            stage="validation",
                            tensor=name,
                        ),
                        EXIT_EXECUTION,
                    )
            recovered = []
            if faults is not None and faults.any_faults:
                recovered.append("injected faults")
            if supervisor is not None and (
                supervisor.respawns or supervisor.retries
            ):
                recovered.append(
                    f"process chaos: {supervisor.respawns} respawn(s), "
                    f"{supervisor.retries} retried statement(s)"
                )
            suffix = (
                f" (with {'; '.join(recovered)} recovered)"
                if recovered
                else ""
            )
            print(f"run: parallel outputs match the reference executor{suffix}")
        elif faults is not None:
            print(
                "run: no partition plans; fault injection had nothing "
                "to act on"
            )
    except ReproError as exc:
        return _fail(exc, exc.exit_code)
    return 0


def _demo_main(argv: List[str]) -> int:
    """``repro run``: the semiring graph-analytics demonstration.

    Synthesizes an all-pairs shortest-path (repeated-squaring) program
    under the chosen algebra and executes it on three independent
    substrates -- the loop-IR interpreter, the native-threaded kernel
    runner, and the process-backend SPMD driver -- checking the outputs
    bit-identical against each other and (for ``min_plus`` /
    ``or_and``) against a pure-Python oracle.  Also demonstrates the
    plan cache going cold -> warm and the semiring participating in the
    cache key.
    """
    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "All-pairs shortest paths as a tensor contraction program: "
            "cross-substrate bit-identity demo for --semiring"
        ),
    )
    parser.add_argument(
        "--semiring", default="min_plus", metavar="NAME",
        help="scalar algebra (default min_plus; see repro.semiring)",
    )
    parser.add_argument(
        "--codegen",
        choices=("auto", "native", "gemm", "einsum"),
        default="auto",
        help="kernel codegen target for the kernel-runner substrate",
    )
    parser.add_argument(
        "--nodes", type=int, default=10,
        help="graph size (default 10)",
    )
    parser.add_argument(
        "--density", type=float, default=0.4,
        help="edge density in [0, 1] (default 0.4)",
    )
    parser.add_argument("--seed", type=int, default=0, help="input seed")
    parser.add_argument(
        "--procs", type=int, default=2,
        help="worker processes for the SPMD substrate (default 2)",
    )
    args = parser.parse_args(argv)

    import numpy as np

    from repro.graphs import (
        apsp_program,
        floyd_warshall,
        random_weight_matrix,
        reachability,
    )
    from repro.runtime.plan_cache import PlanCache, plan_key
    from repro.semiring import get_semiring

    try:
        sr = get_semiring(args.semiring)
        if args.nodes < 2:
            raise SpecError(f"--nodes must be >= 2, got {args.nodes}")
        if not 0.0 <= args.density <= 1.0:
            raise SpecError(
                f"--density must be in [0, 1], got {args.density:g}"
            )
        if args.procs < 1:
            raise SpecError(f"--procs must be >= 1, got {args.procs}")
    except SpecError as exc:
        return _fail(exc, EXIT_SPEC)

    n = args.nodes
    source, res = apsp_program(n)
    base = random_weight_matrix(n, args.density, args.seed)
    if sr.name in ("min_plus", "max_plus"):
        weights = np.where(np.isfinite(base), base, sr.zero)
        np.fill_diagonal(weights, sr.one)
    else:
        # boolean-style carrier: present edges are 1, the diagonal too
        weights = np.isfinite(base).astype(np.float64)
        np.fill_diagonal(weights, 1.0)
    inputs = {"W": weights}
    print(
        f"run: apsp n={n} semiring={sr.name} codegen={args.codegen} "
        f"({sr.describe()})"
    )

    config = SynthesisConfig(
        semiring=sr.name, codegen=args.codegen, kernel_threads=2,
    )
    grid_config = SynthesisConfig(
        semiring=sr.name, grid=ProcessorGrid((args.procs,)),
    )
    try:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-plan-") as tmp:
            cache = PlanCache(directory=tmp)
            result = synthesize(source, config, cache=cache)
            cold = (cache.misses, cache.hits)
            result = synthesize(source, config, cache=cache)
            warm = (cache.misses, cache.hits)
        key = plan_key(result.program, config)
        other = plan_key(
            result.program,
            SynthesisConfig(codegen=args.codegen, kernel_threads=2),
        )
        if warm[1] <= cold[1] or key == other:
            return _fail(
                ReproError(
                    "plan cache did not distinguish the semiring",
                    stage="validation",
                ),
                EXIT_EXECUTION,
            )
        print(
            f"run: plan-cache cold miss -> warm hit "
            f"(key {key[:12]}..., plus_times key {other[:12]}...)"
        )

        out_interp = result.execute(inputs)[res]
        runner = result.kernel_runner()
        out_kernel = runner.run(inputs, copy=True)[res]
        grid_result = synthesize(source, grid_config)
        out_spmd = grid_result.run_parallel(
            inputs, backend="process", procs=args.procs
        )[res]
    except ReproError as exc:
        return _fail(exc, exc.exit_code)

    if not (
        np.array_equal(out_interp, out_kernel)
        and np.array_equal(out_interp, out_spmd)
    ):
        return _fail(
            ReproError(
                "substrates disagree: interp / native kernel / "
                "process-spmd outputs are not bit-identical",
                stage="validation",
                semiring=sr.name,
            ),
            EXIT_EXECUTION,
        )
    print(
        "run: interp, kernel-runner, and process-spmd outputs are "
        "bit-identical"
    )

    if sr.name == "min_plus":
        oracle = floyd_warshall(weights)
        ok = bool(np.allclose(out_interp, oracle, rtol=1e-12, atol=1e-12))
        label = "floyd_warshall"
    elif sr.name == "or_and":
        oracle = reachability(weights)
        ok = bool(np.array_equal(out_interp, oracle))
        label = "reachability"
    else:
        print(f"run: no pure-Python oracle registered for {sr.name}")
        return 0
    if not ok:
        return _fail(
            ReproError(
                f"result does not match the {label} oracle",
                stage="validation",
                semiring=sr.name,
            ),
            EXIT_EXECUTION,
        )
    print(f"run: matches the {label} oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
