"""The end-to-end synthesis pipeline (paper Fig. 5).

``synthesize`` drives the full chain on a high-level program:

1. **Algebraic transformations** -- operation minimization into a
   formula sequence (:mod:`repro.opmin`);
2. **Memory minimization** -- loop-fusion DP per computation tree
   (:mod:`repro.fusion`);
3. **Space-time transformation** -- if the fused memory still exceeds
   the configured capacity, the fusion/recompute pareto search plus
   tile-size search (:mod:`repro.spacetime`); with feedback to memory
   minimization exactly as in the figure (the tradeoff search subsumes
   the pure-fusion solutions);
4. **Data locality optimization** -- cache blocking of the resulting
   structure (:mod:`repro.locality`);
5. **Data distribution and partitioning** -- the Section-7 DP per
   formula-sequence statement on a processor grid
   (:mod:`repro.parallel`);
6. **Code generation** -- executable Python from the loop IR
   (:mod:`repro.codegen.pygen`).

The result object carries every stage's report, the final loop
structure, the generated source, and an ``execute`` method validated
against the reference einsum executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.expr.ast import Program, Statement
from repro.expr.parser import parse_program
from repro.engine.machine import MachineModel
from repro.opmin.cost import sequence_op_count, statement_op_count
from repro.opmin.multi_term import optimize_program
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_forest
from repro.spacetime.tiling import search_tile_sizes
from repro.spacetime.tradeoff import tradeoff_search
from repro.locality.tile_search import optimize_locality, tileable_indices
from repro.parallel.commcost import CommModel
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import PartitionPlan, optimize_distribution
from repro.parallel.ptree import expression_to_ptree
from repro.codegen.builder import build_fused
from repro.codegen.interp import execute as interp_execute
from repro.codegen.loops import Block, loop_op_count, peak_memory, render, total_memory
from repro.codegen.pygen import compile_loops, generate_source
from repro.engine.counters import Counters
from repro.report import StageReport
from repro.robustness.budget import Budget, BudgetTracker
from repro.robustness.errors import BudgetExceeded

#: schema version of :class:`SynthesisResult` as stored in the plan
#: cache.  Bumped whenever the result grows fields that executing code
#: relies on, so a pickled result from an older release is rejected as
#: stale instead of resurfacing as an object missing attributes
#: (version 2: codegen_mode / native_artifacts / native kernel terms;
#: version 3: kernel_threads / fuse_statements config and fused-group
#: kernel plans; version 4: semiring-generalized contractions -- the
#: config carries a semiring id, kernel plans record their algebra, and
#: nest IR moved to v3 with semiring-aware emission).
RESULT_VERSION = 4


@dataclass
class SynthesisConfig:
    """Knobs of the pipeline."""

    machine: MachineModel = field(default_factory=MachineModel)
    grid: Optional[ProcessorGrid] = None
    #: alternative to `grid`: give a processor *count* and let the
    #: distribution stage pick the best logical grid shape
    processors: Optional[int] = None
    comm: CommModel = field(default_factory=CommModel)
    bindings: Optional[Mapping[str, int]] = None
    #: memory level the fused computation must fit in before the
    #: space-time stage stops rewriting ('memory' or 'disk')
    capacity_level: str = "memory"
    #: run the (potentially slow) locality tile search
    optimize_cache: bool = True
    locality_max_indices: int = 4
    #: also search loop orders of perfect nests (Section 6's other knob)
    optimize_order: bool = False
    #: apply reverse-distributivity factorization in stage 1
    factorize: bool = True
    #: scale operation-minimization costs by declared fills, so sparsity
    #: annotations influence the chosen formula sequence
    sparse_aware: bool = False
    #: dispatch statements with declared-sparse operands to the sparse
    #: executor (dense statements keep the loop-IR path)
    sparse_execution: bool = True
    #: search budget (deadline and/or node count) shared across every
    #: search stage; on exhaustion each stage degrades to its documented
    #: greedy fallback and the stage report records it (strict budgets
    #: raise :class:`~repro.robustness.errors.BudgetExceeded` instead)
    budget: Optional[Budget] = None
    #: kernel codegen target: ``"gemm"`` (permute+reshape+matmul,
    #: einsum fallback), ``"einsum"`` (cached-path einsum everywhere),
    #: ``"native"`` (compiled fused tiled loop nests via
    #: :mod:`repro.kernels.native`, per-term GEMM/einsum fallback when
    #: no nest compiles), or ``"auto"`` (gemm; the autotune stage may
    #: measure and select native).  A machine without any compiler
    #: silently degrades ``"native"`` to ``"gemm"`` and records why.
    codegen: str = "auto"
    #: thread count for compiled native nests (``None`` = sequential).
    #: OpenMP when the probed compiler supports ``-fopenmp``, a portable
    #: chunked-outer-loop thread pool otherwise; either way the result
    #: is bit-identical to the sequential nest.  The autotuner may also
    #: pick a measured count (``tuning.threads``); an explicit value
    #: here wins.
    kernel_threads: Optional[int] = None
    #: fuse consecutive statements that share an output iteration space
    #: into single jointly-parallel kernels (native codegen only; other
    #: modes ignore the flag)
    fuse_statements: bool = False
    #: scalar algebra the contractions evaluate under
    #: (:mod:`repro.semiring`): ``"plus_times"`` is classical linear
    #: algebra; ``"min_plus"``/``"max_plus"``/``"max_times"``/
    #: ``"or_and"`` turn the same tensor programs into shortest-path /
    #: longest-path / max-reliability / reachability engines.  Threaded
    #: through every executor, the kernel planner (GEMM declines
    #: non-default algebras), generated nest IR, and the SPMD runtime;
    #: part of the config fingerprint, so plan-cache entries never
    #: collide across algebras.
    semiring: str = "plus_times"


@dataclass
class SynthesisResult:
    """Everything the pipeline produced."""

    program: Program
    config: SynthesisConfig
    statements: List[Statement]
    structure: Block
    source: str
    reports: List[StageReport]
    partition_plans: Dict[str, PartitionPlan] = field(default_factory=dict)
    locality_tiles: Dict[str, int] = field(default_factory=dict)
    #: mixed dense/sparse plan; set when the program declares sparsity
    #: and ``config.sparse_execution`` is on
    execution_plan: Optional["ExecutionPlan"] = None
    #: per-statement dense-vs-sparse planning estimates (result -> est.)
    sparsity_estimates: Dict[str, "SparsityEstimate"] = field(
        default_factory=dict
    )
    #: the budget tracker that drove the run (None without a budget);
    #: its ``degradations`` list which stages fell back and why
    budget_tracker: Optional[BudgetTracker] = None
    #: per-statement notes from the most recent :meth:`run_parallel`
    #: call: statements that could not run distributed (no partition
    #: plan, or they materialize function tensors) are listed here so
    #: callers know exactly what executed where
    last_run_notes: List[str] = field(default_factory=list)
    #: the formula sequence compiled ahead of time to execution kernels
    #: (:mod:`repro.kernels`): GEMM lowerings, einsum fallback specs,
    #: and buffer liveness, all resolved at synthesis time.  Pickle-safe,
    #: so it rides the plan cache; ``None`` only when lowering was not
    #: applicable (see the Code generation stage report).
    kernel_plan: Optional["KernelPlan"] = None
    #: the structure as it stood *before* the locality stage tiled it,
    #: kept so the empirical autotuner (:mod:`repro.autotune`) can
    #: re-apply alternative tile combinations; ``None`` when the
    #: locality search did not run
    pre_locality_structure: Optional[Block] = None
    #: the head of the locality search table (``{"tiles": .., "cost":
    #: ..}`` rows, modeled-cost ascending) -- the autotuner's tile
    #: candidate pool
    locality_table: List[Dict[str, object]] = field(default_factory=list)
    #: ``(shape, modeled cost)`` rows from the grid-shape search when
    #: ``processors`` was given -- the autotuner's grid candidate pool
    grid_table: List[Tuple[Tuple[int, ...], float]] = field(
        default_factory=list
    )
    #: measured tuning decisions in effect
    #: (:class:`~repro.autotune.stage.TuningDecisions`); ``None`` until
    #: the autotune stage runs
    tuning: Optional["TuningDecisions"] = None
    #: the codegen mode the kernel plan was actually compiled with
    #: (``config.codegen`` after resolving ``"auto"`` and degrading an
    #: unavailable ``"native"``)
    codegen_mode: str = "gemm"
    #: artifact-store keys of the nests precompiled for this plan
    #: (native mode only); warm processes load these without a compiler
    native_artifacts: List[str] = field(default_factory=list)
    #: schema version stamp checked by the plan cache
    #: (:data:`RESULT_VERSION`); results pickled by older releases lack
    #: the attribute entirely and read as stale, never as broken objects
    result_version: int = RESULT_VERSION

    @property
    def degraded_stages(self) -> List[str]:
        """Stage keys that exhausted the budget and used a fallback."""
        if self.budget_tracker is None:
            return []
        return self.budget_tracker.degraded_stages()

    def describe(self) -> str:
        return "\n\n".join(r.render() for r in self.reports)

    def render_structure(self) -> str:
        return render(self.structure)

    def execute(
        self,
        inputs: Mapping[str, np.ndarray],
        functions: Optional[Mapping[str, Callable]] = None,
        counters: Optional[Counters] = None,
        *,
        check_finite: bool = False,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """Run the synthesized computation (interpreter, counted).

        With a mixed :attr:`execution_plan` (program declares sparsity),
        statements with sparse operands run on the nonzero-iterating
        executor and dense statements on the loop-IR interpreter;
        otherwise the whole loop structure is interpreted.

        ``check_finite`` rejects NaN/Inf inputs up front;
        ``checkpoint`` names a directory for checkpoint/restart of the
        loop-IR path (see :func:`repro.codegen.interp.execute`; not
        supported for the mixed sparse execution plan).
        """
        if self.execution_plan is not None:
            from repro.codegen.dispatch import execute_plan

            if checkpoint is not None:
                from repro.robustness.errors import CheckpointError

                raise CheckpointError(
                    "checkpointing is only supported on the loop-IR "
                    "execution path, not the mixed sparse plan",
                    stage="execution",
                )
            return execute_plan(
                self.execution_plan,
                inputs,
                self.config.bindings,
                functions,
                counters,
                semiring=self.config.semiring,
            )
        return interp_execute(
            self.structure,
            inputs,
            self.config.bindings,
            functions,
            counters,
            check_finite=check_finite,
            checkpoint=checkpoint,
            semiring=self.config.semiring,
        )

    def _require_default_semiring(self, where: str) -> None:
        """The loop/numpy source generators hard-code ``(+, ×)``."""
        if getattr(self.config, "semiring", "plus_times") != "plus_times":
            from repro.robustness.errors import ReproError

            raise ReproError(
                f"{where} only supports the plus_times semiring; use "
                "execute(), kernel_runner(), or the native codegen path "
                f"for '{self.config.semiring}' programs",
                stage="codegen",
                semiring=self.config.semiring,
            )

    def compile(self) -> Callable:
        """Compile the generated Python source to a callable kernel."""
        self._require_default_semiring("compile()")
        return compile_loops(self.structure, self.config.bindings)

    def compile_fast(self) -> Callable:
        """Compile the *formula sequence* to a vectorized numpy kernel.

        This is the practical execution path at real sizes: binary
        contractions lowered to GEMM, degenerate terms on the
        cached-path einsum (no fusion/tiling -- use it when the problem
        fits in memory).  Numerically it matches the reference executor
        to floating-point reassociation tolerance (~1e-12 relative).
        """
        self._require_default_semiring("compile_fast()")
        from repro.codegen.npgen import compile_sequence

        return compile_sequence(self.statements, self.config.bindings)

    def kernel_runner(
        self,
        functions: Optional[Mapping[str, Callable]] = None,
        **kwargs,
    ) -> "KernelRunner":
        """A :class:`~repro.kernels.plan.KernelRunner` over the compiled
        :attr:`kernel_plan` -- the allocation-free repeated-execution
        path (persistent output buffers, arena-recycled temporaries).

        Each call builds a fresh runner (runners own mutable buffers, so
        they are deliberately not stored on the cacheable result); hold
        on to it across executions to get the steady-state behaviour.

        Nest thread count resolution: an explicit ``threads=`` keyword
        wins, then :attr:`SynthesisConfig.kernel_threads`, then the
        autotuner's measured ``tuning.threads``.
        """
        from repro.kernels import compile_kernel_plan
        from repro.kernels.plan import KernelRunner

        if "threads" not in kwargs or kwargs["threads"] is None:
            threads = self.config.kernel_threads
            if threads is None and self.tuning is not None:
                threads = getattr(self.tuning, "threads", None)
            if threads is not None:
                kwargs["threads"] = threads
        plan = self.kernel_plan
        if plan is None:
            plan = compile_kernel_plan(
                self.statements, self.config.bindings,
                mode=self.codegen_mode,
                fuse=self.config.fuse_statements,
                semiring=self.config.semiring,
            )
        return KernelRunner(plan, functions=functions, **kwargs)

    def spmd_sources(self) -> Dict[str, str]:
        """Generated per-rank SPMD program source per planned statement.

        Empty when no grid was configured.  See
        :mod:`repro.parallel.spmd` for the execution driver.
        """
        from repro.parallel.spmd import generate_spmd_source

        return {
            name: generate_spmd_source(
                plan,
                name=f"rank_program_{name}",
                semiring=self.config.semiring,
            )
            for name, plan in self.partition_plans.items()
        }

    def run_parallel(
        self,
        inputs: Mapping[str, np.ndarray],
        functions: Optional[Mapping[str, Callable]] = None,
        *,
        faults=None,
        max_retries: int = 3,
        max_restarts: int = 3,
        backend: str = "local",
        procs: Optional[int] = None,
        transport: Optional[str] = None,
        pool=None,
        supervisor=None,
    ) -> Dict[str, np.ndarray]:
        """Execute the generated SPMD programs for the whole sequence;
        returns produced arrays.

        ``backend`` selects the SPMD driver: ``"local"`` advances every
        rank in-process in lock step; ``"process"`` runs the same
        generated rank programs across worker OS processes
        (:mod:`repro.runtime.process`, at most ``procs`` workers, one
        pool shared across the sequence) with bit-identical results.
        ``procs`` beyond the machine's CPU count is clamped to
        ``os.cpu_count()`` (oversubscribing cores only adds scheduler
        thrash; the clamp is recorded in :attr:`last_run_notes`).
        ``transport`` selects the process backend's ndarray wire:
        ``"shm"`` ships arrays through shared-memory segments,
        ``"pipe"`` pickles them into the worker pipes.  Left ``None``,
        ``transport`` and ``procs`` default to the measured
        :attr:`tuning` decisions when the autotune stage ran
        (:mod:`repro.autotune`), else to ``"shm"`` / one worker per
        rank.

        Statements without partition plans (multi-term combines kept
        data-local) and statements materializing primitive functions are
        evaluated in place between the SPMD runs; each such statement is
        recorded in :attr:`last_run_notes` so callers can tell which
        statements actually ran distributed.

        ``pool`` (process backend only) executes on an existing
        :class:`~repro.runtime.process.SpmdProcessPool` instead of
        spawning one: the serving layer keeps warm pools resident
        across requests.  A caller-provided pool is *not* closed here
        -- its owner decides its lifetime (and must evict it if a
        worker died: see :attr:`SpmdProcessPool.broken`).

        ``faults`` (a :class:`~repro.robustness.faults.FaultSchedule`)
        injects message drops and rank crashes into every statement's
        SPMD run; recovery is by bounded retry and statement restart
        (see :func:`repro.parallel.spmd.run_spmd`).

        ``supervisor`` (process backend only, a
        :class:`~repro.runtime.supervisor.PoolSupervisor`) executes
        every statement under supervision: dead workers are detected,
        the pool is respawned, and the failed statement is re-run on
        the fresh pool with bit-identical results.  The supervisor's
        recovery log (respawns, retries) is merged into
        :attr:`last_run_notes`.  Mutually exclusive with ``pool`` --
        the supervisor owns its pool (adopt a warm pool by passing it
        to the supervisor's constructor instead).
        """
        if not self.partition_plans:
            raise ValueError("no partition plans: configure a grid first")
        if backend not in ("local", "process"):
            raise ValueError(
                f"unknown SPMD backend {backend!r} "
                "(use 'local' or 'process')"
            )
        if pool is not None and backend != "process":
            raise ValueError(
                "a worker pool requires backend='process', "
                f"got backend={backend!r}"
            )
        if supervisor is not None and backend != "process":
            raise ValueError(
                "a supervisor requires backend='process', "
                f"got backend={backend!r}"
            )
        if supervisor is not None and pool is not None:
            raise ValueError(
                "pass pool= or supervisor=, not both (a supervisor owns "
                "its pool; adopt a warm pool via PoolSupervisor(pool=...))"
            )
        from repro.engine.executor import run_statements as run_local
        from repro.parallel.program_plan import SequencePlan
        from repro.parallel.spmd import run_spmd_sequence

        if transport is None:
            transport = (
                self.tuning.transport
                if self.tuning is not None and self.tuning.transport
                else "shm"
            )
        if procs is None and self.tuning is not None:
            procs = self.tuning.procs

        notes: List[str] = []
        owned_pool = pool is None and supervisor is None
        if backend == "process":
            import os

            wanted_threads = self.config.kernel_threads
            if wanted_threads is None and self.tuning is not None:
                wanted_threads = getattr(self.tuning, "threads", None)
            if wanted_threads is not None and wanted_threads > 1:
                notes.append(
                    f"kernel threads pinned to 1 (was {wanted_threads}) "
                    "under the process backend: the SPMD grid owns the "
                    "cores, and procs x nest threads must not "
                    "oversubscribe"
                )

            from repro.runtime.process import SpmdProcessPool

            grid_size = next(
                iter(self.partition_plans.values())
            ).grid.size
            nworkers = max(1, min(procs or grid_size, grid_size))
            ncpu = os.cpu_count() or 1
            if nworkers > ncpu:
                notes.append(
                    f"procs clamped {nworkers} -> {ncpu} "
                    f"(os.cpu_count(); oversubscription disabled)"
                )
                nworkers = ncpu
                procs = ncpu
            if supervisor is not None:
                # the supervisor keeps its own transport and worker cap
                transport = supervisor.transport
                if nworkers > supervisor.procs:
                    procs = supervisor.procs
            elif pool is None:
                pool = SpmdProcessPool(nworkers, transport=transport)
            else:
                # a warm pool keeps its own transport and worker cap
                transport = pool.transport
                if nworkers > pool.procs:
                    procs = pool.procs

        arrays: Dict[str, np.ndarray] = dict(inputs)
        try:
            for stmt in self.statements:
                name = stmt.result.name
                plan = self.partition_plans.get(name)
                uses_functions = any(
                    ref.tensor.is_function for ref in stmt.expr.refs()
                )
                if plan is None or uses_functions:
                    reason = (
                        "materializes function tensors"
                        if uses_functions
                        else "no partition plan "
                        "(multi-term combine kept data-local)"
                    )
                    notes.append(f"{name}: executed locally -- {reason}")
                    arrays = run_local(
                        [stmt], arrays, self.config.bindings, functions,
                        semiring=self.config.semiring,
                    )
                    continue
                seq_plan = SequencePlan([(name, plan)], plan.total_cost)
                if supervisor is not None:
                    out = supervisor.run_statement(
                        lambda p, stmt=stmt, seq_plan=seq_plan: (
                            run_spmd_sequence(
                                [stmt], seq_plan, arrays, faults=faults,
                                max_retries=max_retries,
                                max_restarts=max_restarts,
                                backend=backend, procs=procs, pool=p,
                                transport=p.transport,
                                semiring=self.config.semiring,
                            )
                        )
                    )
                else:
                    out = run_spmd_sequence(
                        [stmt], seq_plan, arrays, faults=faults,
                        max_retries=max_retries, max_restarts=max_restarts,
                        backend=backend, procs=procs, pool=pool,
                        transport=transport,
                        semiring=self.config.semiring,
                    )
                arrays.update(out.arrays)
        finally:
            if supervisor is not None and supervisor.notes:
                notes.extend(supervisor.notes)
            self.last_run_notes = notes
            if pool is not None and owned_pool:
                pool.close()
        return arrays


def synthesize(
    source: "str | Program",
    config: Optional[SynthesisConfig] = None,
    *,
    cache: Optional["PlanCache"] = None,
    autotune: "bool | AutotuneOptions | None" = None,
) -> SynthesisResult:
    """Run the full Fig.-5 pipeline on a program or its source text.

    With a ``cache`` (:class:`repro.runtime.plan_cache.PlanCache`), the
    result is memoized under a content-addressed key of the canonical
    program text, the configuration fingerprint, and the package
    version; a hit skips every search stage and returns a private copy.
    Either way a ``"Plan cache"`` stage report records the outcome.

    ``autotune`` opts into the empirical tuning stage
    (:mod:`repro.autotune`): ``True`` for defaults or an
    :class:`~repro.autotune.stage.AutotuneOptions` (measurement
    protocol, :class:`~repro.autotune.db.TuningDB`, budget).  The stage
    measures the analytical searches' top candidates on this machine,
    applies the winners to the result, and appends an ``"Autotuning"``
    stage report; it composes with ``cache`` -- a plan-cache hit skips
    synthesis, a TuningDB hit additionally skips all measurement.
    """
    config = config or SynthesisConfig()
    from repro.semiring import get_semiring

    get_semiring(config.semiring)  # fail fast on unknown algebra names
    program = (
        parse_program(source) if isinstance(source, str) else source
    )
    result = _synthesize_cached(program, config, cache)
    if autotune:
        from repro.autotune.stage import AutotuneOptions, run_autotune

        options = (
            autotune
            if isinstance(autotune, AutotuneOptions)
            else AutotuneOptions()
        )
        run_autotune(result, config, options)
    return result


def _synthesize_cached(
    program: Program,
    config: SynthesisConfig,
    cache: Optional["PlanCache"],
) -> SynthesisResult:
    """The pipeline behind the plan cache (untuned)."""
    if cache is None:
        return _synthesize_pipeline(program, config)

    from repro.runtime.plan_cache import plan_key

    key = plan_key(program, config)
    cached = cache.get(key)
    if cached is not None:
        result, tier = cached
        result.reports.append(
            StageReport(
                "Plan cache",
                {"hit": tier, "key": key[:16], "stats": cache.stats()},
            )
        )
        return result
    result = _synthesize_pipeline(program, config)
    # store before appending the miss report: cached copies carry only
    # the pipeline's own reports, and each hit appends its own entry
    cache.put(key, result)
    result.reports.append(
        StageReport(
            "Plan cache",
            {"hit": "miss (synthesized and stored)", "key": key[:16]},
        )
    )
    return result


def _synthesize_pipeline(
    program: Program, config: SynthesisConfig
) -> SynthesisResult:
    """The uncached six-stage pipeline on a parsed program."""
    bindings = config.bindings
    tracker = (
        config.budget.start() if config.budget is not None else None
    )
    reports: List[StageReport] = []

    # -- stage 1: algebraic transformations -------------------------------
    direct_ops = sum(
        statement_op_count(s, bindings) for s in program.statements
    )
    statements = optimize_program(
        program,
        bindings,
        factorize=config.factorize,
        sparse_aware=config.sparse_aware,
        budget=tracker,
    )
    optimized_ops = sequence_op_count(statements, bindings)
    from repro.opmin.schedule import schedule_statements

    scheduled = schedule_statements(statements, bindings)
    statements = scheduled.statements
    stage1 = StageReport(
        "Algebraic transformations",
        {
            "input statements": len(program.statements),
            "formula sequence length": len(statements),
            "direct operation count": direct_ops,
            "optimized operation count": optimized_ops,
            "operation reduction": (
                f"{direct_ops / optimized_ops:,.1f}x"
                if optimized_ops
                else "1x"
            ),
            "peak live memory (scheduled)": (
                f"{scheduled.baseline_peak:,} -> {scheduled.peak_live:,}"
                if scheduled.peak_live < scheduled.baseline_peak
                else f"{scheduled.peak_live:,}"
            ),
        },
    )
    if config.sparse_aware:
        stage1.details["sparse-aware operation count"] = sequence_op_count(
            statements, bindings, sparse_aware=True
        )
        stage1.notes.append(
            "operation minimization used declared fills (sparse_aware)"
        )
    reports.append(stage1)

    # -- stage 2: memory minimization --------------------------------------
    forest = build_forest(statements)
    # roots of non-final trees are shared temporaries: their storage
    # counts toward the temporary-memory objective
    fusion_results = [
        minimize_memory(
            root,
            bindings,
            include_output=(k < len(forest) - 1),
            budget=tracker,
        )
        for k, root in enumerate(forest)
    ]
    fused_memory = sum(r.total_memory for r in fusion_results)
    unfused_memory = sum(
        0 if node.is_leaf else node.array_size(bindings)
        for root in forest
        for node in root.subtree()
        if node is not root
    )
    capacity = config.machine.level(config.capacity_level).capacity
    mem_report = StageReport(
        "Memory minimization",
        {
            "computation trees": len(forest),
            "unfused temporary memory": unfused_memory,
            "fused temporary memory": fused_memory,
            f"{config.capacity_level} capacity": capacity,
            "fits": str(fused_memory <= capacity),
        },
    )
    reports.append(mem_report)

    # -- stage 3: space-time transformation -------------------------------
    blocks: List[Block] = []
    if fused_memory <= capacity:
        for result in fusion_results:
            blocks.append(build_fused(result))
        reports.append(
            StageReport(
                "Space-time transformation",
                {"invoked": "no (memory minimization sufficed)"},
            )
        )
    else:
        st_report = StageReport("Space-time transformation", {"invoked": "yes"})
        remaining = capacity
        for root, result in zip(forest, fusion_results):
            if result.total_memory <= remaining // max(1, len(forest)):
                blocks.append(build_fused(result))
                continue
            try:
                frontier = tradeoff_search(
                    root, bindings, memory_limit=capacity, budget=tracker
                )
                solution = min(
                    (s for s in frontier if s.memory <= capacity),
                    key=lambda s: s.ops,
                    default=None,
                )
                if solution is None:
                    raise ValueError(
                        f"no space-time trade-off fits {root.array.name} "
                        f"into {capacity} elements"
                    )
                tiled = search_tile_sizes(
                    solution,
                    memory_limit=capacity,
                    bindings=bindings,
                    budget=tracker,
                )
            except BudgetExceeded as exc:
                tracker.degrade(
                    "spacetime",
                    exc,
                    "fused structure without space-time rewriting",
                )
                blocks.append(build_fused(result))
                st_report.details[f"{root.array.name}: degraded"] = "true"
                continue
            blocks.append(tiled.structure)
            st_report.details[f"{root.array.name}: pareto points"] = len(
                frontier
            )
            st_report.details[f"{root.array.name}: block size"] = (
                tiled.block_size
            )
            st_report.details[f"{root.array.name}: memory"] = tiled.memory
            st_report.details[f"{root.array.name}: ops"] = tiled.ops
        reports.append(st_report)

    structure: Block = tuple(n for blk in blocks for n in blk)
    structure_memory = total_memory(structure, bindings)
    structure_ops = loop_op_count(structure, bindings)

    # -- stage 4: data locality --------------------------------------------
    locality_tiles: Dict[str, int] = {}
    pre_locality_structure: Optional[Block] = None
    locality_table: List[Dict[str, object]] = []
    if config.optimize_cache:
        loc_report = StageReport(
            "Data locality optimization",
            {"cache capacity": config.machine.cache.capacity},
        )
        if config.optimize_order:
            from repro.locality.permute import optimize_loop_order

            perm = optimize_loop_order(
                structure, config.machine.cache.capacity, bindings
            )
            structure = perm.structure
            loc_report.details["loop-order modeled misses"] = (
                f"{perm.baseline_cost:,} -> {perm.cost:,}"
            )
        indices = tileable_indices(structure)
        indices = sorted(
            indices, key=lambda i: -i.extent(bindings)
        )[: config.locality_max_indices]
        pre_locality_structure = structure
        loc = optimize_locality(
            structure,
            config.machine.cache.capacity,
            bindings,
            indices=indices,
            budget=tracker,
        )
        locality_tiles = {i.name: b for i, b in loc.tile_sizes.items()}
        # keep the table head for the empirical autotuner (modeled-cost
        # ascending; bounded so the result stays cheap to pickle)
        from repro.locality.tile_search import top_candidates

        locality_table = [
            {"tiles": dict(row["tiles"]), "cost": row["cost"]}
            for row in top_candidates(loc.table, 32)
        ]
        structure = loc.structure
        loc_report.details.update(
            {
                "baseline modeled misses": loc.baseline_cost,
                "optimized modeled misses": loc.cost,
                "tile sizes": locality_tiles or "none needed",
                "candidates evaluated": loc.evaluated,
            }
        )
        reports.append(loc_report)
    else:
        reports.append(
            StageReport("Data locality optimization", {"invoked": "no"})
        )

    # -- stage 5: data distribution ----------------------------------------
    partition_plans: Dict[str, PartitionPlan] = {}
    grid = config.grid
    grid_note = None
    grid_table: List[Tuple[Tuple[int, ...], float]] = []
    if grid is None and config.processors is not None:
        # let the synthesis system pick the logical view: choose the
        # shape minimizing the whole-sequence (or first plannable
        # statement's) distribution cost
        from repro.parallel.gridsearch import choose_grid
        from repro.parallel.program_plan import inline_sequence

        try:
            tree = expression_to_ptree(inline_sequence(statements))
        except (ValueError, TypeError):
            tree = None
            for stmt in statements:
                try:
                    tree = expression_to_ptree(stmt.expr)
                    break
                except TypeError:
                    continue
        if tree is not None:
            choice = choose_grid(
                tree, config.processors, config.comm, bindings,
                budget=tracker,
            )
            grid = choice.grid
            grid_table = [
                (tuple(shape), float(cost)) for shape, cost in choice.table
            ]
            grid_note = (
                f"chose grid {grid} among "
                f"{len(choice.table)} shapes for {config.processors} "
                "processors"
            )
    if grid is not None:
        from repro.parallel.program_plan import plan_sequence

        part_report = StageReport(
            "Data distribution and partitioning",
            {"grid": str(grid), "processors": grid.size},
        )
        if grid_note:
            part_report.notes.append(grid_note)
        seq_plan = plan_sequence(
            statements, grid, config.comm, bindings, budget=tracker
        )
        from repro.expr.ast import Add

        partition_plans = dict(seq_plan.plans)
        planned = {name for name, _ in seq_plan.plans}
        for stmt in statements:
            if stmt.result.name not in planned and isinstance(stmt.expr, Add):
                part_report.notes.append(
                    f"{stmt.result.name}: multi-term combine kept data-local"
                )
        if len(seq_plan.plans) == 1 and len(statements) > 1:
            part_report.notes.append(
                "whole operator tree planned in one Section-7 DP run"
            )
        part_report.details["total modeled cost"] = seq_plan.total_cost
        reports.append(part_report)
    else:
        reports.append(
            StageReport(
                "Data distribution and partitioning",
                {"invoked": "no (sequential target)"},
            )
        )

    # -- sparsity dispatch (statements with declared-sparse operands) ------
    execution_plan = None
    sparsity_estimates: Dict[str, "SparsityEstimate"] = {}
    from repro.sparse.estimate import (
        has_sparse_operands,
        sequence_sparsity_estimates,
    )

    if has_sparse_operands(statements):
        sparsity_estimates = sequence_sparsity_estimates(
            statements, bindings
        )
        sp_report = StageReport(
            "Sparsity dispatch",
            {
                "sparse-aware minimization": str(config.sparse_aware),
            },
        )
        for name, est in sparsity_estimates.items():
            sp_report.details[f"{name}: est ops dense -> sparse"] = (
                f"{est.dense_ops:,} -> {est.sparse_ops:,} "
                f"({est.op_reduction:,.1f}x)"
            )
            sp_report.details[f"{name}: est memory words"] = (
                f"{est.dense_memory:,} -> {est.sparse_memory:,}"
            )
        if config.sparse_execution:
            from repro.codegen.dispatch import plan_execution

            execution_plan = plan_execution(statements, bindings, budget=tracker)
            sp_report.details["sparse-dispatched statements"] = len(
                execution_plan.sparse_statements
            )
            sp_report.details["loop-IR statements"] = len(
                execution_plan.dense_statements
            )
        else:
            sp_report.details["execution dispatch"] = (
                "off (sparse_execution=False); loop-IR path only"
            )
        reports.append(sp_report)

    # -- stage 6: code generation --------------------------------------------
    src = generate_source(structure, bindings)
    codegen_report = StageReport(
        "Code generation",
        {
            "operation count": structure_ops,
            "temporary memory (elements)": structure_memory,
            "peak memory (elements)": peak_memory(structure, bindings),
            "generated source lines": src.count("\n"),
        },
    )
    # kernel compilation: lower every statement once, at synthesis time,
    # so warm plan-cache hits carry fully planned execution kernels
    from repro.kernels import compile_kernel_plan

    if config.codegen not in ("auto", "native", "gemm", "einsum"):
        raise ValueError(
            f"unknown codegen mode {config.codegen!r} "
            "(use 'auto', 'native', 'gemm', or 'einsum')"
        )
    if config.kernel_threads is not None and config.kernel_threads < 1:
        raise ValueError(
            f"kernel_threads must be >= 1, got {config.kernel_threads}"
        )
    codegen_mode = "gemm" if config.codegen == "auto" else config.codegen
    initial_notes: List[str] = []
    engine = None
    if codegen_mode == "native":
        from repro.kernels import default_engine

        engine = default_engine()
        if not engine.available():
            note = (
                "native codegen requested but "
                f"{engine.unavailable_reason()}; using the gemm lowering"
            )
            codegen_report.notes.append(note)
            initial_notes.append(note)
            codegen_mode = "gemm"
            engine = None

    kernel_plan = None
    native_artifacts: List[str] = []
    kernel_threads = config.kernel_threads or 1
    try:
        kernel_plan = compile_kernel_plan(
            statements, bindings, mode=codegen_mode,
            fuse=config.fuse_statements,
            semiring=config.semiring,
        )
    except (OverflowError, ValueError) as exc:
        codegen_report.notes.append(
            f"kernel plan not compiled ({exc}); execution falls back to "
            "per-call planning"
        )
    if kernel_plan is not None:
        codegen_report.details["codegen mode"] = codegen_mode
        if config.semiring != "plus_times":
            codegen_report.details["semiring"] = config.semiring
        codegen_report.details["kernel terms (gemm/copy/einsum)"] = (
            f"{kernel_plan.gemm_terms}/{kernel_plan.copy_terms}/"
            f"{kernel_plan.einsum_terms}"
        )
        if engine is not None:
            # precompile every distinct nest now, so the first execution
            # (and every warm process sharing the artifact store) never
            # pays a compiler fork at run time
            before = engine.stats()
            compiled: Dict[str, bool] = {}
            for sp in kernel_plan.statements:
                for term in sp.terms:
                    if term.native is None:
                        continue
                    akey = engine.key(
                        term.native, np.float64, threads=kernel_threads
                    )
                    if akey not in compiled:
                        fn = engine.function(
                            term.native, np.float64,
                            threads=kernel_threads,
                        )
                        compiled[akey] = fn is not None
            for group in kernel_plan.fused_groups:
                akey = engine.key(
                    group.spec, np.float64, threads=kernel_threads
                )
                if akey not in compiled:
                    fn = engine.function(
                        group.spec, np.float64, threads=kernel_threads
                    )
                    compiled[akey] = fn is not None
            native_artifacts = [k for k, ok in compiled.items() if ok]
            after = engine.stats()
            codegen_report.details["native backend"] = engine.backend
            if kernel_threads > 1:
                codegen_report.details["kernel threads"] = kernel_threads
                codegen_report.details["parallel strategy"] = (
                    engine.parallel_strategy(kernel_threads)
                )
                par_note = engine.parallel_note(kernel_threads)
                if par_note is not None:
                    codegen_report.notes.append(par_note)
                    initial_notes.append(par_note)
            if kernel_plan.fused_groups:
                codegen_report.details["fused groups (statements)"] = (
                    f"{len(kernel_plan.fused_groups)}"
                    f" ({kernel_plan.fused_statements})"
                )
            codegen_report.details["native nests (compiled/lowered)"] = (
                f"{len(native_artifacts)}/{len(compiled)}"
            )
            codegen_report.details[
                "artifact store (compiles/warm loads)"
            ] = (
                f"{after['compile_invocations'] - before['compile_invocations']}"
                f"/{after['store_loads'] - before['store_loads']}"
            )
            failed = len(compiled) - len(native_artifacts)
            if failed:
                codegen_report.notes.append(
                    f"{failed} nests failed to compile and run on their "
                    "embedded gemm/einsum fallback"
                )
    reports.append(codegen_report)

    if tracker is not None:
        _annotate_degradations(reports, tracker)

    return SynthesisResult(
        program,
        config,
        statements,
        structure,
        src,
        reports,
        partition_plans,
        locality_tiles,
        execution_plan,
        sparsity_estimates,
        tracker,
        kernel_plan=kernel_plan,
        pre_locality_structure=pre_locality_structure,
        locality_table=locality_table,
        grid_table=grid_table,
        codegen_mode=codegen_mode,
        native_artifacts=native_artifacts,
        last_run_notes=initial_notes,
    )


#: budget stage key -> pipeline stage report title
_STAGE_TITLES = {
    "opmin": "Algebraic transformations",
    "fusion": "Memory minimization",
    "spacetime": "Space-time transformation",
    "locality": "Data locality optimization",
    "distribution": "Data distribution and partitioning",
}


def _annotate_degradations(
    reports: List[StageReport], tracker: BudgetTracker
) -> None:
    """Record budget fallbacks on the stage reports that took them."""
    by_title = {r.name: r for r in reports}
    for deg in tracker.degradations:
        report = by_title.get(_STAGE_TITLES.get(deg.stage, ""))
        if report is None:
            continue
        report.details["degraded"] = "true"
        report.notes.append(
            f"budget exhausted ({deg.reason}); fell back to {deg.fallback}"
        )
