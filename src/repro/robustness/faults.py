"""Deterministic fault-injection schedules for the SPMD runtime.

A :class:`FaultSchedule` describes *which* faults fire and *when*, in
terms of deterministic event ordinals -- the ordinal of a cross-rank
message on the communicator, or a superstep number of the lock-step
driver -- so every injected failure (and its recovery) is exactly
reproducible:

* **message drops**: ``drop_messages`` lists cross-rank message
  ordinals whose first ``drop_attempts`` delivery attempts are dropped
  on the floor.  The communicator's bounded retry-with-backoff loop
  recovers drops up to its retry limit; beyond it, a
  :class:`~repro.robustness.errors.CommFailure` is raised.
* **rank crashes**: ``crash_supersteps`` lists driver supersteps at
  whose start the whole statement execution fails with
  :class:`~repro.robustness.errors.InjectedFault`; the driver restarts
  the statement from its inputs (SPMD statement runs are effectively
  transactions -- inputs are never mutated), each scheduled crash
  firing at most once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.robustness.errors import SpecError


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic schedule of injected faults (see module doc)."""

    #: cross-rank message ordinals (0-based) scheduled to drop
    drop_messages: Tuple[int, ...] = ()
    #: delivery attempts that fail per scheduled drop (1 = first try
    #: drops, the immediate retry succeeds)
    drop_attempts: int = 1
    #: driver supersteps (0-based) at whose start a rank crash fires
    crash_supersteps: Tuple[int, ...] = ()

    def should_drop(self, ordinal: int, attempt: int) -> bool:
        """Whether delivery ``attempt`` (0-based) of cross-rank message
        ``ordinal`` is dropped."""
        return ordinal in self.drop_messages and attempt < self.drop_attempts

    @property
    def any_faults(self) -> bool:
        return bool(self.drop_messages or self.crash_supersteps)


def parse_fault_spec(spec: str) -> FaultSchedule:
    """Parse the CLI's ``--inject-fault`` syntax.

    ``drop:0,3`` drops cross-rank messages 0 and 3 once each;
    ``drop:0x2`` drops message 0 on two consecutive attempts;
    ``crash:2`` crashes the run at superstep 2.  Multiple clauses join
    with ``;``: ``drop:1;crash:0``.
    """
    drops: list = []
    attempts = 1
    crashes: list = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, arg = clause.partition(":")
        try:
            if kind == "drop":
                if "x" in arg:
                    arg, _, reps = arg.partition("x")
                    attempts = max(attempts, int(reps))
                drops.extend(int(p) for p in arg.split(",") if p)
            elif kind == "crash":
                crashes.extend(int(p) for p in arg.split(",") if p)
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except ValueError as exc:
            raise SpecError(
                f"bad fault spec {spec!r}: {exc} "
                "(use e.g. drop:0,3 / drop:0x2 / crash:2)",
                stage="fault-injection",
            ) from None
    return FaultSchedule(
        drop_messages=tuple(drops),
        drop_attempts=attempts,
        crash_supersteps=tuple(crashes),
    )
