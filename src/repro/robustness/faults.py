"""Deterministic fault-injection schedules for the SPMD runtime.

A :class:`FaultSchedule` describes *which* faults fire and *when*, in
terms of deterministic event ordinals -- the ordinal of a cross-rank
message on the communicator, or a superstep number of the lock-step
driver -- so every injected failure (and its recovery) is exactly
reproducible:

* **message drops**: ``drop_messages`` lists cross-rank message
  ordinals whose first ``drop_attempts`` delivery attempts are dropped
  on the floor.  The communicator's bounded retry-with-backoff loop
  recovers drops up to its retry limit; beyond it, a
  :class:`~repro.robustness.errors.CommFailure` is raised.
* **rank crashes**: ``crash_supersteps`` lists driver supersteps at
  whose start the whole statement execution fails with
  :class:`~repro.robustness.errors.InjectedFault`; the driver restarts
  the statement from its inputs (SPMD statement runs are effectively
  transactions -- inputs are never mutated), each scheduled crash
  firing at most once.

:class:`FaultSchedule` models *logical* faults the BSP drivers already
recover from in-process.  :class:`ChaosSchedule` models **process-level
chaos** against the multi-process backend (:mod:`repro.runtime.
process`) -- the failure modes a real cluster exhibits and a logical
schedule cannot express:

* ``kill_worker``: the worker process is killed (``SIGKILL``) just
  before the scheduled command is posted -- the router observes a
  broken pipe / EOF mid-protocol;
* ``hang_worker``: the worker stays alive but stops responding (its
  main loop sleeps forever) -- only a recv watchdog can tell this
  apart from a slow superstep;
* ``drop_reply``: the worker executes the command but its reply never
  arrives -- the request/reply protocol is silently desynchronized.

Ordinals count ``go`` commands *posted by the pool* (monotonic per
:class:`ChaosState`, surviving pool respawns), so each scheduled chaos
event fires exactly once per state no matter how often a supervisor
restarts the statement.  Recovery is owned by
:class:`repro.runtime.supervisor.PoolSupervisor`: the watchdog turns
hangs into structured :class:`~repro.robustness.errors.CommFailure`\\ s,
and the supervisor re-runs the statement on a fresh pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.robustness.errors import SpecError


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic schedule of injected faults (see module doc)."""

    #: cross-rank message ordinals (0-based) scheduled to drop
    drop_messages: Tuple[int, ...] = ()
    #: delivery attempts that fail per scheduled drop (1 = first try
    #: drops, the immediate retry succeeds)
    drop_attempts: int = 1
    #: driver supersteps (0-based) at whose start a rank crash fires
    crash_supersteps: Tuple[int, ...] = ()

    def should_drop(self, ordinal: int, attempt: int) -> bool:
        """Whether delivery ``attempt`` (0-based) of cross-rank message
        ``ordinal`` is dropped."""
        return ordinal in self.drop_messages and attempt < self.drop_attempts

    @property
    def any_faults(self) -> bool:
        return bool(self.drop_messages or self.crash_supersteps)


def parse_fault_spec(spec: str) -> FaultSchedule:
    """Parse the CLI's ``--inject-fault`` syntax.

    ``drop:0,3`` drops cross-rank messages 0 and 3 once each;
    ``drop:0x2`` drops message 0 on two consecutive attempts;
    ``crash:2`` crashes the run at superstep 2.  Multiple clauses join
    with ``;``: ``drop:1;crash:0``.
    """
    drops: list = []
    attempts = 1
    crashes: list = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, arg = clause.partition(":")
        try:
            if kind == "drop":
                if "x" in arg:
                    arg, _, reps = arg.partition("x")
                    attempts = max(attempts, int(reps))
                drops.extend(int(p) for p in arg.split(",") if p)
            elif kind == "crash":
                crashes.extend(int(p) for p in arg.split(",") if p)
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except ValueError as exc:
            raise SpecError(
                f"bad fault spec {spec!r}: {exc} "
                "(use e.g. drop:0,3 / drop:0x2 / crash:2)",
                stage="fault-injection",
            ) from None
    return FaultSchedule(
        drop_messages=tuple(drops),
        drop_attempts=attempts,
        crash_supersteps=tuple(crashes),
    )


#: the chaos actions a schedule may fire, in precedence order (an
#: ordinal scheduled for several actions fires the most severe one)
CHAOS_ACTIONS = ("kill_worker", "hang_worker", "drop_reply")


@dataclass(frozen=True)
class ChaosSchedule:
    """Deterministic schedule of process-level chaos (see module doc).

    Each field lists pool ``go``-command ordinals (0-based) at which
    the named action fires.  Ordinals are pool-lifetime-monotonic via
    :class:`ChaosState`, so an action fires at most once even when the
    statement is retried on a respawned pool.
    """

    kill_worker: Tuple[int, ...] = ()
    hang_worker: Tuple[int, ...] = ()
    drop_reply: Tuple[int, ...] = ()

    def action_at(self, ordinal: int) -> Optional[str]:
        """The action scheduled at ``ordinal``, or ``None``."""
        for action in CHAOS_ACTIONS:
            if ordinal in getattr(self, action):
                return action
        return None

    @property
    def any_chaos(self) -> bool:
        return bool(self.kill_worker or self.hang_worker or self.drop_reply)

    def max_ordinal(self) -> int:
        """The largest scheduled ordinal (-1 when empty); a retry loop
        needs at least this many clean supersteps to drain the
        schedule."""
        ordinals = self.kill_worker + self.hang_worker + self.drop_reply
        return max(ordinals) if ordinals else -1


class ChaosState:
    """Mutable firing state of one :class:`ChaosSchedule`.

    The ordinal counter lives *here*, not on the pool: a supervisor
    attaches one state to every pool it (re)spawns, so a kill scheduled
    at ordinal 3 fires once, the retry on the fresh pool continues from
    ordinal 4, and the schedule eventually drains.  ``fired`` logs
    ``(ordinal, action)`` pairs for notes and assertions.
    """

    def __init__(self, schedule: ChaosSchedule) -> None:
        self.schedule = schedule
        self.ordinal = 0
        self.fired: List[Tuple[int, str]] = []

    def next_action(self) -> Optional[str]:
        """Advance one ``go`` ordinal; the action firing now, if any."""
        ordinal = self.ordinal
        self.ordinal += 1
        action = self.schedule.action_at(ordinal)
        if action is not None:
            self.fired.append((ordinal, action))
        return action

    @property
    def exhausted(self) -> bool:
        """True once every scheduled ordinal has passed."""
        return self.ordinal > self.schedule.max_ordinal()


def parse_chaos_spec(spec: str) -> ChaosSchedule:
    """Parse the ``--inject-chaos`` / wire ``chaos`` syntax.

    ``kill_worker@3`` kills a worker at ``go`` ordinal 3;
    ``hang_worker@0,5`` hangs workers at ordinals 0 and 5;
    ``drop_reply@2`` swallows the reply to ordinal 2.  Clauses join
    with ``;``: ``kill_worker@0;drop_reply@4``.
    """
    fields = {action: [] for action in CHAOS_ACTIONS}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        action, sep, arg = clause.partition("@")
        if action not in fields or not sep:
            raise SpecError(
                f"bad chaos spec {spec!r}: unknown clause {clause!r} "
                f"(use e.g. kill_worker@3 / hang_worker@0,5 / "
                f"drop_reply@2, joined with ';')",
                stage="chaos-injection",
            )
        try:
            ordinals = [int(p) for p in arg.split(",") if p]
        except ValueError as exc:
            raise SpecError(
                f"bad chaos spec {spec!r}: {exc}",
                stage="chaos-injection",
            ) from None
        if not ordinals or any(o < 0 for o in ordinals):
            raise SpecError(
                f"bad chaos spec {spec!r}: {action} needs non-negative "
                f"ordinals",
                stage="chaos-injection",
            )
        fields[action].extend(ordinals)
    return ChaosSchedule(
        kill_worker=tuple(fields["kill_worker"]),
        hang_worker=tuple(fields["hang_worker"]),
        drop_reply=tuple(fields["drop_reply"]),
    )
