"""Input validation: arrays are checked against declarations *before*
execution, so every failure names the offending tensor.

Two entry points cover the two representations a computation exists in:

* :func:`validate_env` -- statement/expression level: each
  :class:`~repro.expr.ast.TensorRef`'s backing array must exist, have
  the declared extents, and carry a numeric dtype (used by
  :mod:`repro.engine.executor`, :mod:`repro.sparse.executor`, and
  :mod:`repro.parallel.simulate`);
* :func:`validate_block_inputs` -- loop-IR level: expected input shapes
  are inferred from the subscripts of the structure itself, including
  split ``(tile, intra)`` subscript pairs (used by
  :mod:`repro.codegen.interp`).

``check_finite=True`` additionally rejects NaN/Inf values.  It is *off*
by default: NaN propagation through an execution is legitimate (and
tested) behaviour -- finite-checking is an opt-in precondition.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.expr.ast import TensorRef
from repro.expr.indices import Bindings
from repro.robustness.errors import ShapeError, SpecError


def _value_shape(value: object) -> Tuple[int, ...]:
    shape = getattr(value, "shape", None)
    if shape is None or callable(shape):
        shape = np.asarray(value).shape
    return tuple(int(s) for s in shape)


def _value_dense(value: object) -> Optional[np.ndarray]:
    """The flat numeric view used for dtype/finiteness checks; ``None``
    for sparse containers (their ``values`` array is checked instead)."""
    values = getattr(value, "values", None)
    if values is not None and isinstance(values, np.ndarray):
        return values
    try:
        return np.asarray(value)
    except Exception:  # exotic containers: shape check only
        return None


def _check_value(
    name: str,
    value: object,
    want: Tuple[int, ...],
    stage: Optional[str],
    check_finite: bool,
) -> None:
    got = _value_shape(value)
    if got != want:
        raise ShapeError(
            f"array for tensor {name!r} has shape {got}, "
            f"declared shape is {want}",
            stage=stage,
            tensor=name,
        )
    flat = _value_dense(value)
    if flat is None:
        return
    if flat.dtype.kind not in "fiub":
        raise ShapeError(
            f"array for tensor {name!r} has non-numeric dtype "
            f"{flat.dtype}",
            stage=stage,
            tensor=name,
        )
    if check_finite and flat.dtype.kind == "f" and not np.isfinite(flat).all():
        raise ShapeError(
            f"array for tensor {name!r} contains non-finite values "
            "(NaN/Inf)",
            stage=stage,
            tensor=name,
        )


def validate_env(
    arrays: Mapping[str, object],
    refs: Iterable[TensorRef],
    bindings: Optional[Bindings] = None,
    stage: Optional[str] = None,
    check_finite: bool = False,
    require_present: bool = True,
) -> None:
    """Check every referenced tensor's backing array against its
    declaration.

    Function tensors are skipped (they materialize on demand).  With
    ``require_present=False`` missing arrays are ignored (callers that
    allocate lazily); otherwise a missing array is a
    :class:`SpecError`.
    """
    seen: set = set()
    for ref in refs:
        name = ref.tensor.name
        if ref.tensor.is_function or name in seen:
            continue
        seen.add(name)
        if name not in arrays:
            if require_present:
                raise SpecError(
                    f"no array provided for tensor {name!r}",
                    stage=stage,
                    tensor=name,
                )
            continue
        want = tuple(i.extent(bindings) for i in ref.indices)
        _check_value(name, arrays[name], want, stage, check_finite)


def expected_input_shapes(
    block, bindings: Optional[Bindings] = None
) -> Dict[str, Tuple[int, ...]]:
    """Expected shape of every array *read or written without being
    allocated* by a loop structure, inferred from its subscripts.

    A split ``(tile, intra)`` subscript pair addresses the original
    index's full extent (the interpreter reconstructs the global
    coordinate), all other subscripts multiply out their variables'
    extents.
    """
    from repro.codegen.loops import Alloc, Assign, FuncEval, walk

    def sub_extent(sub) -> int:
        out = 1
        for var in sub:
            out *= var.extent(bindings)
        if (
            len(sub) == 2
            and sub[0].role == "tile"
            and sub[1].role == "intra"
            and sub[0].index == sub[1].index
        ):
            out = sub[0].index.extent(bindings)
        return out

    allocated = set()
    shapes: Dict[str, Tuple[int, ...]] = {}
    for node in walk(block):
        if isinstance(node, Alloc):
            allocated.add(node.array)
        elif isinstance(node, Assign):
            for term in (node.target, *node.terms):
                if isinstance(term, FuncEval):
                    continue
                if term.array in allocated or term.array in shapes:
                    continue
                shapes[term.array] = tuple(
                    sub_extent(sub) for sub in term.subs
                )
    return shapes


def validate_block_inputs(
    block,
    inputs: Mapping[str, object],
    bindings: Optional[Bindings] = None,
    stage: Optional[str] = None,
    check_finite: bool = False,
) -> None:
    """Check the inputs of a loop structure before interpretation.

    Every array the structure reads without allocating must be provided
    with the inferred shape; extra entries in ``inputs`` are ignored.
    """
    for name, want in expected_input_shapes(block, bindings).items():
        if name not in inputs:
            raise SpecError(
                f"array {name!r} neither input nor allocated",
                stage=stage,
                tensor=name,
            )
        _check_value(name, inputs[name], want, stage, check_finite)
