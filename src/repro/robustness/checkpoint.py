"""Checkpoint/restart for long-running executions.

A checkpoint is a single pickle file written *atomically* (temp file +
``os.replace``), so an interruption mid-write never leaves a corrupt
restart point -- the previous checkpoint survives.  The interpreter
(:func:`repro.codegen.interp.execute`) and the out-of-core simulator
(:func:`repro.engine.outofcore.simulate_out_of_core`) snapshot after
every completed top-level *unit* (a top-level statement or one
iteration of a top-level loop) and resume bit-identically: arrays,
counters, and any extra execution state (e.g. the buffer-pool LRU
contents) are restored exactly as they were.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from repro.robustness.errors import CheckpointError

#: File name used inside a checkpoint directory.
CHECKPOINT_NAME = "checkpoint.pkl"


def checkpoint_path(path: str) -> str:
    """Resolve a checkpoint location: a directory maps to the canonical
    file inside it, anything else is used verbatim."""
    if os.path.isdir(path):
        return os.path.join(path, CHECKPOINT_NAME)
    root, ext = os.path.splitext(path)
    if not ext:  # treat extension-less paths as (future) directories
        os.makedirs(path, exist_ok=True)
        return os.path.join(path, CHECKPOINT_NAME)
    return path


def save_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` at ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot write checkpoint {path!r}: {exc}"
        ) from exc


def load_checkpoint(path: str) -> Optional[Dict[str, Any]]:
    """Load a checkpoint; ``None`` when none exists yet."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path!r}: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "unit" not in payload:
        raise CheckpointError(
            f"checkpoint {path!r} is missing execution context"
        )
    return payload


def clear_checkpoint(path: str) -> None:
    """Remove a checkpoint after a successful run (restart from it
    would silently skip the whole computation)."""
    try:
        os.unlink(path)
    except OSError:
        pass


def counters_state(counters) -> Dict[str, int]:
    """Snapshot of a :class:`~repro.engine.counters.Counters`."""
    return {
        f.name: getattr(counters, f.name)
        for f in dataclasses.fields(counters)
    }


def restore_counters(counters, state: Dict[str, int]) -> None:
    """Restore a snapshot into the caller's counters object."""
    for name, value in state.items():
        setattr(counters, name, value)
