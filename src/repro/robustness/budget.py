"""Search budgets with graceful degradation.

The pipeline chains several worst-case-exponential searches (the opmin
subset DP is ``O(3^n)``, fusion/space-time/distribution are pareto DPs).
A :class:`Budget` bounds them jointly: a wall-clock deadline and/or a
cap on *search nodes* (DP states, candidate evaluations) shared by every
stage.  Each search calls :meth:`BudgetTracker.tick` per node; when the
budget is exhausted the tick raises
:class:`~repro.robustness.errors.BudgetExceeded` and the stage degrades
to its documented greedy fallback:

=====================  ==========================================
stage                  fallback
=====================  ==========================================
operation min.         left-to-right factorization
fusion (memory min.)   no-fusion baseline (full temporaries)
space-time trade-off   fused-but-untiled structure
data locality          best tiling found so far (or untiled)
data distribution      canonical block distribution, 1-D grid
empirical autotuning   the analytical choice, unmeasured
=====================  ==========================================

Every degradation is recorded on the tracker so the pipeline's stage
reports can say ``degraded: true`` with the reason; with
``Budget.strict=True`` degradation is refused and ``BudgetExceeded``
propagates instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.robustness.errors import BudgetExceeded


@dataclass(frozen=True)
class Budget:
    """Declarative search budget (see module docstring).

    ``deadline_ms`` bounds wall-clock time from :meth:`start`;
    ``max_nodes`` bounds the total number of search nodes across all
    stages.  ``None`` means unbounded.  ``strict=True`` turns graceful
    degradation into a hard :class:`BudgetExceeded` failure.
    """

    deadline_ms: Optional[float] = None
    max_nodes: Optional[int] = None
    strict: bool = False

    def start(self) -> "BudgetTracker":
        """Begin tracking: the deadline clock starts now."""
        return BudgetTracker(self)

    def narrowed(
        self,
        deadline_ms: Optional[float] = None,
        max_nodes: Optional[int] = None,
    ) -> "Budget":
        """A budget no looser than this one.

        Each limit becomes the minimum of the existing bound and the
        given one (``None`` keeps the existing bound); ``strict`` is
        preserved.  The serving layer's per-tenant admission control
        uses this to clamp a tenant's per-request budget to whatever
        allowance the tenant has left -- a tenant at zero allowance
        gets ``max_nodes=0``, so every stage degrades gracefully
        instead of failing.
        """

        def tighter(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Budget(
            deadline_ms=tighter(self.deadline_ms, deadline_ms),
            max_nodes=tighter(self.max_nodes, max_nodes),
            strict=self.strict,
        )


@dataclass
class Degradation:
    """Record of one stage falling back to its greedy plan."""

    stage: str
    reason: str
    fallback: str


class BudgetTracker:
    """Mutable consumption state of one :class:`Budget`.

    Shared across every stage of one ``synthesize`` run; once exhausted,
    every further :meth:`tick` raises immediately so later stages skip
    straight to their fallbacks.
    """

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.nodes = 0
        self.degradations: List[Degradation] = []
        self._deadline = (
            time.monotonic() + budget.deadline_ms / 1000.0
            if budget.deadline_ms is not None
            else None
        )
        self._exhausted_reason: Optional[str] = None

    def tick(self, n: int = 1, stage: Optional[str] = None) -> None:
        """Charge ``n`` search nodes; raise when the budget is gone."""
        if self._exhausted_reason is not None:
            raise BudgetExceeded(self._exhausted_reason, stage=stage)
        self.nodes += n
        if (
            self.budget.max_nodes is not None
            and self.nodes > self.budget.max_nodes
        ):
            self._exhausted_reason = (
                f"node budget exhausted ({self.nodes:,} > "
                f"{self.budget.max_nodes:,} search nodes)"
            )
        elif self._deadline is not None and time.monotonic() > self._deadline:
            self._exhausted_reason = (
                f"deadline exhausted ({self.budget.deadline_ms:g} ms)"
            )
        if self._exhausted_reason is not None:
            raise BudgetExceeded(self._exhausted_reason, stage=stage)

    def exhausted(self) -> bool:
        return self._exhausted_reason is not None

    def remaining_ms(self) -> Optional[float]:
        """Wall-clock milliseconds left before the deadline (clamped at
        0), or ``None`` when the budget has no deadline.  Anytime loops
        (the autotuner's measurement schedule) use this to size the
        work they still attempt."""
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - time.monotonic()) * 1000.0)

    def degrade(self, stage: str, exc: BudgetExceeded, fallback: str) -> None:
        """Record that ``stage`` fell back to ``fallback``.

        In strict mode the budget failure is re-raised instead -- the
        caller must be prepared for ``BudgetExceeded`` to escape.
        """
        if self.budget.strict:
            raise exc
        self.degradations.append(Degradation(stage, exc.message, fallback))

    def degraded_stages(self) -> List[str]:
        return [d.stage for d in self.degradations]


def as_tracker(
    budget: Union[Budget, BudgetTracker, None],
) -> Optional[BudgetTracker]:
    """Normalize a budget argument: stage entry points accept either a
    declarative :class:`Budget` (a private tracker is started) or a
    shared :class:`BudgetTracker` (the pipeline's), or ``None``."""
    if budget is None:
        return None
    if isinstance(budget, Budget):
        return budget.start()
    return budget
