"""The error taxonomy of the synthesis system.

Every failure the pipeline can produce is classified into one of the
:class:`ReproError` subclasses below and carries *structured context*
(the pipeline stage, the offending statement, the offending tensor) so
that diagnostics name the artifact that broke instead of raising from
numpy internals.

Back-compatibility: :class:`SpecError` and :class:`PlanError` also
subclass :class:`KeyError`, and :class:`ShapeError` subclasses
:class:`ValueError` -- existing ``except KeyError`` / ``except
ValueError`` call sites (and tests matching their messages) keep
working, but the message now renders as a one-line diagnostic instead of
``KeyError``'s quoted repr.

Exit-code convention (used by :mod:`repro.cli`):

====================  ====  =========================================
class                 code  meaning
====================  ====  =========================================
``SpecError``            2  bad program/spec (missing tensor, parse)
``ShapeError``           4  input array disagrees with declarations
``PlanError``            4  plan applied to the wrong tree
``BudgetExceeded``       3  search budget exhausted (strict mode)
``CommFailure``          4  message loss beyond the retry limit
``CheckpointError``      4  unreadable/corrupt checkpoint
``InjectedFault``        4  deliberately injected fault fired
``DeadlineExceeded``     4  per-request deadline expired (HTTP 504)
====================  ====  =========================================
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class: a failure with structured context.

    Parameters beyond ``message`` are keyword-only annotations that the
    raising site fills in when known; :meth:`diagnostic` renders them as
    a single ``Class[key=value ...]: message`` line.
    """

    #: process exit code :mod:`repro.cli` maps this class to
    exit_code = 4

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        statement: Optional[str] = None,
        tensor: Optional[str] = None,
        **context: object,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.statement = statement
        self.tensor = tensor
        self.context = context

    def diagnostic(self) -> str:
        """One-line diagnostic: ``Class[stage=.. tensor=..]: message``."""
        parts = []
        for key in ("stage", "statement", "tensor"):
            value = getattr(self, key)
            if value is not None:
                parts.append(f"{key}={value}")
        for key, value in self.context.items():
            parts.append(f"{key}={value}")
        where = f"[{' '.join(parts)}]" if parts else ""
        return f"{type(self).__name__}{where}: {self.message}"

    def __str__(self) -> str:  # resolves before KeyError.__str__ in MRO
        return self.diagnostic()


class SpecError(ReproError, KeyError):
    """The program/spec and the provided environment disagree: a
    referenced tensor has no array, a function tensor has no registered
    implementation, or the source does not parse."""

    exit_code = 2


class ShapeError(ReproError, ValueError):
    """An input array's shape, dtype, or values contradict the
    program's declarations (wrong extents, non-numeric dtype, or
    non-finite values under ``check_finite``)."""

    exit_code = 4


class PlanError(ReproError, KeyError):
    """A plan (partition plan, fusion decisions) was applied to a tree
    it does not cover."""

    exit_code = 4


class BudgetExceeded(ReproError):
    """A search budget ran out.  Under graceful degradation the raising
    stage catches this and falls back to its documented greedy plan;
    in strict mode it propagates to the caller."""

    exit_code = 3


class CommFailure(ReproError):
    """A message could not be delivered within the retry limit."""

    exit_code = 4


class DeadlineExceeded(ReproError):
    """A per-request deadline expired before the work completed.

    Raised by the serving layer when a request's ``deadline_ms`` runs
    out between synthesis and execution, or when the recv watchdog
    terminates a hung worker past the deadline.  Mapped to HTTP 504 by
    :mod:`repro.server.app` -- a structured timeout, never a raw
    traceback."""

    exit_code = 4


class CheckpointError(ReproError):
    """A checkpoint file is missing context, unreadable, or corrupt."""

    exit_code = 4


class InjectedFault(ReproError):
    """A deliberately injected fault (crash schedule, interrupt-after)
    fired.  Raised only when fault injection is configured."""

    exit_code = 4
