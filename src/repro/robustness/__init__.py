"""Robustness layer: error taxonomy, search budgets with graceful
degradation, input validation, checkpoint/restart, and fault injection.

See ``docs/architecture.md`` ("The robustness layer") for how these
pieces thread through the pipeline.
"""

from repro.robustness.budget import (
    Budget,
    BudgetTracker,
    Degradation,
    as_tracker,
)
from repro.robustness.checkpoint import (
    checkpoint_path,
    clear_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.errors import (
    BudgetExceeded,
    CheckpointError,
    CommFailure,
    DeadlineExceeded,
    InjectedFault,
    PlanError,
    ReproError,
    ShapeError,
    SpecError,
)
from repro.robustness.faults import (
    ChaosSchedule,
    ChaosState,
    FaultSchedule,
    parse_chaos_spec,
    parse_fault_spec,
)
from repro.robustness.validation import (
    expected_input_shapes,
    validate_block_inputs,
    validate_env,
)

__all__ = [
    "Budget",
    "BudgetTracker",
    "BudgetExceeded",
    "ChaosSchedule",
    "ChaosState",
    "CheckpointError",
    "CommFailure",
    "DeadlineExceeded",
    "Degradation",
    "FaultSchedule",
    "InjectedFault",
    "PlanError",
    "ReproError",
    "ShapeError",
    "SpecError",
    "as_tracker",
    "checkpoint_path",
    "clear_checkpoint",
    "expected_input_shapes",
    "load_checkpoint",
    "parse_chaos_spec",
    "parse_fault_spec",
    "save_checkpoint",
    "validate_block_inputs",
    "validate_env",
]
