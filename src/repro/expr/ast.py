"""Expression AST for sum-of-products tensor expressions.

The language of the synthesis system is a sequence of *statements*, each
assigning a sum-of-products expression to a result tensor::

    S(a,b,i,j) = sum(c,d,e,f,k,l) A(a,c,i,k)*B(b,e,f,l)*C(d,f,j,k)*D(c,d,e,l);

The AST node kinds are:

* :class:`TensorRef` -- a use of a declared tensor with concrete index
  names (possibly different from the declared signature, but of matching
  ranges);
* :class:`Mul` -- an n-ary product of expressions;
* :class:`Sum` -- a summation (contraction) over a set of indices;
* :class:`Add` -- a sum of terms with scalar coefficients.

All nodes are immutable.  Free-index computation is structural:
``free(Sum) = free(body) - sum_indices``; the terms of an :class:`Add`
must agree on their free indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.expr.indices import Bindings, Index
from repro.expr.tensor import Tensor


class Expr:
    """Base class for expression nodes."""

    @property
    def free(self) -> FrozenSet[Index]:
        """Free (un-summed) indices of this expression."""
        raise NotImplementedError

    def refs(self) -> Iterator["TensorRef"]:
        """Iterate over all tensor references in the expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError


@dataclass(frozen=True)
class TensorRef(Expr):
    """Use of a tensor with a concrete index tuple.

    The reference indices must match the declared signature dimension by
    dimension in *range* (not in name): ``A(a,c,i,k)`` may be referenced
    as ``A(c,a,k,i)`` only if the swapped positions have equal ranges.
    """

    tensor: Tensor
    indices: Tuple[Index, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != self.tensor.order:
            raise ValueError(
                f"{self.tensor.name} is {self.tensor.order}-dimensional but "
                f"referenced with {len(self.indices)} indices"
            )
        for pos, (use, decl) in enumerate(zip(self.indices, self.tensor.indices)):
            if use.range != decl.range:
                raise ValueError(
                    f"dimension {pos} of {self.tensor.name} has range "
                    f"{decl.range.name} but index {use.name} has range "
                    f"{use.range.name}"
                )

    @property
    def free(self) -> FrozenSet[Index]:
        return frozenset(self.indices)

    def refs(self) -> Iterator["TensorRef"]:
        yield self

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def __str__(self) -> str:
        return f"{self.tensor.name}({','.join(i.name for i in self.indices)})"


@dataclass(frozen=True)
class Mul(Expr):
    """Product of two or more expressions."""

    factors: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.factors) < 2:
            raise ValueError("Mul needs at least two factors")

    @cached_property
    def _free(self) -> FrozenSet[Index]:
        out: FrozenSet[Index] = frozenset()
        for f in self.factors:
            out |= f.free
        return out

    @property
    def free(self) -> FrozenSet[Index]:
        return self._free

    def refs(self) -> Iterator[TensorRef]:
        for f in self.factors:
            yield from f.refs()

    def children(self) -> Tuple[Expr, ...]:
        return self.factors

    def __str__(self) -> str:
        return " * ".join(
            f"({f})" if isinstance(f, (Add, Sum)) else str(f) for f in self.factors
        )


@dataclass(frozen=True)
class Sum(Expr):
    """Summation (contraction) over one or more indices.

    ``indices`` is kept as a sorted tuple for deterministic iteration and
    hashing; semantically it is a set.
    """

    indices: Tuple[Index, ...]
    body: Expr

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("Sum needs at least one summation index")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("duplicate summation indices")
        missing = set(self.indices) - self.body.free
        if missing:
            names = ", ".join(sorted(i.name for i in missing))
            raise ValueError(f"summation indices not free in body: {names}")
        # normalize ordering for structural equality
        object.__setattr__(self, "indices", tuple(sorted(self.indices)))

    @property
    def free(self) -> FrozenSet[Index]:
        return self.body.free - frozenset(self.indices)

    def refs(self) -> Iterator[TensorRef]:
        yield from self.body.refs()

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def __str__(self) -> str:
        names = ",".join(i.name for i in self.indices)
        return f"sum({names}) {self.body}"


@dataclass(frozen=True)
class Add(Expr):
    """Sum of terms with scalar coefficients.

    All terms must have identical free-index sets (they contribute to the
    same result array).
    """

    terms: Tuple[Tuple[float, Expr], ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 1:
            raise ValueError("Add needs at least one term")
        base = self.terms[0][1].free
        for _, term in self.terms[1:]:
            if term.free != base:
                got = sorted(i.name for i in term.free)
                want = sorted(i.name for i in base)
                raise ValueError(
                    f"Add terms disagree on free indices: {got} vs {want}"
                )

    @property
    def free(self) -> FrozenSet[Index]:
        return self.terms[0][1].free

    def refs(self) -> Iterator[TensorRef]:
        for _, term in self.terms:
            yield from term.refs()

    def children(self) -> Tuple[Expr, ...]:
        return tuple(t for _, t in self.terms)

    def __str__(self) -> str:
        parts = []
        for coef, term in self.terms:
            if coef == 1.0:
                parts.append(str(term))
            elif coef == -1.0:
                parts.append(f"-({term})")
            else:
                parts.append(f"{coef}*({term})")
        return " + ".join(parts)


@dataclass(frozen=True)
class Statement:
    """One assignment ``result(indices) = expr``.

    The expression's free indices must equal the result's index set.
    ``accumulate`` marks ``+=`` semantics (the result is added into).
    """

    result: Tensor
    expr: Expr
    accumulate: bool = False

    def __post_init__(self) -> None:
        lhs = frozenset(self.result.indices)
        if self.expr.free != lhs:
            got = sorted(i.name for i in self.expr.free)
            want = sorted(i.name for i in lhs)
            raise ValueError(
                f"free indices of RHS {got} do not match LHS "
                f"{self.result.name}{want}"
            )

    def __str__(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.result} {op} {self.expr};"


@dataclass(frozen=True)
class Program:
    """A parsed program: declarations plus a statement sequence."""

    ranges: Tuple["IndexRangeDecl", ...] = ()
    statements: Tuple[Statement, ...] = ()

    def tensors(self) -> Tuple[Tensor, ...]:
        """All tensors appearing in the program (inputs then results)."""
        seen = {}
        for stmt in self.statements:
            for ref in stmt.expr.refs():
                seen.setdefault(ref.tensor.name, ref.tensor)
        for stmt in self.statements:
            seen.setdefault(stmt.result.name, stmt.result)
        return tuple(seen.values())

    def inputs(self) -> Tuple[Tensor, ...]:
        """Array tensors that are read but never produced by a statement.

        Function tensors are excluded; see :meth:`functions`.
        """
        produced = {s.result.name for s in self.statements}
        out = []
        seen = set()
        for stmt in self.statements:
            for ref in stmt.expr.refs():
                name = ref.tensor.name
                if (
                    name not in produced
                    and name not in seen
                    and not ref.tensor.is_function
                ):
                    seen.add(name)
                    out.append(ref.tensor)
        return tuple(out)

    def functions(self) -> Tuple[Tensor, ...]:
        """Primitive function evaluations referenced by the program."""
        out = []
        seen = set()
        for stmt in self.statements:
            for ref in stmt.expr.refs():
                if ref.tensor.is_function and ref.tensor.name not in seen:
                    seen.add(ref.tensor.name)
                    out.append(ref.tensor)
        return tuple(out)


# imported late to avoid a cycle in type hints of Program
from repro.expr.indices import IndexRange as IndexRangeDecl  # noqa: E402
