"""Index ranges and loop indices.

The paper's computations are multi-dimensional summations whose loop
indices each run over a named *range*.  In the quantum-chemistry setting
there are two important ranges: occupied orbitals (``O``, 30-100) and
unoccupied/virtual orbitals (``V``, 1000-3000).  An :class:`IndexRange`
carries a name and a default extent; an :class:`Index` is a loop variable
bound to a range.

Extents are resolved through *bindings* -- a mapping from range name to a
concrete integer -- so the same program can be analyzed at paper scale
(``{"V": 3000, "O": 100}``) and executed at test scale
(``{"V": 8, "O": 4}``) without rebuilding the AST.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

#: Mapping from range name to concrete extent, e.g. ``{"V": 3000, "O": 100}``.
Bindings = Mapping[str, int]


@dataclass(frozen=True, order=True)
class IndexRange:
    """A named iteration range with a default extent.

    Parameters
    ----------
    name:
        Range identifier, e.g. ``"V"`` or ``"O"``.
    default:
        Extent used when no binding overrides it.
    """

    name: str
    default: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("IndexRange name must be non-empty")
        if self.default < 0:
            raise ValueError(
                f"IndexRange {self.name!r} default extent must be >= 0, "
                f"got {self.default}"
            )

    def extent(self, bindings: Optional[Bindings] = None) -> int:
        """Resolve the concrete extent of this range.

        ``bindings`` takes precedence over the declared default.  A range
        with no default and no binding is an error: analysis needs a
        number.
        """
        if bindings is not None and self.name in bindings:
            value = bindings[self.name]
            if value <= 0:
                raise ValueError(
                    f"binding for range {self.name!r} must be positive, got {value}"
                )
            return value
        if self.default <= 0:
            raise ValueError(
                f"range {self.name!r} has no default extent and no binding"
            )
        return self.default

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}={self.default}"


@dataclass(frozen=True, order=True)
class Index:
    """A loop index bound to an :class:`IndexRange`.

    Two indices are interchangeable loop variables iff they compare equal;
    equality includes the range so that ``a:V`` and ``a:O`` are distinct
    (the parser prevents such shadowing anyway).
    """

    name: str
    range: IndexRange

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Index name must be non-empty")

    def extent(self, bindings: Optional[Bindings] = None) -> int:
        """Concrete trip count of loops over this index."""
        return self.range.extent(bindings)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def extent(index: Index, bindings: Optional[Bindings] = None) -> int:
    """Functional alias for :meth:`Index.extent`."""
    return index.extent(bindings)


def total_extent(indices: Iterable[Index], bindings: Optional[Bindings] = None) -> int:
    """Product of the extents of ``indices``.

    This is the iteration-space volume of a loop nest over the given
    indices, and equally the element count of an array dimensioned by
    them.  The empty product is 1 (a scalar).
    """
    result = 1
    for idx in indices:
        result *= idx.extent(bindings)
    return result


def make_indices(names: Iterable[str], rng: IndexRange) -> Dict[str, Index]:
    """Create a name->Index mapping for several indices over one range."""
    return {name: Index(name, rng) for name in names}


def einsum_letters(indices: Sequence[Index]) -> Dict[Index, str]:
    """Assign each index a distinct ``numpy.einsum`` subscript letter.

    The shared label table of every einsum-emitting backend
    (:mod:`repro.engine.executor`, :mod:`repro.codegen.npgen`).  einsum
    subscripts only have ``a-zA-Z`` available, so a statement touching
    more than 52 distinct indices cannot be expressed; that limit is
    checked here so all backends fail with the same explicit
    :class:`ValueError` instead of a raw ``IndexError`` from the letter
    lookup.
    """
    letters = string.ascii_letters
    if len(indices) > len(letters):
        raise ValueError(
            f"too many distinct indices for einsum labels "
            f"({len(indices)} > {len(letters)} available subscripts)"
        )
    return {idx: letters[k] for k, idx in enumerate(indices)}
