"""Canonicalization of tensor expressions.

Operation minimization creates many candidate intermediates; recognizing
that two intermediates are the *same* computation (up to commutativity of
``*``, renaming of summation indices, and declared tensor symmetries) is
what enables common-subexpression elimination across terms.  This module
computes a hashable :func:`canonical_key` with those invariances:

* products are flattened and factor order is ignored;
* nested summations over independent scopes are merged and the summation
  index *names* are ignored (they are re-labelled canonically);
* dimension positions inside a declared symmetric group are sorted (for
  antisymmetric groups the permutation sign is folded into the term
  coefficient);
* sums of terms are sorted and equal terms are merged by coefficient.

Canonical summation-index labelling uses signature refinement (a
Weisfeiler-Lehman-style iteration on the term's index-occurrence
hypergraph) followed by exhaustive permutation of any remaining tie
groups, choosing the lexicographically least key.  Tie groups are tiny in
practice; enumeration is capped and falls back to a deterministic order
beyond the cap (which can only cause a *missed* CSE, never a wrong one,
because the fallback order is itself a function of the refined
signatures and the deterministic input order).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.expr.ast import Add, Expr, Mul, Statement, Sum, TensorRef
from repro.expr.indices import Index

#: Permutation-enumeration cap for breaking label ties exactly.
_TIE_ENUM_CAP = 720

#: Term-count cap when distributing Add under Mul/Sum for key purposes.
_DISTRIBUTE_CAP = 256


def free_indices(expr: Expr) -> FrozenSet[Index]:
    """Free indices of ``expr`` (alias for :attr:`Expr.free`)."""
    return expr.free


def rename_indices(expr: Expr, mapping: Mapping[Index, Index]) -> Expr:
    """Rebuild ``expr`` with indices substituted according to ``mapping``.

    Indices not present in the mapping are left untouched.  The mapping
    must be injective on the indices it touches within any one scope;
    range compatibility is enforced by the AST constructors.
    """
    def sub(i: Index) -> Index:
        return mapping.get(i, i)

    if isinstance(expr, TensorRef):
        return TensorRef(expr.tensor, tuple(sub(i) for i in expr.indices))
    if isinstance(expr, Mul):
        return Mul(tuple(rename_indices(f, mapping) for f in expr.factors))
    if isinstance(expr, Sum):
        return Sum(
            tuple(sub(i) for i in expr.indices),
            rename_indices(expr.body, mapping),
        )
    if isinstance(expr, Add):
        return Add(
            tuple((c, rename_indices(t, mapping)) for c, t in expr.terms)
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# flattening to sum-of-products normal form
# ---------------------------------------------------------------------------

#: A flat term: (coefficient, summation indices, tensor references).
FlatTerm = Tuple[float, FrozenSet[Index], Tuple[TensorRef, ...]]


def flatten(expr: Expr) -> List[FlatTerm]:
    """Distribute and flatten ``expr`` into sum-of-products terms.

    Raises :class:`OverflowError` if distribution would exceed the cap;
    callers catch it and fall back to structural keys.
    """
    terms = _flatten(expr)
    if len(terms) > _DISTRIBUTE_CAP:
        raise OverflowError("distribution cap exceeded")
    return terms


def _flatten(expr: Expr) -> List[FlatTerm]:
    if isinstance(expr, TensorRef):
        return [(1.0, frozenset(), (expr,))]
    if isinstance(expr, Add):
        out: List[FlatTerm] = []
        for coef, term in expr.terms:
            for c, s, f in _flatten(term):
                out.append((coef * c, s, f))
            if len(out) > _DISTRIBUTE_CAP:
                raise OverflowError("distribution cap exceeded")
        return out
    if isinstance(expr, Sum):
        inner = _flatten(expr.body)
        sum_set = frozenset(expr.indices)
        # sum distributes over addition; scopes merge because summation
        # indices are unique within a term
        return [(c, s | sum_set, f) for c, s, f in inner]
    if isinstance(expr, Mul):
        parts = [_flatten(f) for f in expr.factors]
        out = [(1.0, frozenset(), ())]
        for part in parts:
            nxt: List[FlatTerm] = []
            for c1, s1, f1 in out:
                for c2, s2, f2 in part:
                    if s1 & s2:
                        # identically-named summation indices in different
                        # factors are distinct bound variables; keep the
                        # expression un-distributed rather than conflate them
                        raise OverflowError("bound-variable collision")
                    nxt.append((c1 * c2, s1 | s2, f1 + f2))
            if len(nxt) > _DISTRIBUTE_CAP:
                raise OverflowError("distribution cap exceeded")
            out = nxt
        return out
    raise TypeError(f"unknown expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# canonical keys
# ---------------------------------------------------------------------------

def _position_groups(ref: TensorRef) -> List[List[int]]:
    """Dimension positions of ``ref`` grouped by symmetry; singletons too."""
    grouped = set()
    groups: List[List[int]] = []
    for sym in ref.tensor.symmetries:
        groups.append(list(sym.positions))
        grouped.update(sym.positions)
    for pos in range(len(ref.indices)):
        if pos not in grouped:
            groups.append([pos])
    return groups


def _canonical_positions(ref: TensorRef) -> Dict[int, int]:
    """Map each dimension position to its group-canonical position.

    Positions inside one symmetry group are interchangeable for signature
    purposes; they all map to the smallest position of the group.
    """
    out = {}
    for group in _position_groups(ref):
        rep = min(group)
        for pos in group:
            out[pos] = rep
    return out


def _term_key(
    coef: float,
    sum_indices: FrozenSet[Index],
    refs: Sequence[TensorRef],
) -> Tuple:
    """Canonical key of one flat product term."""
    # --- label indices: free keep their names, summation get refined labels
    labels: Dict[Index, Tuple] = {}
    for ref in refs:
        for idx in ref.indices:
            if idx not in sum_indices:
                labels[idx] = ("F", idx.name)

    sum_list = sorted(sum_indices)
    # initial signature: range name + occurrence multiset
    sigs: Dict[Index, Tuple] = {}
    for idx in sum_list:
        occ = []
        for ref in refs:
            canon = _canonical_positions(ref)
            for pos, used in enumerate(ref.indices):
                if used == idx:
                    occ.append((ref.tensor.name, canon[pos]))
        sigs[idx] = (idx.range.name, tuple(sorted(occ)))

    # two rounds of refinement with neighbour labels
    for _ in range(2):
        new_sigs: Dict[Index, Tuple] = {}
        for idx in sum_list:
            neigh = []
            for ref in refs:
                if idx in ref.indices:
                    row = tuple(
                        sorted(
                            labels[other]
                            if other in labels
                            else ("S",) + sigs[other]
                            for other in ref.indices
                            if other != idx
                        )
                    )
                    neigh.append((ref.tensor.name, row))
            new_sigs[idx] = sigs[idx] + (tuple(sorted(neigh)),)
        sigs = new_sigs

    # group summation indices by signature; enumerate permutations inside
    # tie groups to find the lexicographically least key
    by_sig: Dict[Tuple, List[Index]] = {}
    for idx in sum_list:
        by_sig.setdefault(sigs[idx], []).append(idx)
    ordered_groups = [by_sig[s] for s in sorted(by_sig)]

    combos = 1
    for group in ordered_groups:
        for n in range(2, len(group) + 1):
            combos *= n
    candidates: Iterable[Tuple[Index, ...]]
    if combos <= _TIE_ENUM_CAP:
        per_group = [list(itertools.permutations(g)) for g in ordered_groups]
        candidates = (
            tuple(itertools.chain.from_iterable(choice))
            for choice in itertools.product(*per_group)
        )
    else:  # deterministic fallback: sorted order inside each group
        candidates = (
            tuple(itertools.chain.from_iterable(sorted(g) for g in ordered_groups)),
        )

    best: Optional[Tuple] = None
    for order in candidates:
        trial = dict(labels)
        for rank, idx in enumerate(order):
            trial[idx] = ("S", rank)
        key, sign = _refs_key(refs, trial)
        full = (coef * sign, len(sum_list), key)
        if best is None or full < best:
            best = full
    assert best is not None
    return best


def _refs_key(
    refs: Sequence[TensorRef], labels: Mapping[Index, Tuple]
) -> Tuple[Tuple, float]:
    """Key for a factor multiset under an index labelling, with the sign
    accumulated from sorting antisymmetric groups."""
    sign = 1.0
    factor_keys = []
    for ref in refs:
        slots: List[Tuple] = [labels[i] for i in ref.indices]
        for sym in ref.tensor.symmetries:
            positions = list(sym.positions)
            values = [slots[p] for p in positions]
            order = sorted(range(len(values)), key=lambda k: values[k])
            if sym.antisymmetric:
                sign *= _permutation_sign(order)
            for slot_pos, take in zip(positions, order):
                slots[slot_pos] = values[take]
        factor_keys.append((ref.tensor.name, tuple(slots)))
    return tuple(sorted(factor_keys)), sign


def _permutation_sign(order: Sequence[int]) -> float:
    """Sign of the permutation given as a list of source positions."""
    seen = [False] * len(order)
    sign = 1.0
    for start in range(len(order)):
        if seen[start]:
            continue
        length = 0
        pos = start
        while not seen[pos]:
            seen[pos] = True
            pos = order[pos]
            length += 1
        if length % 2 == 0:
            sign = -sign
    return sign


def _structural_key(expr: Expr) -> Tuple:
    """Fallback key: structural, factor-order-normalized, no renaming."""
    if isinstance(expr, TensorRef):
        return ("ref", expr.tensor.name, tuple(i.name for i in expr.indices))
    if isinstance(expr, Mul):
        return ("mul", tuple(sorted(_structural_key(f) for f in expr.factors)))
    if isinstance(expr, Sum):
        return (
            "sum",
            tuple(sorted(i.name for i in expr.indices)),
            _structural_key(expr.body),
        )
    if isinstance(expr, Add):
        return (
            "add",
            tuple(sorted((c, _structural_key(t)) for c, t in expr.terms)),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def canonical_key(expr: Expr) -> Tuple:
    """Hashable key identifying ``expr`` up to the invariances above.

    Two expressions with equal keys compute the same values (given the
    same inputs); unequal keys may still be mathematically equal in rare
    fallback cases -- safe for CSE.
    """
    try:
        terms = flatten(expr)
    except OverflowError:
        return ("structural", _structural_key(expr))

    term_keys = [_term_key(c, s, f) for c, s, f in terms]
    # merge identical terms by coefficient
    merged: Dict[Tuple, float] = {}
    for key in term_keys:
        coef, rest = key[0], key[1:]
        merged[rest] = merged.get(rest, 0.0) + coef
    final = tuple(
        sorted((rest, coef) for rest, coef in merged.items() if coef != 0.0)
    )
    return ("sop", final)


def statement_key(stmt: Statement) -> Tuple:
    """Canonical key for a whole statement (result signature + expression)."""
    return (
        stmt.result.name,
        tuple(i.name for i in stmt.result.indices),
        stmt.accumulate,
        canonical_key(stmt.expr),
    )
