"""Serialization of programs back to the high-level notation.

``program_to_source`` renders declarations and statements in the input
language so that ``parse_program(program_to_source(p))`` reproduces the
program (up to formatting).  Useful for emitting optimizer *output* as
readable formula sequences (the paper's Fig. 1(a) form), for golden
tests, and for shipping synthesized sequences between tools.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.expr.ast import Add, Expr, Mul, Program, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Tensor


def _expr_to_source(expr: Expr) -> str:
    if isinstance(expr, TensorRef):
        inner = ",".join(i.name for i in expr.indices)
        return f"{expr.tensor.name}({inner})"
    if isinstance(expr, Mul):
        return " * ".join(
            f"({_expr_to_source(f)})"
            if isinstance(f, (Add, Sum))
            else _expr_to_source(f)
            for f in expr.factors
        )
    if isinstance(expr, Sum):
        names = ",".join(i.name for i in expr.indices)
        body = expr.body
        if isinstance(body, Add):
            return f"sum({names}) ({_expr_to_source(body)})"
        return f"sum({names}) {_expr_to_source(body)}"
    if isinstance(expr, Add):
        parts: List[str] = []
        for k, (coef, term) in enumerate(expr.terms):
            text = _expr_to_source(term)
            if isinstance(term, Add):
                text = f"({text})"
            if coef == 1.0:
                parts.append(text if k == 0 else f"+ {text}")
            elif coef == -1.0:
                parts.append(f"- {text}" if k else f"-{text}")
            else:
                mag = abs(coef)
                coef_text = (
                    str(int(mag)) if float(mag).is_integer() else repr(mag)
                )
                sign = "-" if coef < 0 else ("+" if k else "")
                lead = f"{sign} " if k else sign
                parts.append(f"{lead}{coef_text} * {text}")
        return " ".join(parts)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def statement_to_source(stmt: Statement) -> str:
    lhs_inner = ",".join(i.name for i in stmt.result.indices)
    op = "+=" if stmt.accumulate else "="
    return f"{stmt.result.name}({lhs_inner}) {op} {_expr_to_source(stmt.expr)};"


def _tensor_decl(tensor: Tensor) -> str:
    inner = ",".join(i.name for i in tensor.indices)
    if tensor.is_function:
        return f"function {tensor.name}({inner}) cost {tensor.compute_cost};"
    parts = [f"tensor {tensor.name}({inner})"]
    for sym in tensor.symmetries:
        kw = "antisymmetric" if sym.antisymmetric else "symmetric"
        parts.append(f"{kw}({','.join(str(p) for p in sym.positions)})")
    if tensor.sparsity == "sparse":
        parts.append(f"sparse({tensor.fill})")
    return " ".join(parts) + ";"


def program_to_source(
    program: Program, statements: Sequence[Statement] = None
) -> str:
    """Render a whole program (optionally with replacement statements,
    e.g. an optimized formula sequence over the same declarations)."""
    stmts = tuple(statements) if statements is not None else program.statements
    lines: List[str] = []

    ranges: Dict[str, IndexRange] = {}
    indices: Dict[str, Index] = {}
    tensors: Dict[str, Tensor] = {}
    produced: Set[str] = set()
    for stmt in stmts:
        for ref in list(stmt.expr.refs()):
            tensors.setdefault(ref.tensor.name, ref.tensor)
            for idx in ref.indices:
                indices.setdefault(idx.name, idx)
                ranges.setdefault(idx.range.name, idx.range)
        for idx in stmt.result.indices:
            indices.setdefault(idx.name, idx)
            ranges.setdefault(idx.range.name, idx.range)
        produced.add(stmt.result.name)

    for rng in ranges.values():
        lines.append(f"range {rng.name} = {rng.default};")
    by_range: Dict[str, List[str]] = {}
    for idx in indices.values():
        by_range.setdefault(idx.range.name, []).append(idx.name)
    for rng_name, names in by_range.items():
        lines.append(f"index {', '.join(sorted(names))} : {rng_name};")
    for tensor in tensors.values():
        if tensor.name not in produced:
            lines.append(_tensor_decl(tensor))
    # produced tensors are implicitly declared by their statement's LHS,
    # but symmetry/sparsity annotations exist only on the declaration --
    # emit one for any annotated result so the round-trip preserves it
    declared_results: Set[str] = set()
    for stmt in stmts:
        tensor = stmt.result
        if (
            (tensor.symmetries or tensor.sparsity != "dense")
            and tensor.name not in declared_results
        ):
            lines.append(_tensor_decl(tensor))
            declared_results.add(tensor.name)
    for stmt in stmts:
        lines.append(statement_to_source(stmt))
    return "\n".join(lines) + "\n"
