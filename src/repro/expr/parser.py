"""Parser for the high-level tensor-contraction notation.

Grammar (semicolon-terminated declarations and statements)::

    program   := { declaration | statement }
    declaration :=
        "range" NAME "=" INT ";"
      | "index" NAME {"," NAME} ":" NAME ";"
      | "tensor" NAME "(" NAME {"," NAME} ")" {annotation} ";"
      | "function" NAME "(" NAME {"," NAME} ")" "cost" INT ";"
    annotation :=
        "symmetric" "(" INT {"," INT} ")"
      | "antisymmetric" "(" INT {"," INT} ")"
      | "sparse" "(" FLOAT ")"
    statement := NAME "(" NAME {"," NAME} ")" ("=" | "+=") expr ";"
    expr      := ["-"] term { ("+" | "-") term }
    term      := [NUMBER "*"] factor { "*" factor }
    factor    := "sum" "(" NAME {"," NAME} ")" factor
               | NAME "(" NAME {"," NAME} ")"
               | "(" expr ")"

Comments run from ``#`` to end of line.  Result tensors are implicitly
declared from their left-hand side if not declared with ``tensor``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.expr.ast import Add, Expr, Mul, Program, Statement, Sum, TensorRef
from repro.expr.indices import Index, IndexRange
from repro.expr.tensor import Symmetry, Tensor


class ParseError(ValueError):
    """Raised on malformed input, with line/column information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str  # NAME | NUMBER | SYMBOL | EOF
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<symbol>\+=|[()=+\-*,;:])
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            col = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        text = match.group(0)
        col = pos - line_start + 1
        if match.lastgroup == "name":
            tokens.append(_Token("NAME", text, line, col))
        elif match.lastgroup == "number":
            tokens.append(_Token("NUMBER", text, line, col))
        elif match.lastgroup == "symbol":
            tokens.append(_Token("SYMBOL", text, line, col))
        # ws / comment: track newlines only
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, len(source) - line_start + 1))
    return tokens


@dataclass
class _Env:
    """Symbol tables built up while parsing declarations."""

    ranges: Dict[str, IndexRange] = field(default_factory=dict)
    indices: Dict[str, Index] = field(default_factory=dict)
    tensors: Dict[str, Tensor] = field(default_factory=dict)


class _Parser:
    def __init__(self, tokens: List[_Token], env: Optional[_Env] = None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.env = env or _Env()

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.pos]

    def _next(self) -> _Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Optional[_Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(message, tok.line, tok.column)

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise self._error(f"expected {want!r}, got {tok.text or 'end of input'}", tok)
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    # -- symbol lookup ----------------------------------------------------

    def _lookup_index(self, tok: _Token) -> Index:
        try:
            return self.env.indices[tok.text]
        except KeyError:
            raise self._error(f"undeclared index {tok.text!r}", tok) from None

    def _name_list(self) -> List[_Token]:
        names = [self._expect("NAME")]
        while self._accept("SYMBOL", ","):
            names.append(self._expect("NAME"))
        return names

    def _index_list(self) -> Tuple[Index, ...]:
        return tuple(self._lookup_index(t) for t in self._name_list())

    def _maybe_empty_index_list(self) -> Tuple[Index, ...]:
        """Index list that may be empty: scalar results like ``E()``."""
        if self._peek().kind == "SYMBOL" and self._peek().text == ")":
            return ()
        return self._index_list()

    # -- declarations -----------------------------------------------------

    def _parse_range_decl(self) -> None:
        name = self._expect("NAME")
        self._expect("SYMBOL", "=")
        value = self._expect("NUMBER")
        self._expect("SYMBOL", ";")
        if name.text in self.env.ranges:
            raise self._error(f"range {name.text!r} already declared", name)
        try:
            extent = int(value.text)
        except ValueError:
            raise self._error("range extent must be an integer", value) from None
        self.env.ranges[name.text] = IndexRange(name.text, extent)

    def _parse_index_decl(self) -> None:
        names = self._name_list()
        self._expect("SYMBOL", ":")
        rng_tok = self._expect("NAME")
        self._expect("SYMBOL", ";")
        try:
            rng = self.env.ranges[rng_tok.text]
        except KeyError:
            raise self._error(f"undeclared range {rng_tok.text!r}", rng_tok) from None
        for tok in names:
            if tok.text in self.env.indices:
                raise self._error(f"index {tok.text!r} already declared", tok)
            self.env.indices[tok.text] = Index(tok.text, rng)

    def _parse_tensor_decl(self) -> None:
        name = self._expect("NAME")
        self._expect("SYMBOL", "(")
        indices = self._index_list()
        self._expect("SYMBOL", ")")
        symmetries: List[Symmetry] = []
        sparsity, fill = "dense", 1.0
        while True:
            ann = self._accept("NAME")
            if ann is None:
                break
            if ann.text in ("symmetric", "antisymmetric"):
                self._expect("SYMBOL", "(")
                positions = tuple(
                    int(t.text) for t in [self._expect("NUMBER")]
                    + self._more_numbers()
                )
                self._expect("SYMBOL", ")")
                symmetries.append(
                    Symmetry(positions, antisymmetric=ann.text == "antisymmetric")
                )
            elif ann.text == "sparse":
                self._expect("SYMBOL", "(")
                fill = float(self._expect("NUMBER").text)
                self._expect("SYMBOL", ")")
                sparsity = "sparse"
            else:
                raise self._error(f"unknown tensor annotation {ann.text!r}", ann)
        self._expect("SYMBOL", ";")
        if name.text in self.env.tensors:
            raise self._error(f"tensor {name.text!r} already declared", name)
        try:
            self.env.tensors[name.text] = Tensor(
                name.text, indices, tuple(symmetries), sparsity, fill
            )
        except ValueError as exc:
            raise self._error(str(exc), name) from None

    def _parse_function_decl(self) -> None:
        """``function f1(c, e, b, k) cost 1000;`` -- a primitive function
        evaluation (paper Section 3's integral computations)."""
        name = self._expect("NAME")
        self._expect("SYMBOL", "(")
        indices = self._index_list()
        self._expect("SYMBOL", ")")
        self._expect("NAME", "cost")
        cost_tok = self._expect("NUMBER")
        self._expect("SYMBOL", ";")
        if name.text in self.env.tensors:
            raise self._error(f"tensor {name.text!r} already declared", name)
        try:
            self.env.tensors[name.text] = Tensor(
                name.text,
                indices,
                kind="function",
                compute_cost=int(float(cost_tok.text)),
            )
        except ValueError as exc:
            raise self._error(str(exc), name) from None

    def _more_numbers(self) -> List[_Token]:
        out = []
        while self._accept("SYMBOL", ","):
            out.append(self._expect("NUMBER"))
        return out

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        terms: List[Tuple[float, Expr]] = []
        sign = -1.0 if self._accept("SYMBOL", "-") else 1.0
        terms.append(self._parse_term(sign))
        while True:
            if self._accept("SYMBOL", "+"):
                terms.append(self._parse_term(1.0))
            elif self._accept("SYMBOL", "-"):
                terms.append(self._parse_term(-1.0))
            else:
                break
        if len(terms) == 1 and terms[0][0] == 1.0:
            return terms[0][1]
        try:
            return Add(tuple(terms))
        except ValueError as exc:
            raise self._error(str(exc)) from None

    def _parse_term(self, sign: float) -> Tuple[float, Expr]:
        coef = sign
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._next()
            coef *= float(tok.text)
            self._expect("SYMBOL", "*")
        factors = [self._parse_factor()]
        while self._accept("SYMBOL", "*"):
            factors.append(self._parse_factor())
        expr = factors[0] if len(factors) == 1 else Mul(tuple(factors))
        return coef, expr

    def _parse_factor(self) -> Expr:
        tok = self._peek()
        if tok.kind == "SYMBOL" and tok.text == "(":
            self._next()
            inner = self.parse_expr()
            self._expect("SYMBOL", ")")
            return inner
        if tok.kind == "NAME" and tok.text == "sum":
            # the summation binds the entire product that follows, matching
            # the paper's notation: sum(c,k) T2(b,c,j,k) * A(a,c,i,k)
            self._next()
            self._expect("SYMBOL", "(")
            indices = self._index_list()
            self._expect("SYMBOL", ")")
            factors = [self._parse_factor()]
            while self._accept("SYMBOL", "*"):
                factors.append(self._parse_factor())
            body = factors[0] if len(factors) == 1 else Mul(tuple(factors))
            try:
                return Sum(indices, body)
            except ValueError as exc:
                raise self._error(str(exc), tok) from None
        if tok.kind == "NAME":
            self._next()
            self._expect("SYMBOL", "(")
            indices = self._index_list()
            self._expect("SYMBOL", ")")
            tensor = self.env.tensors.get(tok.text)
            if tensor is None:
                raise self._error(f"undeclared tensor {tok.text!r}", tok)
            try:
                return TensorRef(tensor, indices)
            except ValueError as exc:
                raise self._error(str(exc), tok) from None
        raise self._error(f"expected a factor, got {tok.text or 'end of input'}", tok)

    # -- statements / program ---------------------------------------------

    def _parse_statement(self, name: _Token) -> Statement:
        self._expect("SYMBOL", "(")
        lhs_indices = self._maybe_empty_index_list()
        self._expect("SYMBOL", ")")
        op = self._next()
        if op.kind != "SYMBOL" or op.text not in ("=", "+="):
            raise self._error("expected '=' or '+=' in statement", op)
        expr = self.parse_expr()
        self._expect("SYMBOL", ";")
        result = self.env.tensors.get(name.text)
        if result is None:
            result = Tensor(name.text, lhs_indices)
            self.env.tensors[name.text] = result
        elif result.indices != lhs_indices:
            raise self._error(
                f"LHS indices of {name.text!r} do not match its declaration", name
            )
        try:
            return Statement(result, expr, accumulate=op.text == "+=")
        except ValueError as exc:
            raise self._error(str(exc), name) from None

    def parse_program(self) -> Program:
        statements: List[Statement] = []
        while self._peek().kind != "EOF":
            tok = self._next()
            if tok.kind == "NAME" and tok.text == "range":
                self._parse_range_decl()
            elif tok.kind == "NAME" and tok.text == "index":
                self._parse_index_decl()
            elif tok.kind == "NAME" and tok.text == "tensor":
                self._parse_tensor_decl()
            elif tok.kind == "NAME" and tok.text == "function":
                self._parse_function_decl()
            elif tok.kind == "NAME":
                statements.append(self._parse_statement(tok))
            else:
                raise self._error(
                    f"expected a declaration or statement, got {tok.text!r}", tok
                )
        return Program(tuple(self.env.ranges.values()), tuple(statements))


def parse_program(source: str) -> Program:
    """Parse a full program (declarations + statements)."""
    return _Parser(_tokenize(source)).parse_program()


def parse_expression(
    source: str,
    ranges: Dict[str, IndexRange],
    indices: Dict[str, Index],
    tensors: Dict[str, Tensor],
) -> Expr:
    """Parse a single expression against existing symbol tables."""
    env = _Env(dict(ranges), dict(indices), dict(tensors))
    parser = _Parser(_tokenize(source), env)
    expr = parser.parse_expr()
    tok = parser._peek()
    if tok.kind != "EOF":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return expr
