"""Tensor declarations with symmetry and sparsity annotations.

The high-level language declares each input (and output) array together
with its index signature.  The paper notes that declarations also carry
*symmetry* and *sparsity* information "that would be difficult or
impossible to extract out of low-level code"; we model both:

* :class:`Symmetry` records groups of mutually (anti)symmetric dimension
  positions, e.g. the antisymmetrized two-electron integrals
  ``<pq||rs> = -<qp||rs>``.  Canonicalization (see
  :mod:`repro.expr.canonical`) uses symmetry groups to sort index names
  into a normal form so that syntactically different but symmetric-equal
  references hash identically for CSE.
* ``sparsity`` is a free-form tag (``"dense"`` by default) consumed by
  cost models, which scale element counts by an optional fill factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.expr.indices import Bindings, Index, total_extent


@dataclass(frozen=True)
class Symmetry:
    """A group of dimension positions that are mutually (anti)symmetric.

    Parameters
    ----------
    positions:
        Dimension positions (0-based) that may be permuted.
    antisymmetric:
        ``True`` for antisymmetry (odd permutations flip sign).
    """

    positions: Tuple[int, ...]
    antisymmetric: bool = False

    def __post_init__(self) -> None:
        if len(self.positions) < 2:
            raise ValueError("a symmetry group needs at least two positions")
        if len(set(self.positions)) != len(self.positions):
            raise ValueError("symmetry group positions must be distinct")
        if any(p < 0 for p in self.positions):
            raise ValueError("symmetry group positions must be non-negative")


@dataclass(frozen=True)
class Tensor:
    """A declared multi-dimensional array.

    Parameters
    ----------
    name:
        Array identifier.
    indices:
        Declared index signature.  The *declared* indices define the
        dimension ranges; references in expressions may use different
        index names of the same ranges.
    symmetries:
        Optional symmetry groups over dimension positions.
    sparsity:
        ``"dense"`` (default) or a tag such as ``"sparse"``; cost models
        may scale dense element counts by :attr:`fill`.
    fill:
        Fraction of stored elements for non-dense tensors (1.0 for dense).
    kind:
        ``"array"`` for stored arrays, ``"function"`` for primitive
        function evaluations (the paper's integral computations ``f1``,
        ``f2``).  Function tensors are never stored; every reference to an
        element recomputes it at :attr:`compute_cost` arithmetic
        operations.
    compute_cost:
        Operations per element evaluation for ``kind="function"`` (the
        paper's :math:`C_i`, on the order of 1000 for integrals).
    """

    name: str
    indices: Tuple[Index, ...]
    symmetries: Tuple[Symmetry, ...] = field(default=())
    sparsity: str = "dense"
    fill: float = 1.0
    kind: str = "array"
    compute_cost: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Tensor name must be non-empty")
        if self.kind not in ("array", "function"):
            raise ValueError(f"kind must be 'array' or 'function', got {self.kind!r}")
        if self.kind == "function" and self.compute_cost <= 0:
            raise ValueError("function tensors need a positive compute_cost")
        if self.kind == "array" and self.compute_cost != 0:
            raise ValueError("array tensors must have compute_cost 0")
        if not 0.0 < self.fill <= 1.0:
            raise ValueError(f"fill must be in (0, 1], got {self.fill}")
        for group in self.symmetries:
            for pos in group.positions:
                if pos >= len(self.indices):
                    raise ValueError(
                        f"symmetry position {pos} out of bounds for "
                        f"{self.name} with {len(self.indices)} dims"
                    )
            ranges = {self.indices[p].range for p in group.positions}
            if len(ranges) > 1:
                raise ValueError(
                    f"symmetry group {group.positions} of tensor {self.name} "
                    "mixes dimensions of different ranges"
                )

    @property
    def order(self) -> int:
        """Number of dimensions."""
        return len(self.indices)

    def size(self, bindings: Optional[Bindings] = None) -> int:
        """Dense element count under the given range bindings."""
        return total_extent(self.indices, bindings)

    @property
    def is_function(self) -> bool:
        """True for primitive function evaluations (never stored)."""
        return self.kind == "function"

    def stored_size(self, bindings: Optional[Bindings] = None) -> int:
        """Element count actually stored.

        Declared symmetries reduce storage to the distinct elements: a
        symmetric group of k dimensions over extent n stores the
        multiset count C(n+k-1, k); an antisymmetric group stores
        C(n, k) (the strictly-ordered tuples).  Sparsity scales by the
        fill factor.  Function tensors occupy no storage -- their
        elements are recomputed on every reference.
        """
        if self.is_function:
            return 0
        from math import comb

        grouped = set()
        stored = 1
        for sym in self.symmetries:
            k = len(sym.positions)
            n = self.indices[sym.positions[0]].extent(bindings)
            stored *= comb(n, k) if sym.antisymmetric else comb(n + k - 1, k)
            grouped.update(sym.positions)
        for pos, idx in enumerate(self.indices):
            if pos not in grouped:
                stored *= idx.extent(bindings)
        return max(1, int(stored * self.fill))

    def shape(self, bindings: Optional[Bindings] = None) -> Tuple[int, ...]:
        """Concrete dense shape under the given bindings."""
        return tuple(idx.extent(bindings) for idx in self.indices)

    def symmetric_groups(self) -> Sequence[Tuple[int, ...]]:
        """Position groups usable for canonical index sorting."""
        return [g.positions for g in self.symmetries]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ",".join(i.name for i in self.indices)
        return f"{self.name}({dims})"
