"""High-level tensor-contraction expression language (paper Section 4).

This package implements the input layer of the synthesis system: index
ranges, tensor declarations with optional symmetry annotations, the
expression AST (sum-of-products array expressions), a small text parser
for the high-level notation, and canonicalization utilities used for
common-subexpression detection.

The notation accepted by :func:`repro.expr.parser.parse_program` mirrors
the paper's examples, e.g.::

    range V = 3000;
    range O = 100;
    index a, b, c, d, e, f, l2 : V;
    index i, j, k, l : O;
    tensor A(a, c, i, k);
    tensor B(b, e, f, l);
    tensor C(d, f, j, k);
    tensor D(c, d, e, l);
    S(a, b, i, j) = sum(c, d, e, f, k, l) A(a,c,i,k) * B(b,e,f,l)
                                        * C(d,f,j,k) * D(c,d,e,l);
"""

from repro.expr.indices import Index, IndexRange, Bindings, extent, total_extent
from repro.expr.tensor import Tensor, Symmetry
from repro.expr.ast import (
    Expr,
    TensorRef,
    Mul,
    Sum,
    Add,
    Statement,
    Program,
)
from repro.expr.parser import parse_program, parse_expression, ParseError
from repro.expr.canonical import canonical_key, rename_indices, free_indices

__all__ = [
    "Index",
    "IndexRange",
    "Bindings",
    "extent",
    "total_extent",
    "Tensor",
    "Symmetry",
    "Expr",
    "TensorRef",
    "Mul",
    "Sum",
    "Add",
    "Statement",
    "Program",
    "parse_program",
    "parse_expression",
    "ParseError",
    "canonical_key",
    "rename_indices",
    "free_indices",
]
