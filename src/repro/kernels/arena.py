"""Buffer arena: shape/dtype-keyed ndarray reuse.

Executing a formula sequence allocates the same intermediate and output
arrays on every run.  The arena turns those allocations into pool hits:
``take(shape, dtype)`` pops a previously released buffer of the exact
``(shape, dtype)`` key (or allocates one on first demand), ``release``
returns it.  :class:`~repro.kernels.plan.KernelRunner` takes statement
outputs and GEMM scratch from here and releases temporaries at their
last-use statement (liveness comes from the compiled plan), so the
steady state of a repeated execution performs **zero** array
allocations -- asserted by ``tests/test_kernels.py``.

Buffers come back uninitialized (``np.empty`` semantics): every kernel
writes its full output (``out=`` / ``copyto``), never reads one.
A disabled arena (``BufferArena(enabled=False)``) degrades to plain
allocation, which keeps the runner usable where buffer retention is
undesirable.

The arena is **single-threaded by design** (free-list pops and counter
updates are unsynchronized), and that contract is now *enforced*: the
arena binds to the first thread that takes a buffer, and any take or
release from another thread while buffers are outstanding raises a
structured :class:`~repro.robustness.errors.ReproError` instead of
silently corrupting the pool.  When nothing is outstanding the arena
rebinds to the calling thread, so a runner built on one thread and
driven from another (the server's executor threads) keeps working --
what is forbidden is *concurrent* use from inside a parallel region;
nest-level parallelism belongs to the compiled kernels
(:mod:`repro.kernels.native`), which never touch the arena.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.robustness.errors import ReproError

__all__ = ["BufferArena"]


class BufferArena:
    """Exact-key (shape, dtype) free-list pool of ndarrays."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        #: fresh ``np.empty`` calls (pool misses)
        self.allocations = 0
        #: ``take`` calls served from the free list
        self.reuses = 0
        #: buffers currently parked in the free list
        self.pooled = 0
        #: buffers taken and not yet released (leak detector: a runner
        #: that unwinds cleanly leaves this at its pre-run value)
        self.outstanding = 0
        #: ident of the thread the arena is currently bound to
        self._owner: Optional[int] = None

    def _guard(self, op: str) -> None:
        """Enforce the single-threaded contract (see module docstring)."""
        me = threading.get_ident()
        if self._owner is None or self._owner == me:
            self._owner = me
            return
        if self.outstanding == 0:
            # quiescent: safe to hand the whole arena to a new thread
            self._owner = me
            return
        raise ReproError(
            f"BufferArena.{op} from thread {me} while thread "
            f"{self._owner} holds {self.outstanding} outstanding "
            "buffer(s): the arena is single-threaded; drive each "
            "KernelRunner from one thread (nest parallelism lives in "
            "the compiled kernels, not the arena)",
            stage="execution",
            op=op,
            outstanding=self.outstanding,
        )

    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> Tuple[Tuple[int, ...], str]:
        return (tuple(shape), np.dtype(dtype).str)

    def take(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A writable C-contiguous buffer of exactly ``shape``/``dtype``.

        Contents are undefined (like ``np.empty``); callers overwrite.
        """
        self._guard("take")
        self.outstanding += 1
        if self.enabled:
            stack = self._free.get(self._key(shape, dtype))
            if stack:
                self.reuses += 1
                self.pooled -= 1
                return stack.pop()
        self.allocations += 1
        return np.empty(tuple(shape), dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        """Return a buffer to the pool (no-op when disabled).

        Only buffers obtained from :meth:`take` should come back; the
        caller must not touch the array afterwards.
        """
        self._guard("release")
        self.outstanding -= 1
        if not self.enabled:
            return
        base = array if array.base is None else array.base
        if not isinstance(base, np.ndarray) or not base.flags.c_contiguous:
            return  # not something we can safely hand out again
        self._free.setdefault(self._key(base.shape, base.dtype), []).append(
            base
        )
        self.pooled += 1

    def clear(self) -> None:
        """Drop every pooled buffer (frees the memory to the allocator)."""
        self._free.clear()
        self.pooled = 0

    def describe(self) -> str:
        return (
            f"BufferArena({'on' if self.enabled else 'off'}): "
            f"{self.allocations} allocations, {self.reuses} reuses, "
            f"{self.pooled} pooled, {self.outstanding} outstanding"
        )
