"""Buffer arena: shape/dtype-keyed ndarray reuse.

Executing a formula sequence allocates the same intermediate and output
arrays on every run.  The arena turns those allocations into pool hits:
``take(shape, dtype)`` pops a previously released buffer of the exact
``(shape, dtype)`` key (or allocates one on first demand), ``release``
returns it.  :class:`~repro.kernels.plan.KernelRunner` takes statement
outputs and GEMM scratch from here and releases temporaries at their
last-use statement (liveness comes from the compiled plan), so the
steady state of a repeated execution performs **zero** array
allocations -- asserted by ``tests/test_kernels.py``.

Buffers come back uninitialized (``np.empty`` semantics): every kernel
writes its full output (``out=`` / ``copyto``), never reads one.
A disabled arena (``BufferArena(enabled=False)``) degrades to plain
allocation, which keeps the runner usable where buffer retention is
undesirable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Exact-key (shape, dtype) free-list pool of ndarrays."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        #: fresh ``np.empty`` calls (pool misses)
        self.allocations = 0
        #: ``take`` calls served from the free list
        self.reuses = 0
        #: buffers currently parked in the free list
        self.pooled = 0
        #: buffers taken and not yet released (leak detector: a runner
        #: that unwinds cleanly leaves this at its pre-run value)
        self.outstanding = 0

    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> Tuple[Tuple[int, ...], str]:
        return (tuple(shape), np.dtype(dtype).str)

    def take(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A writable C-contiguous buffer of exactly ``shape``/``dtype``.

        Contents are undefined (like ``np.empty``); callers overwrite.
        """
        self.outstanding += 1
        if self.enabled:
            stack = self._free.get(self._key(shape, dtype))
            if stack:
                self.reuses += 1
                self.pooled -= 1
                return stack.pop()
        self.allocations += 1
        return np.empty(tuple(shape), dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        """Return a buffer to the pool (no-op when disabled).

        Only buffers obtained from :meth:`take` should come back; the
        caller must not touch the array afterwards.
        """
        self.outstanding -= 1
        if not self.enabled:
            return
        base = array if array.base is None else array.base
        if not isinstance(base, np.ndarray) or not base.flags.c_contiguous:
            return  # not something we can safely hand out again
        self._free.setdefault(self._key(base.shape, base.dtype), []).append(
            base
        )
        self.pooled += 1

    def clear(self) -> None:
        """Drop every pooled buffer (frees the memory to the allocator)."""
        self._free.clear()
        self.pooled = 0

    def describe(self) -> str:
        return (
            f"BufferArena({'on' if self.enabled else 'off'}): "
            f"{self.allocations} allocations, {self.reuses} reuses, "
            f"{self.pooled} pooled, {self.outstanding} outstanding"
        )
