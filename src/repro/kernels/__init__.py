"""Compiled execution kernels: plans lowered ahead of time.

The interpretation gap this package closes: every other execution path
re-derives *how* to run a contraction on each call (``np.einsum(...,
optimize=True)`` re-plans the contraction path; fresh intermediates are
allocated every execution).  Here each formula-sequence statement is
compiled **once** into a :class:`~repro.kernels.plan.KernelPlan`:

* binary contractions are lowered to axis-permute + reshape +
  ``np.matmul`` (GEMM) with every permutation and axis grouping
  computed at synthesis time (:mod:`repro.kernels.lowering`);
* degenerate terms (repeated indices, 3+ operand products) fall back to
  ``einsum`` through a process-wide contraction-path cache
  (:mod:`repro.kernels.einsum_cache`), so even the fallback stops
  re-planning;
* a :class:`~repro.kernels.arena.BufferArena` recycles intermediate and
  output buffers keyed by shape/dtype, with temporaries released at
  their last-use statement (liveness from the schedule), so repeated
  executions of one sequence are allocation-free in the steady state;
* with ``mode="native"``, each non-copy term additionally carries a
  fused tiled loop-nest spec (:mod:`repro.kernels.native`) compiled to
  machine code -- numba JIT when installed, ``cc``-built shared object
  otherwise -- with compiled blobs kept in a content-addressed
  :class:`~repro.kernels.artifacts.ArtifactStore` so warm processes
  load instead of recompiling; environments with no compiler at all
  degrade per-term to the embedded GEMM/einsum fallback;
* native nests are thread-parallel (``threads=N`` on engine, runner,
  and pipeline config): OpenMP pragmas when the probed compiler
  supports ``-fopenmp``, a portable chunked-outer-loop thread pool
  otherwise, always bit-identical to the sequential nest; and
  ``fuse=True`` merges consecutive statements sharing an output
  iteration space into single jointly-parallel fused-group kernels
  (:class:`~repro.kernels.plan.FusedGroup`).

The plan is a pickle-safe value object, so it rides the content-
addressed plan cache (:mod:`repro.runtime.plan_cache`): warm
``synthesize()`` hits return plans whose path planning is already done.
"""

from repro.kernels.arena import BufferArena
from repro.kernels.artifacts import ArtifactStore, artifact_key
from repro.kernels.einsum_cache import (
    cached_einsum,
    cached_einsum_path,
    einsum_path_cache_stats,
    clear_einsum_path_cache,
)
from repro.kernels.lowering import GemmSpec, exec_gemm, lower_binary_term
from repro.kernels.native import (
    FusedSpec,
    NativeEngine,
    NativeSpec,
    compiler_fingerprint,
    configure_default_engine,
    default_engine,
    engine_stats,
    lower_native_term,
    native_available,
    native_backend,
)
from repro.kernels.plan import (
    FusedGroup,
    KernelPlan,
    KernelRunner,
    StatementPlan,
    TermPlan,
    compile_kernel_plan,
)

__all__ = [
    "ArtifactStore",
    "artifact_key",
    "BufferArena",
    "FusedGroup",
    "FusedSpec",
    "NativeEngine",
    "NativeSpec",
    "compiler_fingerprint",
    "configure_default_engine",
    "default_engine",
    "engine_stats",
    "lower_native_term",
    "native_available",
    "native_backend",
    "cached_einsum",
    "cached_einsum_path",
    "einsum_path_cache_stats",
    "clear_einsum_path_cache",
    "GemmSpec",
    "exec_gemm",
    "lower_binary_term",
    "KernelPlan",
    "KernelRunner",
    "StatementPlan",
    "TermPlan",
    "compile_kernel_plan",
]
