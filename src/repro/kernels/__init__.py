"""Compiled execution kernels: plans lowered ahead of time.

The interpretation gap this package closes: every other execution path
re-derives *how* to run a contraction on each call (``np.einsum(...,
optimize=True)`` re-plans the contraction path; fresh intermediates are
allocated every execution).  Here each formula-sequence statement is
compiled **once** into a :class:`~repro.kernels.plan.KernelPlan`:

* binary contractions are lowered to axis-permute + reshape +
  ``np.matmul`` (GEMM) with every permutation and axis grouping
  computed at synthesis time (:mod:`repro.kernels.lowering`);
* degenerate terms (repeated indices, 3+ operand products) fall back to
  ``einsum`` through a process-wide contraction-path cache
  (:mod:`repro.kernels.einsum_cache`), so even the fallback stops
  re-planning;
* a :class:`~repro.kernels.arena.BufferArena` recycles intermediate and
  output buffers keyed by shape/dtype, with temporaries released at
  their last-use statement (liveness from the schedule), so repeated
  executions of one sequence are allocation-free in the steady state.

The plan is a pickle-safe value object, so it rides the content-
addressed plan cache (:mod:`repro.runtime.plan_cache`): warm
``synthesize()`` hits return plans whose path planning is already done.
"""

from repro.kernels.arena import BufferArena
from repro.kernels.einsum_cache import (
    cached_einsum,
    cached_einsum_path,
    einsum_path_cache_stats,
    clear_einsum_path_cache,
)
from repro.kernels.lowering import GemmSpec, exec_gemm, lower_binary_term
from repro.kernels.plan import (
    KernelPlan,
    KernelRunner,
    StatementPlan,
    TermPlan,
    compile_kernel_plan,
)

__all__ = [
    "BufferArena",
    "cached_einsum",
    "cached_einsum_path",
    "einsum_path_cache_stats",
    "clear_einsum_path_cache",
    "GemmSpec",
    "exec_gemm",
    "lower_binary_term",
    "KernelPlan",
    "KernelRunner",
    "StatementPlan",
    "TermPlan",
    "compile_kernel_plan",
]
