"""Ahead-of-time kernel plans for formula sequences.

:func:`compile_kernel_plan` lowers every statement of a formula
sequence into a :class:`KernelPlan` **once**: each flat term becomes a
:class:`TermPlan` that is either a GEMM lowering
(:mod:`repro.kernels.lowering`), an aligned copy, or a cached-path
einsum fallback, and statement liveness (who reads each produced array
last) is recorded so temporaries can be recycled.  The plan is a pure
value object of names, ints, and floats -- pickle-safe by construction,
which is what lets it ride the content-addressed plan cache
(:mod:`repro.runtime.plan_cache`) inside a
:class:`~repro.pipeline.SynthesisResult`.

:class:`KernelRunner` executes a plan against input arrays.  All
intermediate and output storage comes from a
:class:`~repro.kernels.arena.BufferArena`; temporaries are released at
their last-use statement and statement outputs live in buffers the
runner owns and rewrites, so repeated runs allocate nothing in the
steady state.  Consequently the arrays a ``run()`` returns are **valid
until the next** ``run()`` unless ``copy=True`` detaches them.

Numerics: the GEMM path regroups the contraction sums, so results agree
with the einsum reference to floating-point reassociation tolerance
(``rtol ~1e-12`` on the property suite); the copy and einsum-fallback
paths are bit-for-bit.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.expr.ast import Statement
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, einsum_letters
from repro.kernels.arena import BufferArena
from repro.kernels.einsum_cache import cached_einsum
from repro.kernels.lowering import GemmSpec, exec_gemm_arena, lower_binary_term
from repro.robustness.errors import SpecError
from repro.semiring import get_semiring, require_unit_coef

__all__ = [
    "OperandSpec",
    "TermPlan",
    "StatementPlan",
    "FusedGroup",
    "KernelPlan",
    "KernelRunner",
    "compile_kernel_plan",
]


def _in_spmd_worker() -> bool:
    """Whether this process is an SPMD worker of the process backend.

    Checked lazily through :data:`sys.modules` so importing the kernel
    layer never drags in the multiprocessing runtime.
    """
    mod = sys.modules.get("repro.runtime.process")
    return bool(mod is not None and getattr(mod, "IS_SPMD_WORKER", False))


@dataclass(frozen=True)
class OperandSpec:
    """One term operand: a named array or a function materialization."""

    name: str
    is_function: bool = False
    #: function-tensor grid shape (resolved at compile time); None for arrays
    shape: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TermPlan:
    """One flat term, lowered.

    ``kind`` is ``"gemm"`` (binary contraction through
    :func:`~repro.kernels.lowering.exec_gemm_arena`), ``"copy"`` (an
    aligned single-operand term), or ``"einsum"`` (cached-path
    fallback for degenerate shapes -- repeated indices, 3+ operand
    products, permuting single-operand terms).

    ``native`` (mode ``"native"`` only) additionally carries the term's
    compiled-nest lowering (:class:`~repro.kernels.native.NativeSpec`).
    A runner with a working native engine executes that; without one it
    falls back to ``kind`` -- the plan always embeds its own numpy
    fallback, which is what makes no-compiler environments degrade
    instead of fail.
    """

    coef: float
    operands: Tuple[OperandSpec, ...]
    kind: str
    gemm: Optional[GemmSpec] = None
    spec: Optional[str] = None
    native: Optional["NativeSpec"] = None


@dataclass(frozen=True)
class StatementPlan:
    """One statement: accumulate its terms into the result buffer, then
    release the temporaries whose last reader this statement was."""

    result: str
    accumulate: bool
    out_shape: Tuple[int, ...]
    terms: Tuple[TermPlan, ...]
    release: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FusedGroup:
    """A run of consecutive statements fused into one compiled nest.

    ``statements[start:stop]`` of the owning plan execute as one
    :class:`~repro.kernels.native.FusedSpec` kernel walking the shared
    output space once.  ``members[m] == (stmt_idx, term_idx)`` maps the
    fused spec's member ``m`` back to its term plan (coefficient
    lookup); ``outputs[s]`` names the result array of output slot
    ``s``.  Pure value object -- pickle-safe, rides the plan cache.
    """

    start: int
    stop: int
    spec: "FusedSpec"
    members: Tuple[Tuple[int, int], ...]
    outputs: Tuple[str, ...]


@dataclass(frozen=True)
class KernelPlan:
    """A compiled formula sequence: statements + liveness + lowering stats."""

    statements: Tuple[StatementPlan, ...]
    #: produced arrays never consumed by a later statement (the results
    #: a :class:`KernelRunner` returns); everything else is a temporary
    outputs: Tuple[str, ...]
    gemm_terms: int = 0
    einsum_terms: int = 0
    copy_terms: int = 0
    #: lowering variant this plan was compiled with
    #: ('gemm' | 'einsum' | 'native')
    mode: str = "gemm"
    #: terms carrying a compiled-nest lowering (mode 'native' only)
    native_terms: int = 0
    #: cross-statement fusion groups (mode 'native' with fuse=True)
    fused_groups: Tuple[FusedGroup, ...] = ()
    #: statements covered by a fusion group
    fused_statements: int = 0
    #: scalar algebra every term folds with (see :mod:`repro.semiring`);
    #: non-default algebras carry no GEMM terms by construction
    semiring: str = "plus_times"

    def describe(self) -> str:
        text = (
            f"KernelPlan({len(self.statements)} statements: "
            f"{self.gemm_terms} gemm, {self.copy_terms} copy, "
            f"{self.einsum_terms} einsum-fallback terms"
        )
        if self.semiring != "plus_times":
            text += f", semiring {self.semiring}"
        if self.native_terms:
            text += f", {self.native_terms} native nests"
        if self.fused_groups:
            text += (
                f", {len(self.fused_groups)} fused groups covering "
                f"{self.fused_statements} statements"
            )
        return text + f"; outputs {', '.join(self.outputs)})"


def _statement_fusable(sp: StatementPlan) -> bool:
    """Whether a statement can join a fused group at all: plain
    assignment (no ``+=`` seeding), at least one output loop to share,
    and every term carrying a compiled-nest lowering."""
    return (
        len(sp.out_shape) >= 1
        and not sp.accumulate
        and bool(sp.terms)
        and all(t.native is not None for t in sp.terms)
    )


def _fuse_groups(stmt_plans: Sequence[StatementPlan]) -> Tuple[FusedGroup, ...]:
    """The cross-statement fusion pass: maximal runs of consecutive
    statements sharing one output iteration space.

    Legality, checked per candidate statement:

    * same ``out_shape`` as the group (the shared loops) and distinct
      result names (one output slot per member);
    * no statement reads its *own* result (re-assignment semantics need
      the old value, which fusion zeroes away);
    * no statement writes a name an **earlier** group member read (that
      member wants the pre-group value; fused execution would hand it
      the new one);
    * a member may read an earlier member's output only when the
      operand walks the output space *identically* (axis map
      ``(0..nout-1)``): the producer completes that element in the same
      fused iteration before the consumer reads it.  Such intra-group
      reads set ``aliased`` (dropping ``restrict`` from the kernel).

    Groups of one are not groups; the statement stays on the unfused
    path.
    """
    from repro.kernels.native import FusedSpec

    groups: List[FusedGroup] = []
    i = 0
    n = len(stmt_plans)
    while i < n:
        sp0 = stmt_plans[i]
        if not _statement_fusable(sp0) or any(
            op.name == sp0.result
            for t in sp0.terms
            for op in t.operands
            if not op.is_function
        ):
            i += 1
            continue
        run = [i]
        results = {sp0.result}
        reads = {
            op.name
            for t in sp0.terms
            for op in t.operands
            if not op.is_function
        }
        aliased = False
        j = i + 1
        while j < n:
            sp = stmt_plans[j]
            ok = (
                _statement_fusable(sp)
                and sp.out_shape == sp0.out_shape
                and sp.result not in results
                and sp.result not in reads
            )
            member_alias = False
            if ok:
                for t in sp.terms:
                    identity = tuple(range(t.native.nout))
                    for k, op in enumerate(t.operands):
                        if op.is_function:
                            continue
                        if op.name == sp.result:
                            ok = False
                            break
                        if op.name in results:
                            if t.native.operands[k] != identity:
                                ok = False
                                break
                            member_alias = True
                    if not ok:
                        break
            if not ok:
                break
            run.append(j)
            results.add(sp.result)
            reads |= {
                op.name
                for t in sp.terms
                for op in t.operands
                if not op.is_function
            }
            aliased = aliased or member_alias
            j += 1
        if len(run) >= 2:
            outputs = tuple(stmt_plans[k].result for k in run)
            slot_of = {name: s for s, name in enumerate(outputs)}
            members: List = []
            member_ids: List[Tuple[int, int]] = []
            slots: List[int] = []
            for k in run:
                for ti, t in enumerate(stmt_plans[k].terms):
                    members.append(t.native)
                    member_ids.append((k, ti))
                    slots.append(slot_of[stmt_plans[k].result])
            spec = FusedSpec(
                nout=len(sp0.out_shape),
                out_extents=sp0.out_shape,
                members=tuple(members),
                out_slots=tuple(slots),
                nslots=len(outputs),
                aliased=aliased,
            )
            groups.append(
                FusedGroup(
                    start=run[0],
                    stop=run[-1] + 1,
                    spec=spec,
                    members=tuple(member_ids),
                    outputs=outputs,
                )
            )
            i = j
        else:
            i += 1
    return tuple(groups)


def compile_kernel_plan(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    mode: str = "gemm",
    fuse: bool = False,
    semiring: str = "plus_times",
) -> KernelPlan:
    """Lower a formula sequence to a :class:`KernelPlan`.

    All path planning happens here, at synthesis time: GEMM axis
    classification per binary term, einsum subscript construction for
    the fallbacks, function-tensor grid shapes, and the liveness that
    drives arena recycling.  The plan is specialized to ``bindings``
    (shapes are resolved now, exactly like the generated numpy kernels).

    ``mode`` selects the lowering variant: ``"gemm"`` (the analytical
    default) lowers binary contractions to GEMM; ``"einsum"`` keeps
    every contraction on the cached einsum path; ``"native"`` is the
    GEMM plan *plus* a compiled-loop-nest lowering per term
    (:mod:`repro.kernels.native`) -- runners execute the compiled nest
    when a native engine is available and the embedded GEMM/einsum
    fallback otherwise.  The empirical autotuner
    (:mod:`repro.autotune`) measures the variants and keeps the
    fastest plan -- on some shapes einsum's fused path beats the GEMM
    pack/permute sequence, and small dense nests beat both.

    ``fuse=True`` (mode ``"native"`` only) additionally runs the
    cross-statement fusion pass (:func:`_fuse_groups`): maximal runs of
    consecutive statements sharing an output iteration space become
    :class:`FusedGroup` entries that runners execute as one compiled
    nest -- intermediates stay in cache and a parallel region is
    entered once per group.  Every fused statement keeps its unfused
    lowering too, so a machine that cannot compile the group runs the
    statements individually.

    ``semiring`` selects the scalar algebra (see :mod:`repro.semiring`).
    Under any non-default algebra GEMM classification is skipped
    entirely -- ``np.matmul`` is ``(+, ×)`` by definition -- so terms
    lower to native nests (which fold with the registered combine and
    reduce ops) with the semiring-aware einsum reduction as the
    fallback, and only coefficient-1 terms are accepted.
    """
    if mode not in ("gemm", "einsum", "native"):
        raise ValueError(
            f"unknown kernel-plan mode {mode!r} "
            "(use 'gemm', 'einsum', or 'native')"
        )
    sr = get_semiring(semiring)
    lower_native = None
    if mode == "native":
        from repro.kernels.native import lower_native_term

        lower_native = lower_native_term
    stmt_plans: List[StatementPlan] = []
    gemm_terms = einsum_terms = copy_terms = native_terms = 0
    for stmt in statements:
        target = tuple(stmt.result.indices)
        out_shape = tuple(i.extent(bindings) for i in target)
        terms: List[TermPlan] = []
        for coef, sums, refs in flatten(stmt.expr):
            require_unit_coef(
                coef, sr, stage="codegen", statement=stmt.result.name
            )
            operands = tuple(
                OperandSpec(
                    ref.tensor.name,
                    ref.tensor.is_function,
                    tuple(i.extent(bindings) for i in ref.indices)
                    if ref.tensor.is_function
                    else None,
                )
                for ref in refs
            )
            gemm = None
            spec = None
            if len(refs) == 2 and mode in ("gemm", "native") and sr.is_default:
                gemm = lower_binary_term(
                    refs[0].indices, refs[1].indices, sums, target
                )
            if gemm is not None:
                kind = "gemm"
                gemm_terms += 1
            elif (
                len(refs) == 1
                and not sums
                and tuple(refs[0].indices) == target
                and len(set(target)) == len(target)
            ):
                kind = "copy"
                copy_terms += 1
            else:
                kind = "einsum"
                einsum_terms += 1
                all_indices = sorted(
                    {i for ref in refs for i in ref.indices} | set(target)
                )
                letters = einsum_letters(all_indices)
                subscripts = [
                    "".join(letters[i] for i in ref.indices) for ref in refs
                ]
                out_sub = "".join(letters[i] for i in target)
                spec = ",".join(subscripts) + "->" + out_sub
            native = None
            if lower_native is not None and kind != "copy":
                native = lower_native(refs, sums, target, bindings,
                                      semiring=semiring)
                if native is not None:
                    native_terms += 1
            terms.append(TermPlan(coef, operands, kind, gemm, spec, native))
        stmt_plans.append(
            StatementPlan(stmt.result.name, stmt.accumulate, out_shape, tuple(terms))
        )

    # liveness: last production and last read per produced name
    produced: Dict[str, int] = {}
    last_read: Dict[str, int] = {}
    for k, (stmt, sp) in enumerate(zip(statements, stmt_plans)):
        for term in sp.terms:
            for op in term.operands:
                if not op.is_function and op.name in produced:
                    last_read[op.name] = k
        if sp.accumulate and sp.result in produced:
            last_read[sp.result] = k  # += reads its previous value
        produced[sp.result] = k
    outputs = tuple(
        name
        for name in produced
        if last_read.get(name, -1) <= produced[name]
    )
    temps = set(produced) - set(outputs)
    release_at: Dict[int, List[str]] = {}
    for name in temps:
        release_at.setdefault(last_read[name], []).append(name)
    stmt_plans = [
        StatementPlan(
            sp.result,
            sp.accumulate,
            sp.out_shape,
            sp.terms,
            tuple(sorted(release_at.get(k, ()))),
        )
        for k, sp in enumerate(stmt_plans)
    ]
    fused_groups: Tuple[FusedGroup, ...] = ()
    fused_statements = 0
    if fuse and mode == "native":
        fused_groups = _fuse_groups(stmt_plans)
        fused_statements = sum(g.stop - g.start for g in fused_groups)
    return KernelPlan(
        tuple(stmt_plans), outputs, gemm_terms, einsum_terms, copy_terms,
        mode, native_terms, fused_groups, fused_statements, semiring,
    )


class KernelRunner:
    """Executes a :class:`KernelPlan` with arena-backed storage.

    ``functions`` registers function-tensor implementations once;
    their materialized grids are cached across runs (they depend only
    on the grid shape).  ``arena`` defaults to a fresh
    :class:`~repro.kernels.arena.BufferArena`; pass
    ``BufferArena(enabled=False)`` to opt out of buffer retention.

    ``run`` returns ``inputs`` plus the plan's output arrays.  Output
    buffers are owned by the runner and **rewritten by the next run**;
    pass ``copy=True`` (or copy arrays yourself) to detach results.
    Temporaries are recycled internally and not returned; name them in
    ``keep`` to retain (they then get persistent buffers too).

    For plans compiled with ``mode="native"``, ``engine`` is the
    :class:`~repro.kernels.native.NativeEngine` executing the compiled
    nests (default: the process-wide engine) and ``threads`` the nest
    thread count (default: the engine's; capped per nest by its outer
    output extent).  Inside an SPMD worker of the process backend,
    ``threads`` is pinned to 1 -- the process grid already owns the
    cores, and the pin is recorded in :attr:`notes`.  Terms whose nest
    is unavailable -- no compiler, unsupported dtype, compile failure
    -- run on their embedded GEMM/einsum fallback, and each fallback is
    recorded once in :attr:`notes`; a fused group that cannot compile
    runs its statements individually the same way.  A kernel step that
    raises mid-run releases every live arena buffer before propagating,
    so callers that catch and retry do not accumulate leaked scratch.
    """

    def __init__(
        self,
        plan: KernelPlan,
        functions: Optional[Mapping[str, Callable]] = None,
        arena: Optional[BufferArena] = None,
        keep: Sequence[str] = (),
        engine=None,
        threads: Optional[int] = None,
    ) -> None:
        self.plan = plan
        # pre-semiring plans revived from old caches carry no field
        self._sr = get_semiring(getattr(plan, "semiring", "plus_times"))
        self.arena = arena if arena is not None else BufferArena()
        self.functions = dict(functions or {})
        self.keep = frozenset(keep)
        self._kept = frozenset(plan.outputs) | self.keep
        self._persistent: Dict[str, np.ndarray] = {}
        self._func_cache: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}
        #: native-engine notes (fallbacks taken), recorded once each
        self.notes: List[str] = []
        self._engine = engine
        self._native_fns: Dict[int, Optional[Callable]] = {}
        self._fused_fns: Dict[int, Optional[Callable]] = {}
        self._groups_by_start = {g.start: g for g in plan.fused_groups}
        if engine is None and plan.native_terms:
            from repro.kernels.native import default_engine

            self._engine = default_engine()
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if threads is None:
            threads = (
                getattr(self._engine, "threads", 1)
                if self._engine is not None
                else 1
            )
        if threads > 1 and _in_spmd_worker():
            self.notes.append(
                f"kernel threads pinned to 1 (was {threads}) inside the "
                "SPMD worker: the process grid owns the cores, and "
                "procs x nest threads must not oversubscribe"
            )
            threads = 1
        #: nest thread count used for every native/fused compile
        self.threads = threads
        if plan.native_terms and (
            self._engine is None or not self._engine.available()
        ):
            reason = (
                self._engine.unavailable_reason()
                if self._engine is not None
                else "no native engine"
            )
            self.notes.append(
                f"native kernels unavailable ({reason}); "
                f"{plan.native_terms} compiled nests fall back to the "
                "gemm/einsum path"
            )

    # -- operand access ----------------------------------------------------

    def _materialize(self, op: OperandSpec, funcs) -> np.ndarray:
        impl = funcs.get(op.name)
        if impl is None:
            raise SpecError(
                f"no implementation registered for function {op.name!r}",
                stage="execution",
                tensor=op.name,
            )
        cacheable = self.functions.get(op.name) is impl
        key = (op.name, op.shape)
        if cacheable and key in self._func_cache:
            return self._func_cache[key]
        value = np.asarray(impl(*np.indices(op.shape)), dtype=np.float64)
        if cacheable:
            self._func_cache[key] = value
        return value

    @staticmethod
    def _fetch(op: OperandSpec, env, inputs) -> np.ndarray:
        got = env.get(op.name)
        if got is not None:
            return got
        try:
            return np.asarray(inputs[op.name])
        except KeyError:
            raise SpecError(
                f"no array provided for tensor {op.name!r}",
                stage="execution",
                tensor=op.name,
            ) from None

    # -- term execution ----------------------------------------------------

    def _accumulate(self, out, value, coef: float, first: bool) -> None:
        if not self._sr.is_default:
            # coefficient-1 contract (enforced at plan compile time):
            # folding is a pure semiring reduce into the buffer
            if first:
                np.copyto(out, value)
            else:
                self._sr.np_reduce(out, value, out=out)
            return
        if first:
            if coef == 1.0:
                np.copyto(out, value)
            else:
                np.multiply(value, coef, out=out)
        elif coef == 1.0:
            np.add(out, value, out=out)
        elif coef == -1.0:
            np.subtract(out, value, out=out)
        else:
            scratch = self.arena.take(out.shape, out.dtype)
            try:
                np.multiply(value, coef, out=scratch)
                np.add(out, scratch, out=out)
            finally:
                self.arena.release(scratch)

    def _native_fn(self, term: TermPlan, dtype) -> Optional[Callable]:
        """The compiled nest for a term (cached per runner), or None."""
        key = id(term)
        if key in self._native_fns:
            return self._native_fns[key]
        fn = None
        if self._engine is not None and self._engine.available():
            fn = self._engine.function(term.native, dtype,
                                       threads=self.threads)
            if fn is None:
                reason = (
                    self._engine.failure(term.native, dtype,
                                         threads=self.threads)
                    or "unsupported dtype"
                )
                self.notes.append(
                    f"native nest not compiled ({reason}); term falls "
                    f"back to the {term.kind} path"
                )
        self._native_fns[key] = fn
        return fn

    def _fused_fn(self, group: FusedGroup) -> Optional[Callable]:
        """The compiled fused-group kernel (cached per runner), or None."""
        key = group.start
        if key in self._fused_fns:
            return self._fused_fns[key]
        fn = None
        if self._engine is not None and self._engine.available():
            fn = self._engine.function(group.spec, np.float64,
                                       threads=self.threads)
            if fn is None:
                reason = (
                    self._engine.failure(group.spec, np.float64,
                                         threads=self.threads)
                    or "unsupported dtype"
                )
                self.notes.append(
                    f"fused group of {len(group.outputs)} statements not "
                    f"compiled ({reason}); statements run unfused"
                )
        self._fused_fns[key] = fn
        return fn

    def _exec_term(self, term: TermPlan, out, env, inputs, funcs, first: bool):
        ops = [
            self._materialize(op, funcs)
            if op.is_function
            else self._fetch(op, env, inputs)
            for op in term.operands
        ]
        if term.native is not None and out.flags.c_contiguous:
            fn = self._native_fn(term, out.dtype)
            if fn is not None:
                ops = [
                    op
                    if op.dtype == out.dtype and op.flags.c_contiguous
                    else np.ascontiguousarray(op, dtype=out.dtype)
                    for op in ops
                ]
                if first:
                    # the nest only ever reduces into the buffer; seed
                    # it with the algebra's identity element
                    out.fill(self._sr.zero)
                fn(term.coef, ops, out)
                return
        if term.kind == "gemm":
            value, live = exec_gemm_arena(ops[0], ops[1], term.gemm, self.arena)
            try:
                self._accumulate(out, value, term.coef, first)
            finally:
                for buf in live:
                    self.arena.release(buf)
        elif term.kind == "copy":
            self._accumulate(out, ops[0], term.coef, first)
        else:  # einsum fallback (cached contraction path)
            if first and term.coef == 1.0:
                cached_einsum(term.spec, *ops, out=out,
                              semiring=self._sr.name)
            else:
                scratch = self.arena.take(out.shape, out.dtype)
                try:
                    cached_einsum(term.spec, *ops, out=scratch,
                                  semiring=self._sr.name)
                    self._accumulate(out, scratch, term.coef, first)
                finally:
                    self.arena.release(scratch)

    # -- statement/sequence execution --------------------------------------

    def _exec_group(self, group: FusedGroup, env, inputs, funcs) -> bool:
        """Run ``statements[start:stop]`` as one fused kernel call.

        Returns ``False`` (caller runs the statements unfused) when the
        group kernel is unavailable.  Output buffers are zeroed up
        front -- the fusion pass only admits plain assignments whose
        old values no group member wants -- and published to ``env``
        together after the call; statement releases are applied after
        publication (deferring a temp's release past its in-group last
        read is safe because liveness already proves no later reader).
        """
        fn = self._fused_fn(group)
        if fn is None:
            return False
        sps = self.plan.statements[group.start:group.stop]
        outs: List[np.ndarray] = []
        fresh: List[np.ndarray] = []  # arena-owned, not yet in env
        try:
            for sp in sps:
                existing = env.get(sp.result)
                if existing is not None:
                    out = existing
                else:
                    out = self._out_buffer(sp.result, sp.out_shape)
                    if sp.result not in self._kept:
                        fresh.append(out)
                outs.append(out)
            by_name = dict(zip(group.outputs, outs))
            coefs: List[float] = []
            ops: List[np.ndarray] = []
            for si, ti in group.members:
                term = self.plan.statements[si].terms[ti]
                coefs.append(term.coef)
                for op in term.operands:
                    if op.is_function:
                        arr = self._materialize(op, funcs)
                    elif op.name in by_name:
                        # intra-group read: alias the producer's output
                        # buffer so the value written earlier in the
                        # same fused iteration is the one read
                        arr = by_name[op.name]
                    else:
                        arr = self._fetch(op, env, inputs)
                    if (
                        arr.dtype != np.float64
                        or not arr.flags.c_contiguous
                    ):
                        arr = np.ascontiguousarray(arr, dtype=np.float64)
                    ops.append(arr)
            for out in outs:
                # the fused nest only ever reduces into its slots
                out.fill(self._sr.zero)
            fn(coefs, ops, outs)
        except BaseException:
            for buf in fresh:
                self.arena.release(buf)
            raise
        for sp, out in zip(sps, outs):
            env[sp.result] = out
        for sp in sps:
            for name in sp.release:
                if name in self._kept:
                    continue
                buf = env.pop(name, None)
                if buf is not None:
                    self.arena.release(buf)
        return True

    def _out_buffer(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        if name in self._kept:
            buf = self._persistent.get(name)
            if buf is None or buf.shape != shape:
                buf = np.empty(shape)
                self._persistent[name] = buf
                self.arena.allocations += 1
            return buf
        return self.arena.take(shape)

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        functions: Optional[Mapping[str, Callable]] = None,
        *,
        copy: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Execute the plan; returns inputs + produced output arrays.

        Returned output arrays alias runner-owned buffers that the next
        ``run()`` overwrites; ``copy=True`` returns detached copies.
        """
        funcs = dict(self.functions)
        if functions:
            funcs.update(functions)
        env: Dict[str, np.ndarray] = {}
        pending: Optional[np.ndarray] = None
        try:
            k = 0
            statements = self.plan.statements
            while k < len(statements):
                group = self._groups_by_start.get(k)
                if group is not None and self._exec_group(
                    group, env, inputs, funcs
                ):
                    k = group.stop
                    continue
                sp = statements[k]
                k += 1
                existing = env.get(sp.result)
                reads_self = any(
                    op.name == sp.result and not op.is_function
                    for term in sp.terms
                    for op in term.operands
                )
                if existing is not None and not sp.accumulate and reads_self:
                    # re-assignment reading the old value: write elsewhere
                    out = self.arena.take(sp.out_shape)
                    old = existing
                    existing = None
                else:
                    old = None
                    out = (
                        existing
                        if existing is not None
                        else self._out_buffer(sp.result, sp.out_shape)
                    )
                # arena-owned and not yet tracked by env: must be released
                # if a kernel raises before this statement publishes it
                # (re-assignment scratch is always arena-owned; fresh
                # non-kept outputs come from the arena too)
                pending = (
                    out
                    if old is not None
                    or (existing is None and sp.result not in self._kept)
                    else None
                )
                first = True
                if sp.accumulate:
                    if existing is not None:
                        first = False  # += onto our own buffer in place
                    elif sp.result in inputs:
                        np.copyto(out, np.asarray(inputs[sp.result]))
                        first = False  # seed from (unmutated) caller array
                for term in sp.terms:
                    self._exec_term(term, out, env, inputs, funcs, first)
                    first = False
                if old is not None:
                    if sp.result in self._kept:
                        np.copyto(old, out)
                        self.arena.release(out)
                        out = old
                    else:
                        self.arena.release(old)
                env[sp.result] = out
                pending = None
                for name in sp.release:
                    if name in self._kept:
                        continue
                    buf = env.pop(name, None)
                    if buf is not None:
                        self.arena.release(buf)
        except BaseException:
            # a kernel step raised mid-run: hand every live arena
            # buffer back before propagating, so a caught failure does
            # not leak the whole working set (persistent output buffers
            # stay -- they are reused, not pooled)
            if pending is not None:
                self.arena.release(pending)
            for name, buf in env.items():
                if name not in self._kept:
                    self.arena.release(buf)
            raise
        result: Dict[str, np.ndarray] = {
            k: np.asarray(v) for k, v in inputs.items()
        }
        for name in self._kept:
            if name in env:
                result[name] = env[name].copy() if copy else env[name]
        return result

    __call__ = run
