"""Content-addressed store of compiled kernel artifacts.

Compiling a loop nest costs a compiler fork (tens of milliseconds for
``cc``) or a JIT warm-up; the compiled shared object depends only on
the nest IR, the element dtype, the backend and compiler identity, the
flags, and the emitter version -- all of which hash into the artifact
key (:func:`artifact_key`).  An :class:`ArtifactStore` therefore keeps
compiled blobs in a :class:`repro.store.TwoTierStore` (bounded
in-memory LRU over an optional sharded on-disk tier with atomic,
lock-protected publication) so a warm process ``dlopen``\\ s/loads the
existing object instead of re-invoking the compiler -- the same
discipline the plan cache applies to search results and the TuningDB
to measurements.

Keying discipline (the lesson of the einsum-cache dtype audit): the
key includes **everything the produced bytes depend on**.  A float32
nest never serves a float64 caller, and upgrading the compiler -- which
may change codegen -- changes every key, so stale objects can never be
loaded; they simply stop being addressed and age out of the LRU/disk.

Loading a shared object needs a real file path, not bytes: hits on the
disk tier are loaded in place (the store's canonical path), while
memory-tier hits in directory-less stores are spilled to the caller's
scratch directory first.  That mechanic lives with the engine
(:mod:`repro.kernels.native`); this module only decides identity and
storage.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional, Tuple

from repro.store import TwoTierStore

__all__ = ["ArtifactStore", "artifact_key"]


def artifact_key(
    nest_ir: str,
    dtype: str,
    backend: str,
    compiler: str,
    flags: Tuple[str, ...] = (),
) -> str:
    """sha256 of everything the compiled bytes depend on.

    ``nest_ir`` is the deterministic nest text
    (:func:`repro.codegen.cgen.render_nest_ir`); ``dtype`` the numpy
    dtype str (``'<f8'``); ``backend`` the engine backend name;
    ``compiler`` the compiler identity string (version line + path for
    ``cc``, the numba version for the JIT); ``flags`` the exact
    optimization flags.  The package version rides along so an emitter
    change invalidates every stored object.
    """
    from repro import __version__

    payload = "\n".join(
        [__version__, backend, compiler, dtype, ";".join(flags), nest_ir]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-tier store of compiled kernel blobs (``<key>.so`` files).

    ``maxsize`` bounds the in-memory entry count; ``directory`` enables
    the persistent tier, where entries live at a real path
    (:meth:`path`) a loader can ``dlopen`` directly.
    """

    def __init__(
        self, maxsize: int = 256, directory: Optional[str] = None
    ) -> None:
        self._store = TwoTierStore(maxsize, directory, suffix=".so")

    def __len__(self) -> int:
        return len(self._store)

    @property
    def directory(self) -> Optional[str]:
        return self._store.directory

    @property
    def maxsize(self) -> int:
        return self._store.maxsize

    def path(self, key: str) -> str:
        """Canonical on-disk path of ``key`` (sharded; disk tier only)."""
        return self._store.path(key)

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        """``(blob, tier)`` for a stored artifact, else ``None``."""
        return self._store.get(key)

    def disk_path(self, key: str) -> Optional[str]:
        """The loadable on-disk path of ``key`` if the disk tier has it.

        Prefers the canonical sharded path, honouring legacy flat
        layouts like every other store reader.
        """
        if self.directory is None:
            return None
        for path in (self._store.path(key), self._store._legacy_path(key)):
            if os.path.exists(path):
                return path
        return None

    def put(self, key: str, blob: bytes) -> None:
        """Store compiled bytes under ``key`` in both tiers."""
        self._store.put(key, blob)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (hits per tier, misses, evictions)."""
        return self._store.stats()

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``)."""
        self._store.clear(disk=disk)

    def describe(self) -> str:
        return self._store.describe("ArtifactStore")
